"""§5.2: optimized strategy in the Gen 2 (microVM) environment.

Paper: coverage 87.3%/88.7% in us-east1, 40.7%/75.3% in us-central1,
96.0%/97.3% in us-west1 (Accounts 2/3) — slightly below Gen 1, but the
strategy transfers.
"""

import numpy as np

from repro.experiments import coverage as cov
from repro.experiments.report import format_series, pct

from benchmarks.conftest import run_once

CONFIG = cov.MatrixConfig(generation="gen2", repetitions=2)  # paper: 3


def test_sec52_gen2_coverage(benchmark, emit, runner):
    cells = run_once(benchmark, lambda: cov.run_matrix(CONFIG, runner=runner))

    rows = []
    for (region, account, _n, _s), cell in sorted(cells.items()):
        paper = cov.PAPER_OPTIMIZED_GEN2[(region, account)]
        rows.append((region, account, pct(paper), pct(cell.mean)))
    emit(
        format_series(
            "§5.2 — optimized strategy, Gen 2 environment",
            ("region", "account", "paper", "measured"),
            rows,
        )
    )

    # Strategy transfers: high coverage in east/west, lower in central.
    for account in CONFIG.victim_accounts:
        assert cells[("us-east1", account, 100, "Small")].mean > 0.7
        assert cells[("us-west1", account, 100, "Small")].mean > 0.85
    central = np.mean(
        [cells[("us-central1", a, 100, "Small")].mean for a in CONFIG.victim_accounts]
    )
    east = np.mean(
        [cells[("us-east1", a, 100, "Small")].mean for a in CONFIG.victim_accounts]
    )
    assert central < east
    # Within a generous band of the paper's cells.
    for (region, account, _n, _s), cell in cells.items():
        paper = cov.PAPER_OPTIMIZED_GEN2[(region, account)]
        assert abs(cell.mean - paper) < 0.35, (region, account, cell.mean, paper)
