"""Noise models for timing measurements and TSC frequency error.

Three distinct noise sources matter for the paper's fingerprints, each at a
very different scale:

* **Per-sandbox wall-clock offset** (~0.1 ms).  gVisor's userspace kernel
  maintains its own time state per sandbox, so two co-located containers
  disagree slightly on the wall-clock time.  This is the noise that makes
  very fine boot-time rounding produce false negatives and puts the Fig. 4
  sweet spot at 100 ms - 1 s.

* **Per-call jitter** (~ns on quiet hosts, ~µs on "problematic" ones).
  Individual ``clock_gettime`` reads jitter with interrupts and context
  switches.  Over a 100 ms measured-frequency window this maps to a standard
  deviation below ~100 Hz on most hosts but 10 kHz - a few MHz on the ~10%
  of problematic hosts (paper §4.2), which is what rules out the
  measured-frequency method.

* **Reported-frequency error** (~kHz, constant per host).  The actual TSC
  frequency deviates from the reported one by a constant ``epsilon``, making
  the reported-frequency boot time drift linearly (Eq. 4.2) and giving
  fingerprints an expiration time (Fig. 5).  The same spread makes the
  refined frequency (quantized to 1 kHz) a usable-but-colliding Gen 2
  fingerprint (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units


@dataclass(frozen=True)
class SyscallNoiseModel:
    """Timing-noise characteristics of one host's sandboxed clock reads.

    Attributes
    ----------
    call_jitter_sigma_s:
        Standard deviation of per-call Gaussian jitter, in seconds.
    call_outlier_probability:
        Chance that a call hits an interrupt/context switch and picks up
        extra (exponential) delay.
    call_outlier_scale_s:
        Mean of the exponential outlier component.
    sandbox_offset_sigma_s:
        Standard deviation of the constant per-sandbox wall-clock offset.
    sandbox_offset_outlier_probability:
        Chance a sandbox boots with a large (millisecond-scale) offset.
    sandbox_offset_outlier_scale_s:
        Mean magnitude of the large-offset component.
    """

    call_jitter_sigma_s: float = 3e-9
    call_outlier_probability: float = 0.003
    call_outlier_scale_s: float = 30e-9
    sandbox_offset_sigma_s: float = 0.12 * units.MILLISECOND
    sandbox_offset_outlier_probability: float = 0.015
    sandbox_offset_outlier_scale_s: float = 1.5 * units.MILLISECOND

    def sample_call_jitter(self, rng: np.random.Generator) -> float:
        """Draw the jitter of one system-call clock read, in seconds."""
        jitter = rng.normal(0.0, self.call_jitter_sigma_s)
        if rng.random() < self.call_outlier_probability:
            jitter += rng.exponential(self.call_outlier_scale_s)
        return float(jitter)

    def sample_sandbox_offset(self, rng: np.random.Generator) -> float:
        """Draw the constant wall-clock offset of one sandbox, in seconds."""
        offset = rng.normal(0.0, self.sandbox_offset_sigma_s)
        if rng.random() < self.sandbox_offset_outlier_probability:
            sign = 1.0 if rng.random() < 0.5 else -1.0
            offset += sign * rng.exponential(self.sandbox_offset_outlier_scale_s)
        return float(offset)


def quiet_noise_model() -> SyscallNoiseModel:
    """Noise model for a typical, well-behaved host.

    Calibrated so that measuring the TSC frequency over ~100 ms windows
    yields standard deviations below ~100 Hz after 10 repetitions, matching
    the paper's observation for ~90% of Cloud Run hosts.
    """
    return SyscallNoiseModel()


def problematic_noise_model() -> SyscallNoiseModel:
    """Noise model for the ~10% of hosts with unstable timing.

    On these hosts the paper observed measured-frequency standard deviations
    from 10 kHz up to a few MHz even after 100 repetitions; microsecond-scale
    call jitter with heavy outliers reproduces that range.
    """
    return SyscallNoiseModel(
        call_jitter_sigma_s=2.0 * units.MICROSECOND,
        call_outlier_probability=0.10,
        call_outlier_scale_s=20.0 * units.MICROSECOND,
    )


@dataclass(frozen=True)
class TscErrorModel:
    """Distribution of the constant reported-vs-actual TSC frequency error.

    ``epsilon = f_reported - f_actual`` is drawn once per host: the sign is
    uniform and the magnitude lognormal, clipped to ``[min_abs_hz,
    max_abs_hz]``.  The defaults are solved from the paper's Fig. 5: at a
    1-second rounding precision roughly 10% of fingerprints expire within
    ~2 days and roughly half survive a full week; a 2 GHz host with error
    ``epsilon`` drifts one rounding bucket every ``p_boot * f / |epsilon|``
    seconds.  The same spread puts an average of ~2 hosts per refined-
    frequency bucket in a typical 800-instance footprint (Gen 2, §4.5).
    """

    median_abs_hz: float = 0.9 * units.KHZ
    sigma_log: float = 0.91
    min_abs_hz: float = 50.0
    max_abs_hz: float = 3.0 * units.MHZ

    def sample_epsilon(self, rng: np.random.Generator) -> float:
        """Draw one per-host frequency error ``epsilon`` in Hz (signed)."""
        magnitude = rng.lognormal(mean=np.log(self.median_abs_hz), sigma=self.sigma_log)
        magnitude = float(np.clip(magnitude, self.min_abs_hz, self.max_abs_hz))
        sign = 1.0 if rng.random() < 0.5 else -1.0
        return sign * magnitude
