"""Regression tests for the shared experiment oracle helpers.

``host_coverage`` is the scoring function behind every coverage/locator
number in the repo, so its dead-instance semantics are pinned explicitly:
terminated instances drop out of *both* sides (no KeyErrors, no silent
coverage skew), and empty inputs are well-defined rather than accidental.
"""

import numpy as np

from repro.cloud.services import ServiceConfig
from repro.experiments.base import host_coverage


def _deploy(env, client, name, n):
    service = client.deploy(ServiceConfig(name=name))
    return client.connect(service, n)


def _kill(env, handle):
    env.orchestrator._terminate(handle._instance, env.clock.now())


def _legacy_host_coverage(env, attacker_handles, victim_handles):
    """The pre-fix path: per-handle ``index_of`` loop, no victim filter."""
    fleet = env.datacenter.fleet
    orch = env.orchestrator
    attacker_mask = np.zeros(fleet.n_hosts, dtype=bool)
    for handle in attacker_handles:
        if handle.alive:
            index = fleet.index_of(orch.true_host_of(handle.instance_id))
            attacker_mask[index] = True
    victim_idx = fleet.indices_of(
        orch.true_host_of(handle.instance_id) for handle in victim_handles
    )
    if victim_idx.size == 0:
        return 0.0, int(attacker_mask.sum())
    return float(attacker_mask[victim_idx].mean()), int(attacker_mask.sum())


class TestHostCoverage:
    def test_vectorized_path_is_byte_identical_to_legacy(self, tiny_env):
        """With every instance alive, ``indices_of`` must reproduce the
        old per-handle ``index_of`` loop bit for bit."""
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 20)
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 15)
        new = host_coverage(tiny_env, attackers, victims)
        old = _legacy_host_coverage(tiny_env, attackers, victims)
        assert new == old  # exact float equality, not approx

    def test_dead_victims_leave_the_denominator(self, tiny_env):
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 20)
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 10)
        full, _hosts = host_coverage(tiny_env, attackers, victims)
        for handle in victims[5:]:
            _kill(tiny_env, handle)
        partial, _hosts = host_coverage(tiny_env, attackers, victims)
        live_only, _hosts = host_coverage(tiny_env, attackers, victims[:5])
        # Dead victims neither raise nor count as misses: scoring the
        # mixed list equals scoring only the survivors.
        assert partial == live_only
        assert 0.0 <= partial <= 1.0
        assert 0.0 <= full <= 1.0

    def test_dead_attackers_stop_contributing_hosts(self, tiny_env):
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 20)
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 10)
        _cov, hosts_before = host_coverage(tiny_env, attackers, victims)
        for handle in attackers:
            _kill(tiny_env, handle)
        coverage, hosts_after = host_coverage(tiny_env, attackers, victims)
        assert hosts_before > 0
        assert hosts_after == 0
        assert coverage == 0.0

    def test_both_sides_filtered_symmetrically(self, tiny_env):
        """One dead instance per side: the score equals the all-alive
        score over the surviving handles."""
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 12)
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 8)
        _kill(tiny_env, attackers[0])
        _kill(tiny_env, victims[0])
        mixed = host_coverage(tiny_env, attackers, victims)
        survivors = host_coverage(tiny_env, attackers[1:], victims[1:])
        assert mixed == survivors

    def test_empty_attackers(self, tiny_env):
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 5)
        coverage, hosts = host_coverage(tiny_env, [], victims)
        assert coverage == 0.0
        assert hosts == 0

    def test_empty_victims(self, tiny_env):
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 5)
        coverage, hosts = host_coverage(tiny_env, attackers, [])
        assert coverage == 0.0
        assert hosts > 0

    def test_both_empty(self, tiny_env):
        assert host_coverage(tiny_env, [], []) == (0.0, 0)

    def test_all_victims_dead(self, tiny_env):
        attackers = _deploy(tiny_env, tiny_env.attacker, "atk", 5)
        victims = _deploy(tiny_env, tiny_env.victim(), "vic", 4)
        for handle in victims:
            _kill(tiny_env, handle)
        coverage, hosts = host_coverage(tiny_env, attackers, victims)
        assert coverage == 0.0
        assert hosts > 0
