"""Unit tests for the process-pool runner and its determinism guarantee."""

from repro.experiments.launch_behavior import _distribution_cell
from repro.runner import CellSpec, RunnerConfig, RunStats, run_cells


def _slow_square(config: dict, seed: int) -> int:
    return config["x"] * config["x"] + seed


def _make_specs(n: int) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="pool-demo",
            fn=_slow_square,
            config={"x": i},
            seed=i,
            label=f"cell-{i}",
        )
        for i in range(n)
    ]


class TestRunCells:
    def test_serial_results_in_spec_order(self):
        results = run_cells(_make_specs(5))
        assert [r.value for r in results] == [i * i + i for i in range(5)]
        assert [r.label for r in results] == [f"cell-{i}" for i in range(5)]

    def test_pool_results_in_spec_order(self):
        runner = RunnerConfig(parallelism=2)
        results = run_cells(_make_specs(5), runner)
        assert [r.value for r in results] == [i * i + i for i in range(5)]

    def test_stats_accumulate_across_calls(self):
        runner = RunnerConfig()
        run_cells(_make_specs(3), runner)
        run_cells(_make_specs(2), runner)
        assert runner.stats.cells == 5
        assert runner.stats.cache_hits == 0
        assert runner.stats.wall_seconds > 0.0

    def test_hit_rate_handles_zero_cells(self):
        assert RunStats().hit_rate == 0.0

    def test_summary_mentions_cells_and_hits(self):
        stats = RunStats(cells=4, cache_hits=3, parallelism=2)
        text = stats.summary()
        assert "4 cells" in text
        assert "3 cache hits" in text
        assert "75%" in text

    def test_empty_spec_list(self):
        assert run_cells([]) == []


class TestSerialPoolIdentity:
    """The satellite-2 regression: the same ``CellSpec`` must produce a
    byte-identical ``CellResult`` whether it runs in-process or in a
    worker pool.  This exercises a real simulation cell end-to-end, so it
    catches any RNG that escapes the cell's master seed (module-level
    ``random``, iteration-order-dependent draws)."""

    def _real_specs(self) -> list[CellSpec]:
        params = {"region": "us-east1", "instances": 60, "ground_truth": "oracle"}
        return [
            CellSpec(
                experiment="exp1-test",
                fn=_distribution_cell,
                config=params,
                seed=seed,
                label=f"seed-{seed}",
            )
            for seed in (101, 202)
        ]

    def test_serial_and_pooled_results_byte_identical(self):
        serial = run_cells(self._real_specs())
        pooled = run_cells(self._real_specs(), RunnerConfig(parallelism=2))
        assert [r.value_digest() for r in serial] == [
            r.value_digest() for r in pooled
        ]

    def test_repeat_serial_run_byte_identical(self):
        first = run_cells(self._real_specs())
        second = run_cells(self._real_specs())
        assert [r.value_digest() for r in first] == [
            r.value_digest() for r in second
        ]

    def test_cached_value_byte_identical_to_computed(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        computed = run_cells(self._real_specs(), runner)
        restored = run_cells(self._real_specs(), runner)
        assert all(r.cached for r in restored)
        assert [r.value_digest() for r in computed] == [
            r.value_digest() for r in restored
        ]
