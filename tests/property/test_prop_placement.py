"""Property-based tests for the placement policy."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.placement import PlacementPolicy, PlacementRequest


@st.composite
def placement_cases(draw):
    n_hosts = draw(st.integers(min_value=1, max_value=12))
    capacity = draw(st.floats(min_value=4.0, max_value=64.0))
    slots = draw(st.sampled_from([0.25, 1.0, 2.0, 4.0]))
    per_host = int(capacity // slots)
    max_count = n_hosts * per_host
    count = draw(st.integers(min_value=0, max_value=max(0, min(max_count, 80))))
    seed = draw(st.integers(min_value=0, max_value=1000))
    return n_hosts, capacity, slots, count, seed


@given(placement_cases())
@settings(max_examples=60)
def test_capacity_never_exceeded(case):
    n_hosts, capacity, slots, count, seed = case
    hosts = [f"h{i}" for i in range(n_hosts)]
    load: dict[str, float] = {}
    policy = PlacementPolicy(np.random.default_rng(seed))
    placed = policy.place(
        PlacementRequest(count=count, slots_per_instance=slots, allowed_host_ids=hosts),
        load,
        {h: capacity for h in hosts},
    )
    assert len(placed) == count
    for host, used in load.items():
        assert used <= capacity + 1e-9
        assert used == placed.count(host) * slots


@given(placement_cases())
@settings(max_examples=60)
def test_spread_is_near_uniform(case):
    n_hosts, capacity, slots, count, seed = case
    hosts = [f"h{i}" for i in range(n_hosts)]
    policy = PlacementPolicy(np.random.default_rng(seed))
    placed = policy.place(
        PlacementRequest(count=count, slots_per_instance=slots, allowed_host_ids=hosts),
        {},
        {h: capacity for h in hosts},
    )
    counts = [placed.count(h) for h in hosts]
    # With no capacity pressure the per-service counts differ by <= 1;
    # capacity clipping can only widen the gap when hosts fill up.
    if max(counts) * slots <= capacity:
        assert max(counts) - min(counts) <= 1


@given(placement_cases(), st.integers(min_value=0, max_value=1000))
@settings(max_examples=40)
def test_deterministic_in_seed(case, seed2):
    n_hosts, capacity, slots, count, seed = case
    hosts = [f"h{i}" for i in range(n_hosts)]

    def run(s):
        policy = PlacementPolicy(np.random.default_rng(s))
        return policy.place(
            PlacementRequest(
                count=count, slots_per_instance=slots, allowed_host_ids=hosts
            ),
            {},
            {h: capacity for h in hosts},
        )

    assert run(seed) == run(seed)
