"""§4.5: Gen 2 fingerprint accuracy (refined TSC frequency).

Same setup as the Fig. 4 experiment but in the Gen 2 (microVM) environment.
The refined-frequency fingerprint cannot produce false negatives (the value
is fixed at host boot), but its 1 kHz quantization collides distinct hosts.

Paper reference: average FMI 0.66, precision 0.48, recall 1.0, and on
average 2.0 hosts share one fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.services import ServiceConfig
from repro.analysis.metrics import pair_confusion
from repro.core.fingerprint import fingerprint_gen2_instances
from repro.experiments.base import default_env
from repro.experiments.ground_truth import truth_clusters
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_FMI = 0.66
PAPER_PRECISION = 0.48
PAPER_HOSTS_PER_FINGERPRINT = 2.0


@dataclass(frozen=True)
class Gen2AccuracyConfig:
    """Configuration for the §4.5 Gen 2 accuracy experiment."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    repetitions: int = 5
    instances: int = 800
    ground_truth: str = "covert"
    base_seed: int = 200


@dataclass
class Gen2AccuracyResult:
    """Outcome of the Gen 2 accuracy experiment."""

    fmi_mean: float = 0.0
    precision_mean: float = 0.0
    recall_mean: float = 0.0
    hosts_per_fingerprint_mean: float = 0.0
    per_run_fmi: list[float] = field(default_factory=list)


def _accuracy_cell(params: dict, seed: int) -> tuple[float, float, float, float]:
    """One Gen 2 run; returns ``(fmi, precision, recall, hosts_per_fp)``."""
    env = default_env(params["region"], seed=seed)
    client = env.attacker
    instances = params["instances"]
    service = client.deploy(
        ServiceConfig(
            name="gen2-accuracy",
            generation="gen2",
            max_instances=max(100, instances),
        )
    )
    handles = client.connect(service, instances)
    tagged_pairs = fingerprint_gen2_instances(handles)
    truth = truth_clusters(
        params["ground_truth"],
        env.orchestrator,
        tagged_pairs,
        assume_no_false_negatives=True,
    )
    predicted = {h.instance_id: fp for h, fp in tagged_pairs}
    confusion = pair_confusion(predicted, truth)

    # Hosts per fingerprint: distinct true clusters per fingerprint.
    hosts_by_fp: dict[object, set] = {}
    for handle, fp in tagged_pairs:
        hosts_by_fp.setdefault(fp, set()).add(truth[handle.instance_id])
    hosts_per_fp = float(np.mean([len(hosts) for hosts in hosts_by_fp.values()]))
    return confusion.fmi, confusion.precision, confusion.recall, hosts_per_fp


def run(
    config: Gen2AccuracyConfig = Gen2AccuracyConfig(),
    runner: RunnerConfig | None = None,
) -> Gen2AccuracyResult:
    """Run the Gen 2 fingerprint accuracy experiment."""
    specs: list[CellSpec] = []
    seed = config.base_seed
    for region in config.regions:
        for rep in range(config.repetitions):
            specs.append(
                CellSpec(
                    experiment="sec45",
                    fn=_accuracy_cell,
                    config={
                        "region": region,
                        "instances": config.instances,
                        "ground_truth": config.ground_truth,
                    },
                    seed=seed,
                    label=f"{region}/rep{rep}",
                )
            )
            seed += 1

    fmis, precisions, recalls, host_ratios = [], [], [], []
    for cell in run_cells(specs, runner):
        fmi, precision, recall, hosts_per_fp = cell.value
        fmis.append(fmi)
        precisions.append(precision)
        recalls.append(recall)
        host_ratios.append(hosts_per_fp)

    return Gen2AccuracyResult(
        fmi_mean=float(np.mean(fmis)),
        precision_mean=float(np.mean(precisions)),
        recall_mean=float(np.mean(recalls)),
        hosts_per_fingerprint_mean=float(np.mean(host_ratios)),
        per_run_fmi=[float(f) for f in fmis],
    )
