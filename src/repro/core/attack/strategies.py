"""Instance launching strategies (paper §5.2).

*Naive* launching deploys several cold services and floods them with
connections once.  Because all services of one account share the account's
base hosts, the footprint stays confined there and co-location with a
different account's victim is usually zero.

*Optimized* launching primes each service into a high-demand state by
re-launching it at a ~10-minute interval: every launch after the first finds
the service hot and spills newly created instances onto helper hosts,
spreading the attacker across a large fraction of the datacenter
(Observations 5-6).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.api import FaaSClient, InstanceHandle
from repro.cloud.services import SMALL, ContainerSize, ServiceConfig
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)


@dataclass
class LaunchOutcome:
    """What a launching strategy achieved.

    Attributes
    ----------
    service_names:
        The attacker services deployed.
    handles:
        Instance handles still connected after the final launch.
    fingerprints:
        ``(handle, fingerprint)`` pairs for the final instances.
    launch_footprints:
        Per (round, service) apparent-host footprint: the set of distinct
        fingerprints observed in that launch.  Lets experiments replay the
        paper's per-launch plots.
    cost_usd:
        Billing delta incurred by the strategy.
    """

    service_names: list[str]
    handles: list[InstanceHandle] = field(default_factory=list)
    fingerprints: list[tuple[InstanceHandle, object]] = field(default_factory=list)
    launch_footprints: list[set] = field(default_factory=list)
    cost_usd: float = 0.0

    @property
    def apparent_hosts(self) -> set:
        """Distinct fingerprints among the final connected instances."""
        return {fp for _, fp in self.fingerprints}


def _fingerprint_batch(
    handles: list[InstanceHandle], generation: str, p_boot: float
) -> list[tuple[InstanceHandle, object]]:
    if generation == "gen2":
        return list(fingerprint_gen2_instances(handles))
    return list(fingerprint_gen1_instances(handles, p_boot=p_boot))


def naive_launch(
    client: FaaSClient,
    n_services: int = 6,
    instances_per_service: int = 800,
    size: ContainerSize = SMALL,
    generation: str = "gen1",
    p_boot: float = 1.0,
    service_prefix: str = "naive",
) -> LaunchOutcome:
    """Strategy 1: launch many instances from cold services, once.

    Represents an attacker with no insight into the placement policy.
    """
    cost0 = client.cost_usd
    names = [
        client.deploy(
            ServiceConfig(
                name=f"{service_prefix}-{i}",
                size=size,
                generation=generation,
                max_instances=max(100, instances_per_service),
            )
        )
        for i in range(n_services)
    ]
    outcome = LaunchOutcome(service_names=names)
    for name in names:
        handles = client.connect(name, instances_per_service)
        tagged = _fingerprint_batch(handles, generation, p_boot)
        outcome.handles.extend(handles)
        outcome.fingerprints.extend(tagged)
        outcome.launch_footprints.append({fp for _, fp in tagged})
    outcome.cost_usd = client.cost_usd - cost0
    return outcome


def optimized_launch(
    client: FaaSClient,
    n_services: int = 6,
    launches: int = 6,
    instances_per_service: int = 800,
    interval_s: float = 10 * units.MINUTE,
    size: ContainerSize = SMALL,
    generation: str = "gen1",
    p_boot: float = 1.0,
    probe_hold_s: float = 2.0,
    service_prefix: str = "primed",
) -> LaunchOutcome:
    """Strategy 2: prime services hot via repeated interval launches.

    Every service is launched ``launches`` times at ``interval_s``; after
    each launch except the last, the attacker disconnects, letting some
    instances idle out so the next launch must create replacements — the
    mechanism that recruits helper hosts.  After the final launch the
    instances stay connected so a victim can be engaged.
    """
    cost0 = client.cost_usd
    names = [
        client.deploy(
            ServiceConfig(
                name=f"{service_prefix}-{i}",
                size=size,
                generation=generation,
                max_instances=max(100, instances_per_service),
            )
        )
        for i in range(n_services)
    ]
    outcome = LaunchOutcome(service_names=names)
    for launch_round in range(launches):
        round_start = client.now()
        final_round = launch_round == launches - 1
        for name in names:
            handles = client.connect(name, instances_per_service)
            tagged = _fingerprint_batch(handles, generation, p_boot)
            outcome.launch_footprints.append({fp for _, fp in tagged})
            # Keep the instances busy for the probe work, then idle them
            # out immediately — active time is what the attack pays for.
            client.wait(probe_hold_s)
            if final_round:
                outcome.handles.extend(handles)
                outcome.fingerprints.extend(tagged)
            else:
                client.disconnect(name)
        if not final_round:
            elapsed = client.now() - round_start
            client.wait(max(0.0, interval_s - elapsed))
    outcome.cost_usd = client.cost_usd - cost0
    return outcome
