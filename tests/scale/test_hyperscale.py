"""Hyperscale-tier tests: 64x fleets, million-event schedules.

These are the `scale`-marked companions to the tier-1 identity suites:
the same twin-world contracts, run at region scale instead of toy scale,
plus the two resource-ceiling regressions the hyperscale tiers depend on
(sparse service-count memory stays O(hosts), the event heap stays bounded
under schedule/cancel churn).

Excluded from tier-1 by the default ``-m 'not scale'`` addopts; run with::

    PYTHONPATH=src python -m pytest -m scale tests/scale
"""

from __future__ import annotations

import tracemalloc
from collections import deque

import numpy as np
import pytest

from repro.analysis.aggregation import FootprintAccumulator, census_reduce_scalar
from repro.cloud.loadbalancer import HelperHostRecruiter
from repro.cloud.services import Service, ServiceConfig
from repro.experiments.base import default_env
from repro.fleet import FleetStore
from repro.fleet.service_state import ServiceStateStore
from repro.simtime.clock import SimClock
from repro.simtime.scheduler import _COMPACT_MIN_DEAD, EventScheduler

from tests.conftest import tiny_profile
from tests.unit.test_hyperscale_identity import run_twin_launch_worlds

pytestmark = pytest.mark.scale

HYPERSCALE_FACTOR = 64
PAPER_FLEET_HOSTS = 520  # us-east1
PAPER_ACTIVE_HOSTS = 300


def hyperscale_profile(**overrides):
    """A 64x us-east1: ~33k hosts, ~19k serving, paper-shaped knobs."""
    knobs = dict(
        name="hyper-64x",
        n_hosts=PAPER_FLEET_HOSTS * HYPERSCALE_FACTOR,
        active_hosts=PAPER_ACTIVE_HOSTS * HYPERSCALE_FACTOR,
        shard_size=75,
        helper_recruit_fraction=0.064,
        helper_pool_cap=250,
        hot_min_concurrency=200,
    )
    knobs.update(overrides)
    return tiny_profile(**knobs)


def hyperscale_env_factory(seed=42, fault_plan=None, **profile_overrides):
    return default_env(
        profile=hyperscale_profile(**profile_overrides),
        seed=seed,
        fault_plan=fault_plan,
    )


# ----------------------------------------------------------------------
# Twin-world launch identity, sampled at 64x
# ----------------------------------------------------------------------


@pytest.mark.parametrize(
    "seed,shape",
    [
        (101, dict(n=900, launches=1, max_instances=1000)),
        (102, dict(n=600, launches=2, idle_deaths=True, max_instances=1000)),
        (103, dict(n=400, launches=2, kill_mid=True, max_instances=1000)),
    ],
    ids=["clean-wave", "idle-deaths", "killed-instance"],
)
def test_launch_identity_at_64x(seed, shape):
    """The tier-1 identity matrix, sampled on a 33k-host fleet with
    hot-launch waves big enough to trigger helper recruiting."""
    run_twin_launch_worlds(hyperscale_env_factory, seed, **shape)


def test_recruiter_identity_at_64x():
    """Gathered id resolution == the per-pick loop on a 33k-host fleet."""
    n_hosts = PAPER_FLEET_HOSTS * HYPERSCALE_FACTOR
    profile = hyperscale_profile(helper_recruit_fraction=0.5, helper_pool_cap=4096)
    candidates = np.arange(n_hosts, dtype=np.int64)
    np.random.default_rng(5).shuffle(candidates)

    def build():
        store = FleetStore([f"h{i:06d}" for i in range(n_hosts)])
        service = Service(
            config=ServiceConfig(name="svc"),
            account_id="account-1",
            image_id="image-0",
        )
        return store, service

    store, service = build()
    rng = np.random.default_rng(5)
    picked = HelperHostRecruiter(profile, rng).recruit(
        service, 5000, candidates, store
    )

    store_ref, _ = build()
    rng_ref = np.random.default_rng(5)
    count = min(2500, profile.helper_pool_cap, candidates.size)
    picked_pos = rng_ref.choice(candidates.size, size=count, replace=False)
    reference = [store_ref.host_id(int(candidates[pos])) for pos in picked_pos]

    assert picked == reference
    assert str(rng.bit_generator.state) == str(rng_ref.bit_generator.state)


def test_census_identity_at_million_observations():
    """FootprintAccumulator == set algebra over ~1M host observations
    (30 launches x a 64x serving pool's worth of fingerprints each)."""
    n_hosts = PAPER_FLEET_HOSTS * HYPERSCALE_FACTOR
    per_launch = PAPER_ACTIVE_HOSTS * HYPERSCALE_FACTOR  # wave-sized
    rng = np.random.default_rng(9)
    stream = [
        [("boot-bucket", int(b)) for b in rng.integers(n_hosts, size=per_launch)]
        for _ in range(30)
    ]
    ref_per, ref_cum = census_reduce_scalar(stream)
    acc = FootprintAccumulator()
    got = [acc.add_launch(launch) for launch in stream]
    assert [g[0] for g in got] == ref_per
    assert [g[1] for g in got] == ref_cum


# ----------------------------------------------------------------------
# Memory ceiling: service counts stay O(hosts), not O(hosts x services)
# ----------------------------------------------------------------------


def test_service_count_memory_stays_linear_in_touched_hosts():
    """5,000 services on a 64x fleet must cost megabytes, not the
    ~1.3 GB a dense per-service host column each would cost.

    The budget is deliberately loose (interpreter/allocator noise) but
    more than an order of magnitude under the dense equivalent, so any
    return to O(hosts x services) storage trips it immediately.
    """
    n_hosts = PAPER_FLEET_HOSTS * HYPERSCALE_FACTOR  # 33,280
    n_services = 5_000
    touched_per_service = 24

    host_ids = [f"h{i:06d}" for i in range(n_hosts)]
    rng = np.random.default_rng(3)
    placements = rng.integers(n_hosts, size=(n_services, touched_per_service))

    tracemalloc.start()
    store = FleetStore(host_ids, capacity_slots=160.0)
    state = ServiceStateStore()
    baseline, _ = tracemalloc.get_traced_memory()
    for s in range(n_services):
        key = f"account-{s % 7}/svc-{s:04d}"
        store.service_counts(key).add_at(placements[s])
        state.on_created(state.ensure(key), count=touched_per_service)
    after, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    growth = after - baseline
    dense_equivalent = n_services * n_hosts * 8  # one int64 column each
    assert dense_equivalent > 1_000_000_000
    assert growth < dense_equivalent / 20
    assert growth < 48 * 1024 * 1024

    # Sparse entries exist only for hosts a service actually touched.
    assert store.service_counts_touched() <= n_services * touched_per_service
    # And the dense state columns are O(services), independent of hosts.
    assert state.n_services == n_services


# ----------------------------------------------------------------------
# Event heap stays bounded across a million schedule/cancel cycles
# ----------------------------------------------------------------------


def test_scheduler_heap_bounded_over_million_cancel_cycles():
    """Schedule-then-cancel churn (idle reaps rescheduled on every
    reconnect) must never accumulate cancelled entries: lazy compaction
    keeps the heap within ~2x the live-event count."""
    clock = SimClock()
    sched = EventScheduler(clock)
    live: deque = deque()
    live_target = 100
    bound = 2 * (live_target + _COMPACT_MIN_DEAD)
    worst = 0
    for i in range(1_000_000):
        live.append(sched.call_at(1e12 + i, lambda: None))
        if len(live) > live_target:
            live.popleft().cancel()
        if len(sched._queue) > worst:
            worst = len(sched._queue)
    assert worst <= bound, f"heap grew to {worst} entries (bound {bound})"
