"""Unit tests for the process-pool runner and its determinism guarantee."""

import pytest

from repro.experiments.launch_behavior import _distribution_cell
from repro.faults import FaultPlan, FaultSpec
from repro.runner import (
    CellExecutionError,
    CellSpec,
    RunnerConfig,
    RunStats,
    run_cells,
)


def _slow_square(config: dict, seed: int) -> int:
    return config["x"] * config["x"] + seed


def _explode_on_three(config: dict, seed: int) -> int:
    if config["x"] == 3:
        raise ValueError("boom")
    return config["x"] * 10 + seed


def _make_specs(n: int) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="pool-demo",
            fn=_slow_square,
            config={"x": i},
            seed=i,
            label=f"cell-{i}",
        )
        for i in range(n)
    ]


class TestRunCells:
    def test_serial_results_in_spec_order(self):
        results = run_cells(_make_specs(5))
        assert [r.value for r in results] == [i * i + i for i in range(5)]
        assert [r.label for r in results] == [f"cell-{i}" for i in range(5)]

    def test_pool_results_in_spec_order(self):
        runner = RunnerConfig(parallelism=2)
        results = run_cells(_make_specs(5), runner)
        assert [r.value for r in results] == [i * i + i for i in range(5)]

    def test_stats_accumulate_across_calls(self):
        runner = RunnerConfig()
        run_cells(_make_specs(3), runner)
        run_cells(_make_specs(2), runner)
        assert runner.stats.cells == 5
        assert runner.stats.cache_hits == 0
        assert runner.stats.wall_seconds > 0.0

    def test_hit_rate_handles_zero_cells(self):
        assert RunStats().hit_rate == 0.0

    def test_summary_mentions_cells_and_hits(self):
        stats = RunStats(cells=4, cache_hits=3, parallelism=2)
        text = stats.summary()
        assert "4 cells" in text
        assert "3 cache hits" in text
        assert "75%" in text

    def test_empty_spec_list(self):
        assert run_cells([]) == []


def _fragile_specs(n: int = 5) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="fragile-demo",
            fn=_explode_on_three,
            config={"x": i},
            seed=i,
            label=f"cell-{i}",
        )
        for i in range(n)
    ]


class TestErrorIsolation:
    """The satellite-2 regression: one raising cell must not discard its
    siblings' work, and the propagated error must name the cell."""

    def test_failure_raises_labeled_error(self):
        runner = RunnerConfig(max_retries=0)
        with pytest.raises(CellExecutionError) as excinfo:
            run_cells(_fragile_specs(), runner)
        message = str(excinfo.value)
        assert "cell-3" in message
        assert "ValueError" in message
        assert "boom" in message
        assert "1 of 5 cells failed" in message

    def test_siblings_cached_despite_failure(self, tmp_path):
        runner = RunnerConfig(
            cache_read=True, cache_write=True, cache_dir=tmp_path, max_retries=0
        )
        with pytest.raises(CellExecutionError):
            run_cells(_fragile_specs(), runner)
        # A second run must restore every sibling from the cache — their
        # work was written as each cell completed, not lost to the raise.
        rerun = RunnerConfig(
            cache_read=True,
            cache_write=True,
            cache_dir=tmp_path,
            max_retries=0,
            isolate_errors=True,
        )
        results = run_cells(_fragile_specs(), rerun)
        assert [r.cached for r in results] == [True, True, True, False, True]

    def test_isolate_errors_returns_structured_results(self):
        runner = RunnerConfig(max_retries=0, isolate_errors=True)
        results = run_cells(_fragile_specs(), runner)
        assert [r.ok for r in results] == [True, True, True, False, True]
        failed = results[3]
        assert failed.value is None
        assert failed.error == "cell-3: ValueError: boom"
        assert [r.value for r in results if r.ok] == [0 * 10 + 0, 11, 22, 44]
        assert runner.stats.cell_errors == 1

    def test_pooled_failure_isolation_matches_serial(self):
        serial = run_cells(
            _fragile_specs(), RunnerConfig(max_retries=0, isolate_errors=True)
        )
        pooled = run_cells(
            _fragile_specs(),
            RunnerConfig(parallelism=2, max_retries=0, isolate_errors=True),
        )
        assert [(r.value, r.error) for r in serial] == [
            (r.value, r.error) for r in pooled
        ]

    def test_real_errors_are_retried(self):
        runner = RunnerConfig(max_retries=2, isolate_errors=True)
        run_cells(_fragile_specs(), runner)
        # The deterministic failure burns the full retry budget.
        assert runner.stats.cell_retries == 2
        assert runner.stats.cell_errors == 1


class TestFaultInjection:
    def _plan(self, rate=0.6, seed=1) -> FaultPlan:
        return FaultPlan(FaultSpec(cell_error_rate=rate, seed=seed))

    def test_injected_faults_recovered_by_retries(self):
        runner = RunnerConfig(fault_plan=self._plan(), max_retries=6)
        results = run_cells(_make_specs(6), runner)
        clean = run_cells(_make_specs(6))
        assert [r.value for r in results] == [r.value for r in clean]
        assert runner.stats.cell_retries > 0
        assert runner.stats.cell_errors == 0

    def test_certain_faults_exhaust_retries(self):
        runner = RunnerConfig(
            fault_plan=self._plan(rate=1.0), max_retries=2, isolate_errors=True
        )
        results = run_cells(_make_specs(3), runner)
        assert all(not r.ok for r in results)
        assert all("injected fault" in r.error for r in results)
        assert runner.stats.cell_errors == 3
        assert runner.stats.cell_retries == 6

    def test_fault_run_bypasses_cache(self, tmp_path):
        faulted = RunnerConfig(
            cache_read=True,
            cache_write=True,
            cache_dir=tmp_path,
            fault_plan=self._plan(),
            max_retries=6,
        )
        run_cells(_make_specs(4), faulted)
        # Nothing the faulted run produced may satisfy a clean run's reads.
        clean = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        run_cells(_make_specs(4), clean)
        assert clean.stats.cache_hits == 0

    def test_disabled_plan_keeps_cache_active(self, tmp_path):
        # An all-zero-rates plan injects nothing; caching stays on.
        runner = RunnerConfig(
            cache_read=True,
            cache_write=True,
            cache_dir=tmp_path,
            fault_plan=FaultPlan(),
        )
        run_cells(_make_specs(3), runner)
        results = run_cells(_make_specs(3), runner)
        assert all(r.cached for r in results)

    def test_serial_and_pooled_identical_under_faults(self):
        spec = FaultSpec(cell_error_rate=0.6, seed=1)
        serial = RunnerConfig(fault_plan=FaultPlan(spec), max_retries=6)
        pooled = RunnerConfig(
            fault_plan=FaultPlan(spec), max_retries=6, parallelism=2
        )
        a = run_cells(_make_specs(6), serial)
        b = run_cells(_make_specs(6), pooled)
        assert [r.value_digest() for r in a] == [r.value_digest() for r in b]
        # The fault schedule is deterministic, so both runs paid the exact
        # same retries — regardless of scheduling.
        assert serial.stats.cell_retries == pooled.stats.cell_retries


class TestSerialPoolIdentity:
    """The satellite-2 regression: the same ``CellSpec`` must produce a
    byte-identical ``CellResult`` whether it runs in-process or in a
    worker pool.  This exercises a real simulation cell end-to-end, so it
    catches any RNG that escapes the cell's master seed (module-level
    ``random``, iteration-order-dependent draws)."""

    def _real_specs(self) -> list[CellSpec]:
        params = {"region": "us-east1", "instances": 60, "ground_truth": "oracle"}
        return [
            CellSpec(
                experiment="exp1-test",
                fn=_distribution_cell,
                config=params,
                seed=seed,
                label=f"seed-{seed}",
            )
            for seed in (101, 202)
        ]

    def test_serial_and_pooled_results_byte_identical(self):
        serial = run_cells(self._real_specs())
        pooled = run_cells(self._real_specs(), RunnerConfig(parallelism=2))
        assert [r.value_digest() for r in serial] == [
            r.value_digest() for r in pooled
        ]

    def test_repeat_serial_run_byte_identical(self):
        first = run_cells(self._real_specs())
        second = run_cells(self._real_specs())
        assert [r.value_digest() for r in first] == [
            r.value_digest() for r in second
        ]

    def test_cached_value_byte_identical_to_computed(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        computed = run_cells(self._real_specs(), runner)
        restored = run_cells(self._real_specs(), runner)
        assert all(r.cached for r in restored)
        assert [r.value_digest() for r in computed] == [
            r.value_digest() for r in restored
        ]
