"""Unit tests for repeat-attack optimizations (victim profiling)."""


from repro import units
from repro.core.attack.targeting import VictimProfile, multi_account_footprint
from repro.core.fingerprint import Gen1Fingerprint


def fp(model="Intel Xeon CPU @ 2.00GHz", bucket=1000, p=1.0):
    return Gen1Fingerprint(cpu_model=model, boot_bucket=bucket, p_boot=p)


class TestVictimProfile:
    def test_exact_match_immediately(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp()})
        assert profile.matches(fp(), now=0.0)

    def test_model_mismatch_never_matches(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp()})
        assert not profile.matches(fp(model="AMD EPYC 7B12 @ 2.25GHz"), now=0.0)

    def test_precision_mismatch_never_matches(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp(p=1.0)})
        assert not profile.matches(fp(p=0.1, bucket=10000), now=0.0)

    def test_drift_tolerance_grows_with_time(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp(bucket=1000)})
        # One bucket of drift is tolerated immediately (+1 slack)...
        assert profile.matches(fp(bucket=1001), now=0.0)
        # ...three buckets are not...
        assert not profile.matches(fp(bucket=1003), now=0.0)
        # ...until enough days have passed.
        assert profile.matches(fp(bucket=1003), now=3 * units.DAY)

    def test_distant_bucket_rejected(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp(bucket=1000)})
        assert not profile.matches(fp(bucket=5000), now=10 * units.DAY)

    def test_select_targets_filters(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={fp(bucket=1000)})

        class Handle:
            def __init__(self, iid):
                self.instance_id = iid

        tagged = [
            (Handle("on-victim"), fp(bucket=1000)),
            (Handle("elsewhere"), fp(bucket=9999)),
        ]
        selected = profile.select_targets(tagged, now=0.0)
        assert [h.instance_id for h in selected] == ["on-victim"]

    def test_from_campaign_records_shared_clusters(self):
        class Handle:
            def __init__(self, iid):
                self.instance_id = iid

        victims = [Handle("v1"), Handle("v2")]
        cluster_of = {"v1": 0, "v2": 1, "a1": 0, "a2": 2}
        attacker_fps = {"a1": fp(bucket=1), "a2": fp(bucket=2)}
        profile = VictimProfile.from_campaign(
            now=123.0,
            victim_handles=victims,
            cluster_of=cluster_of,
            attacker_fingerprints=attacker_fps,
        )
        assert profile.recorded_at == 123.0
        # a1 shares cluster 0 with v1; a2's cluster 2 holds no victim.
        assert profile.fingerprints == {fp(bucket=1)}


class TestMultiAccount:
    def test_union_grows_with_accounts(self, tiny_env):
        one_union, _cost, _ = multi_account_footprint(
            [tiny_env.attacker],
            n_services_per_account=2,
            launches=3,
            instances_per_service=12,
        )
        three_union, _cost3, _ = multi_account_footprint(
            [tiny_env.victim("account-2"), tiny_env.victim("account-3")],
            n_services_per_account=2,
            launches=3,
            instances_per_service=12,
        )
        assert len(one_union | three_union) > len(one_union)

    def test_quota_caps_new_accounts(self, tiny_env):
        account = tiny_env.orchestrator.accounts["account-2"]
        account.max_instances_per_service = 4
        union, cost, outcomes = multi_account_footprint(
            [tiny_env.victim("account-2")],
            n_services_per_account=1,
            launches=2,
            instances_per_service=100,
        )
        # The launch was silently capped to the quota.
        assert len(outcomes[0].handles) == 4
        assert cost > 0
