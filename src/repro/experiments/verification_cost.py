"""§4.3: cost of co-location verification — scalable vs. pairwise.

For 800 instances the paper estimates conventional pairwise testing at
319,600 serialized tests (~8.9 hours at an optimistic 100 ms per test,
~645 USD at Cloud Run rates), while the fingerprint-guided method finishes
in 1-2 minutes for ~1-3 USD.  This experiment measures our scalable
verifier end to end and prices both approaches with the same billing model;
a small-N pairwise run validates the quadratic scaling empirically.

It also demonstrates why Single Instance Elimination (SIE) fails in FaaS:
every instance shares its host with siblings, so nothing tests negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cloud.billing import TIER1_RATES, pairwise_test_cost
from repro.cloud.services import SMALL, ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.pairwise import PairwiseVerifier
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env

PAPER_PAIRWISE_TESTS_800 = 319_600
PAPER_PAIRWISE_HOURS_800 = 8.9
PAPER_PAIRWISE_USD_800 = 645.0
PAPER_SCALABLE_MINUTES_800 = (1.0, 2.0)
PAPER_SCALABLE_USD_800 = (1.0, 3.0)


@dataclass(frozen=True)
class VerificationCostConfig:
    """Configuration for the §4.3 cost comparison."""

    region: str = "us-east1"
    instances: int = 800
    pairwise_sample: int = 40
    seconds_per_pairwise_test: float = 0.1
    threshold_m: int = 2
    seed: int = 900


@dataclass
class VerificationCostResult:
    """Measured and modeled verification costs."""

    n_instances: int = 0
    scalable_tests: int = 0
    scalable_batches: int = 0
    scalable_seconds: float = 0.0
    scalable_usd: float = 0.0
    scalable_hosts: int = 0
    pairwise_tests_modeled: int = 0
    pairwise_seconds_modeled: float = 0.0
    pairwise_usd_modeled: float = 0.0
    pairwise_sample_n: int = 0
    pairwise_sample_tests: int = 0
    sie_eliminated: int = 0

    @property
    def speedup(self) -> float:
        """Wall-clock advantage of the scalable method."""
        return self.pairwise_seconds_modeled / max(self.scalable_seconds, 1e-9)


def run(config: VerificationCostConfig = VerificationCostConfig()) -> VerificationCostResult:
    """Run the verification-cost comparison."""
    env = default_env(config.region, seed=config.seed)
    client = env.attacker
    service = client.deploy(
        ServiceConfig(name="verify-cost", max_instances=max(100, config.instances))
    )
    handles = client.connect(service, config.instances)
    tagged_pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    tagged = [
        TaggedInstance(handle=h, fingerprint=fp, model_key=fp.cpu_model)
        for h, fp in tagged_pairs
    ]

    channel = RngCovertChannel()
    verifier = ScalableVerifier(channel, threshold_m=config.threshold_m)
    report = verifier.verify(tagged)
    # Billing: all instances stay active while the batched tests run.
    scalable_usd = config.instances * TIER1_RATES.active_cost(
        SMALL.vcpus, SMALL.memory_gb, report.busy_seconds
    )

    n_tests, seconds, usd = pairwise_test_cost(
        config.instances, config.seconds_per_pairwise_test
    )

    result = VerificationCostResult(
        n_instances=config.instances,
        scalable_tests=report.n_tests,
        scalable_batches=report.n_batches,
        scalable_seconds=report.busy_seconds,
        scalable_usd=scalable_usd,
        scalable_hosts=report.n_hosts,
        pairwise_tests_modeled=n_tests,
        pairwise_seconds_modeled=seconds,
        pairwise_usd_modeled=usd,
    )

    # Small-N empirical pairwise run (with SIE) to validate the model and
    # demonstrate SIE's ineffectiveness in FaaS: sample whole fingerprint
    # groups so that, as on a real FaaS platform, every sampled instance is
    # co-located with some sibling and SIE cannot eliminate anything.
    groups: dict[object, list] = {}
    for handle, fp in tagged_pairs:
        groups.setdefault(fp, []).append(handle)
    sample = []
    for members in groups.values():
        sample.extend(members)
        if len(sample) >= config.pairwise_sample:
            break
    pairwise = PairwiseVerifier(RngCovertChannel(), use_sie=True)
    sample_report = pairwise.verify(sample)
    result.pairwise_sample_n = len(sample)
    result.pairwise_sample_tests = sample_report.n_tests
    result.sie_eliminated = sample_report.eliminated_by_sie
    return result
