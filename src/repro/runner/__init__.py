"""Parallel experiment runner: process-pool fan-out plus cell caching.

Experiment drivers decompose their work into independent ``(config, seed)``
cells (:class:`CellSpec`), hand them to :func:`run_cells`, and get back
:class:`CellResult` values in order.  Execution policy — worker count,
cache reads/writes, where the cache lives — is a :class:`RunnerConfig`,
threaded through from the CLI's ``--jobs`` / ``--no-cache`` flags or the
benchmark harness.
"""

from repro.errors import CellExecutionError
from repro.runner.cache import CACHE_DIR_ENV, CellCache, default_cache_dir
from repro.runner.cellspec import (
    CellResult,
    CellSpec,
    CellSpecError,
    cache_key,
    canonicalize,
)
from repro.runner.pool import RunnerConfig, RunStats, run_cells

__all__ = [
    "CACHE_DIR_ENV",
    "CellCache",
    "CellExecutionError",
    "CellResult",
    "CellSpec",
    "CellSpecError",
    "RunStats",
    "RunnerConfig",
    "cache_key",
    "canonicalize",
    "default_cache_dir",
    "run_cells",
]
