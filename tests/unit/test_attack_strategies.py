"""Unit tests for the launching strategies."""


from repro import units
from repro.core.attack.strategies import naive_launch, optimized_launch


class TestNaiveLaunch:
    def test_deploys_requested_services(self, tiny_env):
        outcome = naive_launch(tiny_env.attacker, n_services=3, instances_per_service=10)
        assert len(outcome.service_names) == 3
        assert len(outcome.handles) == 30

    def test_fingerprints_collected(self, tiny_env):
        outcome = naive_launch(tiny_env.attacker, n_services=2, instances_per_service=10)
        assert len(outcome.fingerprints) == 20
        assert len(outcome.apparent_hosts) >= 1

    def test_footprint_confined_to_base_hosts(self, tiny_env):
        outcome = naive_launch(tiny_env.attacker, n_services=2, instances_per_service=10)
        base = set(tiny_env.datacenter.shard_hosts(0))
        hosts = {
            tiny_env.orchestrator.true_host_of(h.instance_id) for h in outcome.handles
        }
        assert hosts <= base

    def test_instances_left_connected(self, tiny_env):
        outcome = naive_launch(tiny_env.attacker, n_services=1, instances_per_service=5)
        assert all(h.alive for h in outcome.handles)


class TestOptimizedLaunch:
    def launch(self, env, **kwargs):
        kwargs.setdefault("n_services", 2)
        kwargs.setdefault("launches", 3)
        kwargs.setdefault("instances_per_service", 10)
        kwargs.setdefault("interval_s", 10 * units.MINUTE)
        return optimized_launch(env.attacker, **kwargs)

    def test_final_round_stays_connected(self, tiny_env):
        outcome = self.launch(tiny_env)
        assert len(outcome.handles) == 20
        assert all(h.alive for h in outcome.handles)

    def test_records_per_launch_footprints(self, tiny_env):
        outcome = self.launch(tiny_env)
        assert len(outcome.launch_footprints) == 2 * 3  # services x launches

    def test_recruits_helper_hosts(self, tiny_env):
        """Repeated hot launches must spread past the base hosts."""
        outcome = self.launch(tiny_env, launches=4, instances_per_service=16)
        base = set(tiny_env.datacenter.shard_hosts(0))
        hosts = {
            tiny_env.orchestrator.true_host_of(h.instance_id) for h in outcome.handles
        }
        assert len(hosts - base) > 0

    def test_wider_footprint_than_naive(self, tiny_env_factory):
        env_naive = tiny_env_factory(seed=7)
        naive = naive_launch(env_naive.attacker, n_services=2, instances_per_service=16)
        env_opt = tiny_env_factory(seed=7)
        optimized = optimized_launch(
            env_opt.attacker,
            n_services=2,
            launches=4,
            instances_per_service=16,
            interval_s=10 * units.MINUTE,
        )
        assert len(optimized.apparent_hosts) > len(naive.apparent_hosts)

    def test_cost_tracked(self, tiny_env):
        outcome = self.launch(tiny_env)
        assert outcome.cost_usd > 0

    def test_gen2_strategy(self, tiny_env):
        outcome = self.launch(tiny_env, generation="gen2")
        assert all(h.generation == "gen2" for h in outcome.handles)

    def test_single_launch_equals_cold_behavior(self, tiny_env):
        outcome = self.launch(tiny_env, launches=1)
        base = set(tiny_env.datacenter.shard_hosts(0))
        hosts = {
            tiny_env.orchestrator.true_host_of(h.instance_id) for h in outcome.handles
        }
        assert hosts <= base
