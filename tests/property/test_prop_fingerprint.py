"""Property-based tests for fingerprint derivation and rounding."""

import math

from hypothesis import given, strategies as st

from repro.analysis.drift import DriftFit, estimate_expiration_time
from repro.core.fingerprint import Gen1Fingerprint, Gen1Sample

boot_times = st.floats(min_value=-1e9, max_value=1e9, allow_nan=False)
precisions = st.sampled_from([1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0, 1000.0])


@given(boot_times, precisions)
def test_rounding_error_bounded_by_half_precision(boot, p_boot):
    fp = Gen1Fingerprint.from_boot_time("m", boot, p_boot)
    assert abs(fp.boot_time - boot) <= p_boot / 2 + 1e-6 * p_boot


@given(boot_times, precisions)
def test_same_input_same_fingerprint(boot, p_boot):
    a = Gen1Fingerprint.from_boot_time("m", boot, p_boot)
    b = Gen1Fingerprint.from_boot_time("m", boot, p_boot)
    assert a == b
    assert hash(a) == hash(b)


@given(boot_times, st.floats(min_value=0.0, max_value=0.4), precisions)
def test_nearby_boot_times_usually_match(boot, jitter_fraction, p_boot):
    """Two measurements within the same bucket produce equal fingerprints."""
    bucket = round(boot / p_boot)
    center = bucket * p_boot
    other = center + jitter_fraction * p_boot
    a = Gen1Fingerprint.from_boot_time("m", center, p_boot)
    b = Gen1Fingerprint.from_boot_time("m", other, p_boot)
    assert a == b


@given(boot_times, precisions)
def test_distant_boot_times_never_match(boot, p_boot):
    a = Gen1Fingerprint.from_boot_time("m", boot, p_boot)
    b = Gen1Fingerprint.from_boot_time("m", boot + 2.1 * p_boot, p_boot)
    assert a != b


@given(
    st.floats(min_value=1e5, max_value=1e10, allow_nan=False),
    st.integers(min_value=0, max_value=10**15),
    st.floats(min_value=1e9, max_value=4e9),
)
def test_boot_time_equation_inverts(wall, tsc, freq):
    sample = Gen1Sample(
        cpu_model="m", tsc_value=tsc, wall_time=wall, reported_frequency_hz=freq
    )
    # T_w == T_boot + tsc / f by construction.
    assert sample.boot_time() + tsc / freq == wall


@given(
    st.floats(min_value=-1e-4, max_value=1e-4, allow_nan=False),
    st.floats(min_value=-1e6, max_value=1e6),
    precisions,
)
def test_expiration_nonnegative_and_bounded(slope, intercept, p_boot):
    fit = DriftFit(slope=slope, intercept=intercept, r_value=1.0)
    expiration = estimate_expiration_time(fit, at_wall_time=0.0, p_boot=p_boot)
    assert expiration >= 0.0
    if slope != 0.0:
        assert expiration <= p_boot / abs(slope) + 1e-6
    else:
        assert math.isinf(expiration)
