"""Co-location ground truth for experiments.

The paper generates ground truth with the scalable covert-channel
methodology (§4.3); our simulator can additionally reveal the *oracle* truth
(the real instance-to-host map), which is useful both to validate the
covert-channel methodology itself and to keep unit tests fast.

Experiment configs select between the two with ``ground_truth="covert"``
(the honest, black-box path — default for benchmarks) and
``ground_truth="oracle"``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.cloud.api import InstanceHandle
from repro.cloud.orchestrator import Orchestrator
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import Gen1Fingerprint
from repro.core.verification import ScalableVerifier, TaggedInstance

GROUND_TRUTH_MODES = ("covert", "oracle")


def truth_clusters(
    mode: str,
    orchestrator: Orchestrator,
    tagged_pairs: Sequence[tuple[InstanceHandle, Hashable]],
    assume_no_false_negatives: bool = False,
) -> dict[str, Hashable]:
    """Return instance id -> co-location cluster label.

    ``covert`` runs the scalable verifier over the covert channel (what a
    real attacker does); ``oracle`` reads the simulator's placement map.
    """
    if mode == "oracle":
        return {
            handle.instance_id: orchestrator.true_host_of(handle.instance_id)
            for handle, _fp in tagged_pairs
        }
    if mode != "covert":
        raise ValueError(
            f"unknown ground-truth mode {mode!r}; expected one of {GROUND_TRUTH_MODES}"
        )
    tagged = [
        TaggedInstance(
            handle=handle,
            fingerprint=fp,
            model_key=fp.cpu_model if isinstance(fp, Gen1Fingerprint) else None,
        )
        for handle, fp in tagged_pairs
    ]
    verifier = ScalableVerifier(
        RngCovertChannel(), assume_no_false_negatives=assume_no_false_negatives
    )
    report = verifier.verify(tagged)
    return report.cluster_index()
