"""Per-host CPU activity, observable through execution-time contention.

The paper's threat model assumes that, once co-located, "the attacker can
detect when the victim program is running" (§3).  The physical basis is
ordinary compute contention: a busy sibling slows the attacker's own
probe loops.  This meter models it at host granularity — instances register
busy periods (serving requests), and a co-located observer reads a noisy
count of currently-busy siblings.
"""

from __future__ import annotations

import numpy as np


class CpuActivityMeter:
    """Tracks which instances on a host are currently executing.

    Parameters
    ----------
    noise_rate:
        Per-observation probability of a spurious +-1 on the level
        (scheduler noise, unrelated host work).
    """

    def __init__(self, noise_rate: float = 0.02) -> None:
        if not 0.0 <= noise_rate < 1.0:
            raise ValueError(f"noise_rate out of range: {noise_rate!r}")
        self.noise_rate = noise_rate
        self._busy_until: dict[str, float] = {}

    def mark_busy(self, instance_id: str, now: float, duration: float) -> None:
        """Record that ``instance_id`` executes for ``duration`` seconds."""
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration!r}")
        current = self._busy_until.get(instance_id, now)
        self._busy_until[instance_id] = max(current, now) + duration

    def busy_count(self, now: float, exclude: str | None = None) -> int:
        """True number of busy instances at ``now`` (simulator-side)."""
        self._expire(now)
        return sum(
            1 for iid, until in self._busy_until.items()
            if until > now and iid != exclude
        )

    def observe(
        self, observer_id: str, now: float, rng: np.random.Generator
    ) -> int:
        """Contention level a co-located observer measures at ``now``.

        The observer's own activity does not slow itself in this metric;
        occasional scheduler noise perturbs the reading by one.
        """
        level = self.busy_count(now, exclude=observer_id)
        if rng.random() < self.noise_rate:
            level += 1 if rng.random() < 0.5 else -1
        return max(0, level)

    def _expire(self, now: float) -> None:
        expired = [iid for iid, until in self._busy_until.items() if until <= now]
        for iid in expired:
            del self._busy_until[iid]
