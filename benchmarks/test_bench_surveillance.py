"""Extension bench: all-day surveillance of an autoscaling victim.

Sustained co-location needs residency maintenance (idle instances die in
~12 minutes); this bench holds an attacker fleet through a victim's full
diurnal traffic cycle and reports hour-by-hour coverage and the day's bill.
"""

from repro.experiments import surveillance as sv
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = sv.SurveillanceConfig(duration_hours=12.0)


def test_all_day_surveillance(benchmark, emit):
    result = run_once(benchmark, lambda: sv.run(CONFIG))

    emit(
        format_series(
            "Surveillance — coverage across the victim's day",
            ("hour", "victim_instances", "coverage"),
            result.series,
        )
    )
    emit(
        f"setup ${result.setup_cost_usd:.2f} + maintenance "
        f"${result.maintenance_cost_usd:.2f} over {CONFIG.duration_hours:.0f} h "
        f"(${result.maintenance_cost_usd / CONFIG.duration_hours:.2f}/h)"
    )

    # Coverage holds through scale-out and scale-in alike.
    assert result.min_coverage > 0.9
    assert result.mean_coverage > 0.95
    # The victim fleet really breathed (peak >= 2x trough).
    victim_counts = [n for _h, n, _c in result.series]
    assert max(victim_counts) >= 2 * min(victim_counts)
    # Keep-alive is far cheaper than staying connected all day
    # (4,800 always-on Small instances would bill ~$105/day... per hour:).
    always_on_per_hour = 4800 * 3600 * (0.000024 + 0.512 * 0.0000025)
    measured_per_hour = result.maintenance_cost_usd / CONFIG.duration_hours
    assert measured_per_hour < always_on_per_hour / 20
