"""Extra coverage: chart rendering inside registry outputs and misc glue."""


from repro.experiments.registry import run_experiment


class TestRegistryCharts:
    def test_fig6_output_includes_chart(self):
        report = run_experiment("fig6", scale="quick")
        # Both the table and the ASCII decay curve are present.
        assert "idle" in report
        assert "|" in report and "*" in report

    def test_fig9_output_is_series_only(self):
        report = run_experiment("fig9", scale="quick")
        assert "cumulative" in report


class TestVersionMetadata:
    def test_version_string(self):
        import repro

        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_public_reexports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_subpackage_reexports_resolve(self):
        import repro.cloud
        import repro.core
        import repro.analysis
        import repro.hardware
        import repro.sandbox
        import repro.simtime

        for module in (
            repro.cloud, repro.core, repro.analysis,
            repro.hardware, repro.sandbox, repro.simtime,
        ):
            for name in module.__all__:
                assert getattr(module, name) is not None
