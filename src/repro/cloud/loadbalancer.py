"""Demand tracking and helper-host recruitment.

This module implements the load-balancing behavior the paper reverse
engineers in Experiment 4 (Observation 5): when a service sustains high
demand within a ~30-minute window, the orchestrator relieves pressure on the
account's base hosts by recruiting extra *helper hosts* for that service.
Helper sets are per-service, grow with the number of newly created instances
(short launch intervals terminate few instances, so few new hosts appear),
and saturate after repeated launches.
"""

from __future__ import annotations

import math

import numpy as np

from repro.cloud.services import Service
from repro.cloud.topology import RegionProfile
from repro.fleet import FleetStore


class DemandTracker:
    """Maintains per-service demand history for hotness decisions."""

    def __init__(self, profile: RegionProfile) -> None:
        self._profile = profile

    def record_demand(self, service: Service, now: float, concurrency: int) -> None:
        """Record that ``service`` ran ``concurrency`` concurrent instances."""
        service.demand_events.append((now, concurrency))
        # Trim events that can never matter again to bound memory.
        horizon = now - 2 * self._profile.hot_window
        service.demand_events = [
            (t, c) for (t, c) in service.demand_events if t >= horizon
        ]

    def is_hot(self, service: Service, now: float) -> bool:
        """True when the service saw high demand within the hot window.

        A *cold* service (no qualifying demand in the past
        ``profile.hot_window``) is placed on base hosts only; a hot one is
        eligible for helper-host recruitment.
        """
        cutoff = now - self._profile.hot_window
        return any(
            t > cutoff and c >= self._profile.hot_min_concurrency
            for (t, c) in service.demand_events
        )


class HelperHostRecruiter:
    """Grows a hot service's helper-host pool.

    Recruitment is proportional to the number of instances the launch had to
    newly create (Observation 5's mechanism: replacing terminated idle
    instances is what spills onto new hosts), and saturates at the profile's
    per-service cap.
    """

    def __init__(self, profile: RegionProfile, rng: np.random.Generator) -> None:
        self._profile = profile
        self._rng = rng

    def recruit(
        self,
        service: Service,
        new_instance_count: int,
        candidates: np.ndarray,
        store: FleetStore,
    ) -> list[str]:
        """Recruit helper hosts for ``service`` and return the new ones.

        Parameters
        ----------
        service:
            The hot service being scaled out.
        new_instance_count:
            Instances the orchestrator must newly create for this launch.
        candidates:
            Index array (into ``store``) of serving-pool hosts not already
            used by this service (neither base nor existing helpers), in
            pool order — the draw below indexes into this order.
        store:
            The fleet store resolving indices back to host ids.
        """
        if new_instance_count <= 0 or candidates.size == 0:
            return []
        room = self._profile.helper_pool_cap - len(service.helper_host_ids)
        if room <= 0:
            return []
        want = math.ceil(new_instance_count * self._profile.helper_recruit_fraction)
        count = min(want, room, candidates.size)
        if count <= 0:
            return []
        picked_pos = self._rng.choice(candidates.size, size=count, replace=False)
        # Same single RNG draw as ever; the id resolve is one gather over
        # the store's cached id column instead of a per-pick Python loop
        # (recruitment batches reach thousands of hosts at 64x scale).
        picked = list(store.ids_of(candidates[picked_pos]))
        service.helper_host_ids.extend(picked)
        return picked
