"""Unit tests for the datacenter (fleet, serving pool, shards)."""

import pytest

from repro.cloud.datacenter import DataCenter
from repro.errors import CloudError
from repro.simtime.clock import SimClock

from tests.conftest import tiny_profile


def make_dc(seed=1, **overrides):
    clock = SimClock()
    return DataCenter(tiny_profile(**overrides), clock, seed=seed), clock


class TestDataCenter:
    def test_fleet_size_matches_profile(self):
        dc, _clock = make_dc()
        assert len(dc.hosts) == dc.profile.n_hosts

    def test_serving_pool_size(self):
        dc, _clock = make_dc()
        assert len(dc.serving_pool()) == dc.profile.active_hosts

    def test_serving_pool_is_subset_of_fleet(self):
        dc, _clock = make_dc()
        fleet_ids = {h.host_id for h in dc.hosts}
        assert set(dc.serving_pool()) <= fleet_ids

    def test_host_lookup(self):
        dc, _clock = make_dc()
        host = dc.hosts[0]
        assert dc.host(host.host_id) is host

    def test_unknown_host_rejected(self):
        dc, _clock = make_dc()
        with pytest.raises(CloudError):
            dc.host("nope")

    def test_shards_partition_initial_pool(self):
        dc, _clock = make_dc()
        all_shard_hosts = []
        for i in range(dc.profile.n_shards):
            all_shard_hosts.extend(dc.shard_hosts(i))
        assert len(all_shard_hosts) == len(set(all_shard_hosts))
        assert len(all_shard_hosts) == dc.profile.n_shards * dc.profile.shard_size

    def test_shard_out_of_range(self):
        dc, _clock = make_dc()
        with pytest.raises(CloudError):
            dc.shard_hosts(dc.profile.n_shards)

    def test_pinned_accounts_map_to_plan_shards(self):
        dc, _clock = make_dc()
        assert dc.shard_for_account("account-1") == 0
        assert dc.shard_for_account("account-2") == 1

    def test_unknown_account_hashes_deterministically(self):
        dc1, _ = make_dc(seed=1)
        dc2, _ = make_dc(seed=2)
        assert dc1.shard_for_account("stranger") == dc2.shard_for_account("stranger")
        assert 0 <= dc1.shard_for_account("stranger") < dc1.profile.n_shards

    def test_dynamism_zero_outside_dynamic_regions(self):
        dc, _clock = make_dc()
        assert dc.dynamism_for_account("account-2") == 0.0

    def test_dynamism_in_dynamic_region(self):
        dc, _clock = make_dc(dynamic_placement=True, default_dynamism=0.3)
        assert dc.dynamism_for_account("unpinned-account") == 0.3


class TestRotation:
    def test_pool_rotates_over_time(self):
        dc, clock = make_dc(rotation_fraction=0.2)
        before = set(dc.serving_pool())
        clock.sleep(dc.profile.rotation_period * 5)
        after = set(dc.serving_pool())
        assert before != after
        assert len(after) == len(before)

    def test_no_rotation_before_period(self):
        dc, clock = make_dc(rotation_fraction=0.2)
        before = set(dc.serving_pool())
        clock.sleep(dc.profile.rotation_period * 0.5)
        assert set(dc.serving_pool()) == before

    def test_rotation_eventually_reveals_most_hosts(self):
        dc, clock = make_dc(rotation_fraction=0.2)
        seen = set(dc.serving_pool())
        for _ in range(40):
            clock.sleep(dc.profile.rotation_period)
            seen |= set(dc.serving_pool())
        assert len(seen) > 0.9 * dc.profile.n_hosts

    def test_shards_stay_fixed_under_rotation(self):
        dc, clock = make_dc(rotation_fraction=0.2)
        shard0_before = dc.shard_hosts(0)
        clock.sleep(dc.profile.rotation_period * 10)
        dc.serving_pool()
        assert dc.shard_hosts(0) == shard0_before
