"""A simulated wall clock.

The clock only ever moves forward.  Components that need the current time
hold a reference to a shared :class:`SimClock`; experiment drivers advance it
explicitly (``clock.sleep(...)``), which also fires any events registered on
an attached :class:`~repro.simtime.scheduler.EventScheduler`.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ClockError

#: Default simulation epoch (an arbitrary but fixed "now", in Unix seconds).
SIM_EPOCH: float = 1_700_000_000.0


class SimClock:
    """A monotonically increasing simulated wall clock.

    Parameters
    ----------
    start:
        Initial wall-clock time, in seconds since the Unix epoch.

    Examples
    --------
    >>> clock = SimClock()
    >>> t0 = clock.now()
    >>> clock.sleep(5.0)
    >>> clock.now() - t0
    5.0
    """

    def __init__(self, start: float = SIM_EPOCH) -> None:
        self._now = float(start)
        self._tick_hooks: list[Callable[[float], None]] = []

    def now(self) -> float:
        """Return the current simulated time in seconds since the epoch."""
        return self._now

    def sleep(self, duration: float) -> None:
        """Advance the clock by ``duration`` seconds.

        Raises
        ------
        ClockError
            If ``duration`` is negative.
        """
        if duration < 0:
            raise ClockError(f"cannot sleep for a negative duration: {duration!r}")
        self.advance_to(self._now + duration)

    def advance_to(self, when: float) -> None:
        """Advance the clock to the absolute time ``when``.

        Raises
        ------
        ClockError
            If ``when`` is in the past.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move time backwards: now={self._now!r}, requested={when!r}"
            )
        self._now = float(when)
        for hook in self._tick_hooks:
            hook(self._now)

    def add_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Register ``hook(now)`` to run after every clock advancement.

        Hooks are how the event scheduler and the orchestrator's background
        reaper observe the passage of time without polling.
        """
        self._tick_hooks.append(hook)

    def remove_tick_hook(self, hook: Callable[[float], None]) -> None:
        """Unregister a previously added tick hook."""
        self._tick_hooks.remove(hook)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={self._now!r})"
