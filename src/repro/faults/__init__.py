"""Deterministic fault injection and bounded-retry recovery.

The subsystem has two halves:

* **Injection** — a seeded :class:`FaultSpec`/:class:`FaultPlan` pair
  whose per-event decisions are pure hashes of ``(seed, site, token)``,
  injected at well-defined seams: instance launches
  (:class:`~repro.cloud.orchestrator.Orchestrator`), CTest execution
  (:class:`~repro.core.covert.RngCovertChannel`), and experiment cells
  (:func:`~repro.runner.pool.run_cells`).
* **Recovery** — :class:`RetryPolicy` driving bounded
  retry-with-backoff at each of those seams, plus per-cell error
  isolation in the runner.

With all rates zero (or no plan installed) every seam is bit-for-bit
identical to the fault-free code path.
"""

from repro.faults.context import current_fault_plan, fault_context
from repro.faults.plan import FaultCounters, FaultPlan, FaultSpec, hashed_uniform
from repro.faults.retry import (
    DEFAULT_CTEST_RETRY,
    DEFAULT_LAUNCH_RETRY,
    DEFAULT_LOCATE_RETRY,
    RetryPolicy,
)

__all__ = [
    "DEFAULT_CTEST_RETRY",
    "DEFAULT_LAUNCH_RETRY",
    "DEFAULT_LOCATE_RETRY",
    "FaultCounters",
    "FaultPlan",
    "FaultSpec",
    "RetryPolicy",
    "current_fault_plan",
    "fault_context",
    "hashed_uniform",
]
