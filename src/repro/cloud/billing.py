"""Cloud Run-style billing.

The paper estimates attack cost with the published Cloud Run pricing model
(§4.3): for an instance requesting ``C`` vCPUs and ``M`` GB of memory that is
*active* for ``t`` seconds, the cost in USD is ``t * (C * R_cpu + M * R_mem)``
where ``R_cpu`` and ``R_mem`` are the per-vCPU-second and per-GB-second
rates.  Idle instances are charged nothing under the default (request-based)
billing.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PricingRates:
    """Per-region pricing rates, in USD.

    The paper quotes, for us-east1/us-central1/us-west1 (tier 1 regions):
    R_cpu = ¢0.0024 per vCPU-second and R_mem = ¢0.00025 per GB-second.
    """

    cpu_usd_per_vcpu_second: float = 0.0024 / 100.0
    memory_usd_per_gb_second: float = 0.00025 / 100.0

    def active_cost(self, vcpus: float, memory_gb: float, active_seconds: float) -> float:
        """Cost of one instance being active for ``active_seconds``."""
        per_second = (
            vcpus * self.cpu_usd_per_vcpu_second
            + memory_gb * self.memory_usd_per_gb_second
        )
        return per_second * active_seconds


#: Rates for the three datacenters evaluated in the paper (identical tier).
TIER1_RATES = PricingRates()


@dataclass
class BillingMeter:
    """Accumulates billable vCPU-seconds and GB-seconds for one account.

    Attributes
    ----------
    rates:
        The region's pricing rates.
    vcpu_seconds:
        Total active vCPU-seconds billed so far.
    gb_seconds:
        Total active GB-seconds billed so far.
    """

    rates: PricingRates = field(default_factory=PricingRates)
    vcpu_seconds: float = 0.0
    gb_seconds: float = 0.0

    def charge_active(self, vcpus: float, memory_gb: float, active_seconds: float) -> None:
        """Record ``active_seconds`` of activity for one instance."""
        if active_seconds < 0:
            raise ValueError(f"active_seconds must be >= 0, got {active_seconds!r}")
        self.vcpu_seconds += vcpus * active_seconds
        self.gb_seconds += memory_gb * active_seconds

    @property
    def total_usd(self) -> float:
        """Total accumulated cost in USD."""
        return (
            self.vcpu_seconds * self.rates.cpu_usd_per_vcpu_second
            + self.gb_seconds * self.rates.memory_usd_per_gb_second
        )

    def reset(self) -> None:
        """Zero the meter (used between experiment repetitions)."""
        self.vcpu_seconds = 0.0
        self.gb_seconds = 0.0


def pairwise_test_cost(
    n_instances: int,
    seconds_per_test: float,
    vcpus: float = 1.0,
    memory_gb: float = 0.5,
    rates: PricingRates = TIER1_RATES,
) -> tuple[int, float, float]:
    """Cost model for conventional pairwise covert-channel verification.

    All ``n_instances`` stay active for the duration of the serialized
    pairwise test campaign (tests are serialized to avoid interference), so
    the bill is ``n * T * (C*R_cpu + M*R_mem)`` where ``T`` is the total
    campaign duration.

    Returns
    -------
    (n_tests, total_seconds, total_usd)
    """
    n_tests = n_instances * (n_instances - 1) // 2
    total_seconds = n_tests * seconds_per_test
    total_usd = n_instances * rates.active_cost(vcpus, memory_gb, total_seconds)
    return n_tests, total_seconds, total_usd
