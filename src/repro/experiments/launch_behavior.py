"""Experiments 1-4 of §5.1: reverse engineering the placement policy.

* **Experiment 1 / Observation 1** — instance distribution: 800 instances
  of one service land on ~75 hosts, ~10-11 instances each, near-uniform.
* **Experiment 2 / Fig. 7** — repeated cold launches (45-minute interval):
  per-launch apparent hosts stay ~constant and the cumulative count barely
  grows (base hosts).  Also holds with a *different* service per launch.
* **Experiment 3 / Fig. 8** — launches from three different accounts: the
  cumulative apparent-host count steps up at every account change.
* **Experiment 4 / Fig. 9** — launches at a short (10-minute) interval:
  both curves grow sharply (helper hosts); a 2-minute interval adds almost
  nothing; intervals >= 30 minutes behave like Fig. 7.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env
from repro.experiments.ground_truth import truth_clusters
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_EXP1_HOSTS = 75
PAPER_EXP1_TYPICAL_PER_HOST = (10, 11)
PAPER_FIG9_CUMULATIVE_AFTER_6 = 264
PAPER_FIG9_EXTRA_AT_2MIN = 12


# ----------------------------------------------------------------------
# Experiment 1: instance distribution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DistributionConfig:
    region: str = "us-east1"
    instances: int = 800
    ground_truth: str = "covert"
    seed: int = 500


@dataclass
class DistributionResult:
    n_hosts: int
    per_host_counts: list[int]

    @property
    def min_per_host(self) -> int:
        return min(self.per_host_counts)

    @property
    def max_per_host(self) -> int:
        return max(self.per_host_counts)

    @property
    def modal_share(self) -> float:
        """Fraction of hosts holding the two most common counts."""
        counts = Counter(self.per_host_counts)
        top_two = sum(n for _value, n in counts.most_common(2))
        return top_two / len(self.per_host_counts)


def _distribution_cell(params: dict, seed: int) -> DistributionResult:
    """The Experiment 1 simulation body (one cell)."""
    env = default_env(params["region"], seed=seed)
    client = env.attacker
    instances = params["instances"]
    service = client.deploy(
        ServiceConfig(name="exp1", max_instances=max(100, instances))
    )
    handles = client.connect(service, instances)
    tagged_pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    truth = truth_clusters(params["ground_truth"], env.orchestrator, tagged_pairs)
    counts = Counter(truth.values())
    return DistributionResult(
        n_hosts=len(counts), per_host_counts=sorted(counts.values())
    )


def run_distribution(
    config: DistributionConfig = DistributionConfig(),
    runner: RunnerConfig | None = None,
) -> DistributionResult:
    """Experiment 1: how 800 instances spread over hosts."""
    spec = CellSpec(
        experiment="exp1",
        fn=_distribution_cell,
        config={
            "region": config.region,
            "instances": config.instances,
            "ground_truth": config.ground_truth,
        },
        seed=config.seed,
        label=config.region,
    )
    return run_cells([spec], runner)[0].value


# ----------------------------------------------------------------------
# Experiments 2-4: footprints across launches
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class LaunchSeriesConfig:
    """A sequence of launches whose footprints are compared.

    ``account_pattern`` gives the launching account per launch (Fig. 8 uses
    ``(1, 1, 2, 2, 3, 3)``); ``fresh_service_per_launch`` redeploys (and
    rebuilds the image of) a new service every launch, testing the
    data-locality hypothesis of Experiment 2.
    """

    region: str = "us-east1"
    launches: int = 6
    instances: int = 800
    interval: float = 45 * units.MINUTE
    account_pattern: tuple[int, ...] | None = None
    fresh_service_per_launch: bool = False
    p_boot: float = 1.0
    seed: int = 510


@dataclass
class LaunchSeriesResult:
    """Per-launch and cumulative apparent-host counts."""

    per_launch: list[int] = field(default_factory=list)
    cumulative: list[int] = field(default_factory=list)
    accounts: list[str] = field(default_factory=list)

    @property
    def growth(self) -> int:
        """Cumulative growth from the first launch to the last."""
        return self.cumulative[-1] - self.cumulative[0]

    def growth_at_account_changes(self) -> list[int]:
        """Cumulative jumps at launches where the account changed."""
        jumps = []
        for i in range(1, len(self.cumulative)):
            if self.accounts[i] != self.accounts[i - 1]:
                jumps.append(self.cumulative[i] - self.cumulative[i - 1])
        return jumps


def _series_cell(params: dict, seed: int) -> LaunchSeriesResult:
    """One launch-series cell (the whole sequence is one simulation)."""
    account_pattern = params["account_pattern"]
    config = LaunchSeriesConfig(
        region=params["region"],
        launches=params["launches"],
        instances=params["instances"],
        interval=params["interval"],
        account_pattern=tuple(account_pattern) if account_pattern else None,
        fresh_service_per_launch=params["fresh_service_per_launch"],
        p_boot=params["p_boot"],
        seed=seed,
    )
    env = default_env(config.region, seed=config.seed)
    pattern = config.account_pattern or tuple([1] * config.launches)
    if len(pattern) != config.launches:
        raise ValueError("account_pattern length must equal launches")

    result = LaunchSeriesResult()
    seen: set = set()
    services: dict[str, str] = {}
    for launch_idx, account_no in enumerate(pattern):
        account_id = f"account-{account_no}"
        client = env.clients[account_id]
        if config.fresh_service_per_launch or account_id not in services:
            name = client.deploy(
                ServiceConfig(
                    name=f"series-{launch_idx}",
                    max_instances=max(100, config.instances),
                )
            )
            client.rebuild_image(name)
            services[account_id] = name
        name = services[account_id]

        launch_start = client.now()
        handles = client.connect(name, config.instances)
        tagged = fingerprint_gen1_instances(handles, p_boot=config.p_boot)
        footprint = {fp for _, fp in tagged}
        seen |= footprint
        result.per_launch.append(len(footprint))
        result.cumulative.append(len(seen))
        result.accounts.append(account_id)
        client.disconnect(name)
        if launch_idx != config.launches - 1:
            elapsed = client.now() - launch_start
            client.wait(max(0.0, config.interval - elapsed))
    return result


def run_launch_series(
    config: LaunchSeriesConfig = LaunchSeriesConfig(),
    runner: RunnerConfig | None = None,
) -> LaunchSeriesResult:
    """Run a launch sequence and record apparent-host footprints."""
    spec = CellSpec(
        experiment="launch-series",
        fn=_series_cell,
        config={
            "region": config.region,
            "launches": config.launches,
            "instances": config.instances,
            "interval": config.interval,
            "account_pattern": config.account_pattern,
            "fresh_service_per_launch": config.fresh_service_per_launch,
            "p_boot": config.p_boot,
        },
        seed=config.seed,
        label=f"{config.region}/{config.interval / units.MINUTE:.0f}min",
    )
    return run_cells([spec], runner)[0].value


@dataclass(frozen=True)
class IntervalSweepConfig:
    """Fig. 9's companion sweep: footprint growth vs. launch interval."""

    region: str = "us-east1"
    intervals_minutes: tuple[float, ...] = (2.0, 10.0, 30.0, 45.0)
    launches: int = 6
    instances: int = 800
    seed: int = 520


def run_interval_sweep(
    config: IntervalSweepConfig = IntervalSweepConfig(),
    runner: RunnerConfig | None = None,
) -> dict[float, LaunchSeriesResult]:
    """Run the launch series once per interval; returns interval -> result.

    Each interval is an independent cell, so the sweep fans out at once.
    """
    specs = [
        CellSpec(
            experiment="launch-series",
            fn=_series_cell,
            config={
                "region": config.region,
                "launches": config.launches,
                "instances": config.instances,
                "interval": minutes * units.MINUTE,
                "account_pattern": None,
                "fresh_service_per_launch": False,
                "p_boot": 1.0,
            },
            seed=config.seed + offset,
            label=f"{config.region}/{minutes:.0f}min",
        )
        for offset, minutes in enumerate(config.intervals_minutes)
    ]
    results = run_cells(specs, runner)
    return {
        minutes: cell.value
        for minutes, cell in zip(config.intervals_minutes, results)
    }
