"""Integration tests: fault-injected runs recover to fault-free results.

The recovery machinery (launch retries, CTest re-runs, cell retries) is
only worth having if a run under injected platform noise converges to the
same *answer* as a clean run — these tests pin that end to end.
"""

from repro.core.covert import RngCovertChannel
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.cloud.services import ServiceConfig
from repro.experiments.launch_behavior import _distribution_cell
from repro.faults import FaultPlan, FaultSpec, RetryPolicy
from repro.runner import CellSpec, RunnerConfig, run_cells


def launch_and_tag(env, n, name="svc"):
    client = env.attacker
    service = client.deploy(ServiceConfig(name=name))
    handles = client.connect(service, n)
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    return [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]


def clusters_of(report):
    return {
        frozenset(h.instance_id for h in cluster) for cluster in report.clusters
    }


class TestNoisyVerification:
    def test_noisy_channel_reaches_clean_clusters(self, tiny_env_factory):
        """CTest noise and mid-test deaths, with a bigger retry budget,
        must converge to the clusters a fault-free run finds."""
        clean_env = tiny_env_factory(seed=7)
        clean = ScalableVerifier(RngCovertChannel()).verify(
            launch_and_tag(clean_env, 40)
        )

        noisy_env = tiny_env_factory(seed=7)
        plan = FaultPlan(FaultSpec(ctest_noise_rate=0.01, ctest_death_rate=0.02, seed=3))
        channel = RngCovertChannel(fault_plan=plan)
        noisy = ScalableVerifier(
            channel, retry_policy=RetryPolicy(max_retries=4)
        ).verify(launch_and_tag(noisy_env, 40))

        assert plan.counters.total_injected > 0  # the drill actually fired
        assert clusters_of(noisy) == clusters_of(clean)

    def test_noise_costs_extra_tests_not_accuracy(self, tiny_env_factory):
        clean_env = tiny_env_factory(seed=13)
        clean = ScalableVerifier(RngCovertChannel()).verify(
            launch_and_tag(clean_env, 30)
        )
        noisy_env = tiny_env_factory(seed=13)
        plan = FaultPlan(FaultSpec(ctest_noise_rate=0.03, seed=5))
        channel = RngCovertChannel(fault_plan=plan)
        noisy = ScalableVerifier(
            channel, retry_policy=RetryPolicy(max_retries=4)
        ).verify(launch_and_tag(noisy_env, 30))
        assert clusters_of(noisy) == clusters_of(clean)
        assert noisy.n_tests >= clean.n_tests


class TestLaunchFaultRecovery:
    def test_launch_faults_recovered_by_retries(self, tiny_env_factory):
        plan = FaultPlan(
            FaultSpec(launch_error_rate=0.2, slow_launch_rate=0.1, seed=2)
        )
        env = tiny_env_factory(seed=9, fault_plan=plan)
        client = env.attacker
        service = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(service, 30)
        # Every requested instance arrived despite injected launch errors.
        assert len(handles) == 30
        assert all(h.alive for h in handles)
        assert plan.counters.launch_errors > 0
        assert plan.counters.launch_retries > 0
        assert plan.counters.slow_launches > 0

    def test_slow_launches_cost_wall_time_only(self, tiny_env_factory):
        clean_env = tiny_env_factory(seed=9)
        clean_client = clean_env.attacker
        clean_client.connect(clean_client.deploy(ServiceConfig(name="svc")), 20)

        plan = FaultPlan(FaultSpec(slow_launch_rate=0.5, slow_launch_seconds=4.0, seed=1))
        slow_env = tiny_env_factory(seed=9, fault_plan=plan)
        slow_client = slow_env.attacker
        handles = slow_client.connect(
            slow_client.deploy(ServiceConfig(name="svc")), 20
        )
        assert len(handles) == 20
        assert plan.counters.slow_launches > 0
        assert slow_env.clock.now() > clean_env.clock.now()


class TestCellFaultRecovery:
    def _specs(self):
        params = {"region": "us-east1", "instances": 60, "ground_truth": "oracle"}
        return [
            CellSpec(
                experiment="exp1-test",
                fn=_distribution_cell,
                config=params,
                seed=seed,
                label=f"seed-{seed}",
            )
            for seed in (101, 202)
        ]

    def test_cell_faults_reach_identical_values(self):
        """Cells that fail and are retried yield byte-identical values to a
        fault-free run: injection happens *before* the cell computes, and
        the cell's randomness derives only from its seed."""
        clean = run_cells(self._specs())
        runner = RunnerConfig(
            fault_plan=FaultPlan(FaultSpec(cell_error_rate=0.5, seed=4)),
            max_retries=5,
        )
        faulted = run_cells(self._specs(), runner)
        assert all(r.ok for r in faulted)
        assert [r.value_digest() for r in faulted] == [
            r.value_digest() for r in clean
        ]
