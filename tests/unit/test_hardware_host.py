"""Unit tests for host and fleet construction."""

import numpy as np

from repro import units
from repro.hardware.host import HostFleetConfig, build_fleet
from repro.simtime.clock import SIM_EPOCH

from tests.conftest import make_host


class TestPhysicalHost:
    def test_boot_time_delegates_to_tsc(self):
        host = make_host(boot_age_s=5 * units.DAY)
        assert host.boot_time == SIM_EPOCH - 5 * units.DAY

    def test_default_capacity_holds_many_small_instances(self):
        assert make_host().capacity_slots >= 64


class TestBuildFleet:
    def build(self, n=200, seed=7, **overrides):
        config = HostFleetConfig(n_hosts=n, **overrides)
        rng = np.random.default_rng(seed)
        return build_fleet(config, SIM_EPOCH, rng)

    def test_fleet_size(self):
        assert len(self.build(n=50)) == 50

    def test_host_ids_unique(self):
        fleet = self.build()
        assert len({h.host_id for h in fleet}) == len(fleet)

    def test_boot_times_in_window(self):
        fleet = self.build(boot_window_days=30.0)
        for host in fleet:
            age = SIM_EPOCH - host.boot_time
            assert 0.5 * units.DAY < age < 31 * units.DAY

    def test_problematic_fraction_approx(self):
        fleet = self.build(n=2000, problematic_fraction=0.10)
        fraction = np.mean([h.problematic_timing for h in fleet])
        assert 0.06 < fraction < 0.14

    def test_zero_problematic_fraction(self):
        fleet = self.build(problematic_fraction=0.0)
        assert not any(h.problematic_timing for h in fleet)

    def test_actual_frequency_deviates_from_reported(self):
        fleet = self.build(n=100)
        for host in fleet:
            epsilon = host.cpu.reported_tsc_frequency_hz - host.tsc.actual_frequency_hz
            assert epsilon != 0.0
            assert abs(epsilon) <= 3.0 * units.MHZ

    def test_cpu_models_come_from_catalog(self):
        from repro.hardware.cpu import cpu_catalog

        names = {m.name for m in cpu_catalog()}
        fleet = self.build(n=100)
        assert all(h.cpu.name in names for h in fleet)

    def test_maintenance_waves_cluster_boot_times(self):
        """With waves enabled, many host pairs boot within an hour of each
        other — far more than a uniform spread would produce."""
        fleet = self.build(n=300, maintenance_wave_fraction=0.9, n_maintenance_waves=3)
        boots = np.sort([h.boot_time for h in fleet])
        close_pairs = np.sum(np.diff(boots) < 60.0)
        fleet_uniform = self.build(n=300, maintenance_wave_fraction=0.0)
        boots_u = np.sort([h.boot_time for h in fleet_uniform])
        close_pairs_u = np.sum(np.diff(boots_u) < 60.0)
        assert close_pairs > 3 * max(close_pairs_u, 1)

    def test_deterministic_given_seed(self):
        fleet_a = self.build(seed=9)
        fleet_b = self.build(seed=9)
        assert [h.boot_time for h in fleet_a] == [h.boot_time for h in fleet_b]
        fleet_c = self.build(seed=10)
        assert [h.boot_time for h in fleet_a] != [h.boot_time for h in fleet_c]
