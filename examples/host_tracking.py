#!/usr/bin/env python3
"""Tracking physical hosts over a week through TSC fingerprints (§4.4.2).

The decisive advantage of fingerprints over pairwise covert channels is
*persistence*: an attacker can recognize the same physical host across
hours or days of launches.  The limit is drift — the reported TSC frequency
is slightly wrong, so the derived boot time creeps linearly until it
crosses a rounding boundary and the fingerprint expires.

This example keeps one probe instance per apparent host for a simulated
week, fits each host's drift line, and prints the expiration forecast.

Run:  python examples/host_tracking.py
"""

from repro import units
from repro.core.attack.tracking import HostTracker
from repro.experiments.base import default_env


def main() -> None:
    env = default_env("us-east1", seed=23)
    tracker = HostTracker(env.attacker, n_launch=100)
    n_hosts = tracker.start()
    print(f"tracking {n_hosts} apparent hosts, sampling hourly for 7 days...")

    histories = tracker.run(
        duration_s=7 * units.DAY,
        cadence_s=1 * units.HOUR,
    )

    fits = [(history, history.fit_drift()) for history in histories]
    min_r = min(abs(fit.r_value) for _h, fit in fits)
    print(f"drift linearity: min |r| across {len(fits)} histories = {min_r:.5f}")

    expirations = sorted(
        history.expiration_seconds(p_boot=1.0) / units.DAY for history, _ in fits
    )
    print("fingerprint expiration forecast (p_boot = 1 s):")
    for day in (1, 2, 3, 5, 7):
        expired = sum(1 for e in expirations if e <= day)
        print(f"  within {day} day(s): {expired:>3} / {len(expirations)} "
              f"({100 * expired / len(expirations):.0f}%)")

    fastest = expirations[0]
    slowest = expirations[-1]
    print(f"fastest-drifting host expires in {fastest:.2f} days; "
          f"slowest in {slowest:.1f} days")

    # Show one host's drift line explicitly.
    history, fit = fits[0]
    drift_ms_per_day = fit.slope * units.DAY * 1e3
    print(
        f"example host: boot time drifts {drift_ms_per_day:+.1f} ms/day "
        f"(epsilon/f = {fit.slope:+.2e})"
    )


if __name__ == "__main__":
    main()
