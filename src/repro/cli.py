"""Command-line interface: regenerate paper experiments from a shell.

Examples::

    python -m repro list
    python -m repro run exp1
    python -m repro run fig9 --scale full
    python -m repro run all --scale quick
    python -m repro run fig4 --scale full --jobs 4
    python -m repro run fig12 --no-cache
    python -m repro run exp1 --faults "launch=0.1,cell=0.3,seed=7" --max-retries 3

Completed simulation cells are cached under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-runner``), so re-running a command reuses them; ``--jobs N``
fans the remaining cells out over N worker processes.

Within one run, cells that share a simulated world (same region, seed,
platform, background traffic) build it once and fork warm snapshots of it
(:mod:`repro.runner.worldcache`) — byte-identical to fresh builds.
``--no-world-cache`` (or ``$REPRO_WORLD_CACHE_SIZE=0``) turns that off.

``--faults SPEC`` runs the experiment under a seeded deterministic fault
schedule (launch errors/slow launches, CTest noise and mid-test deaths,
cell failures — see :mod:`repro.faults`); ``--max-retries`` bounds the
per-cell retry budget.  Fault-injected runs never touch the cell cache.

``--trace PATH`` records the run's telemetry spans (simulated-time phase
tree: launches, CTest rounds, verification waves, campaign phases) to a
deterministic JSONL file — byte-identical across reruns, ``--jobs``
counts, and hash seeds.  ``--metrics`` prints the collected counters,
gauges, and timing histograms after each report.  Both flags may be given
before or after the subcommand.
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import Sequence

from repro.cloud.platform import platform_profile
from repro.errors import CloudError, FaultSpecError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.faults import FaultPlan
from repro.runner import RunnerConfig
from repro.telemetry import (
    Telemetry,
    format_metrics,
    telemetry_context,
    write_jsonl,
)


def _add_telemetry_flags(
    parser: argparse.ArgumentParser, top_level: bool
) -> None:
    """Add ``--trace`` / ``--metrics`` to one parser.

    The flags live on the top-level parser *and* the ``run`` subparser so
    both ``repro --trace t.jsonl run exp1`` and ``repro run exp1 --trace
    t.jsonl`` work.  The subparser copies use ``argparse.SUPPRESS``
    defaults: a subparser's defaults would otherwise overwrite values
    already parsed at the top level.
    """
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None if top_level else argparse.SUPPRESS,
        help="write a deterministic JSONL span trace of the run to PATH",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        default=False if top_level else argparse.SUPPRESS,
        help="print collected telemetry counters and histograms",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Everywhere All at Once: Co-Location Attacks "
            "on Public Cloud FaaS' (ASPLOS 2024) on a simulated substrate."
        ),
    )
    _add_telemetry_flags(parser, top_level=True)
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    _add_telemetry_flags(run, top_level=False)
    run.add_argument(
        "experiment",
        help="experiment id from 'repro list', or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick: reduced repetitions (seconds); full: benchmark scale",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="run simulation cells in N worker processes (0 = serial in-process)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reading the cell cache "
        "(fresh results are still written back)",
    )
    run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic platform faults, e.g. "
        "'launch=0.1,slow=0.05,ctest=0.02,death=0.01,cell=0.3,seed=7' "
        "(disables the cell cache for the run)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for failed cells (default 1)",
    )
    run.add_argument(
        "--platform",
        metavar="NAME",
        default=None,
        help="run under a platform profile ('default', 'aws_lambda_like', "
        "'azure_functions_like'); the profile joins the cell cache key, "
        "so platform runs are cached separately from baseline runs",
    )
    run.add_argument(
        "--no-world-cache",
        action="store_true",
        help="build every cell's simulated world fresh instead of forking "
        "warm-world snapshots (see repro.runner.worldcache)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, (description, _runner) in sorted(EXPERIMENTS.items()):
            print(f"{eid:<{width}}  {description}")
        return 0

    if args.command == "run":
        if args.jobs < 0:
            print("--jobs must be >= 0", file=sys.stderr)
            return 2
        if args.max_retries is not None and args.max_retries < 0:
            print("--max-retries must be >= 0", file=sys.stderr)
            return 2
        fault_plan = None
        if args.faults:
            try:
                fault_plan = FaultPlan.from_spec(args.faults)
            except FaultSpecError as error:
                print(f"--faults: {error}", file=sys.stderr)
                return 2
        platform = None
        if args.platform is not None and args.platform != "default":
            try:
                platform = platform_profile(args.platform)
            except CloudError as error:
                print(f"--platform: {error}", file=sys.stderr)
                return 2
        telemetry = Telemetry() if (args.trace or args.metrics) else None
        scope = (
            telemetry_context(telemetry)
            if telemetry is not None
            else contextlib.nullcontext()
        )
        ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        with scope:
            for eid in ids:
                runner = RunnerConfig.from_cli(
                    jobs=args.jobs,
                    no_cache=args.no_cache,
                    fault_plan=fault_plan,
                    max_retries=args.max_retries,
                    platform=platform,
                    world_cache=not args.no_world_cache,
                )
                try:
                    report = run_experiment(eid, scale=args.scale, runner=runner)
                except KeyError as error:
                    print(error.args[0], file=sys.stderr)
                    return 2
                print(report)
                if fault_plan is not None:
                    # Counters are parent-side: exhaustive with --jobs 0; with
                    # workers, injections inside cells stay in the workers and
                    # the [runner] retry/error counters tell the story.  (The
                    # telemetry mirrors — see --metrics — *are* exhaustive:
                    # each cell's counters merge back into the parent.)
                    print(
                        f"[faults] spec '{args.faults}': "
                        f"{fault_plan.counters.summary()}"
                    )
                print()
        if telemetry is not None:
            if args.trace:
                write_jsonl(telemetry, args.trace)
                print(f"[trace] {len(telemetry.records())} spans -> {args.trace}")
            if args.metrics:
                print("[metrics]")
                print(format_metrics(telemetry.metrics))
        return 0

    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
