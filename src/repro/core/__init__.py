"""The paper's core contribution: fingerprinting, verification, attacks.

Everything in this package runs strictly on the attacker side of the
black-box boundary: it talks to the platform through
:class:`~repro.cloud.api.FaaSClient` / :class:`~repro.cloud.api.InstanceHandle`
and to the hardware through guest probes, never touching simulator
internals.
"""

from repro.core.fingerprint import (
    Gen1Fingerprint,
    Gen1Sample,
    Gen2Fingerprint,
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.frequency import FrequencyEstimate, measure_tsc_frequency, reported_tsc_frequency
from repro.core.covert import (
    CTestResult,
    CovertChannel,
    MemoryBusCovertChannel,
    RngCovertChannel,
)
from repro.core.pairwise import PairwiseVerifier
from repro.core.verification import ScalableVerifier, TaggedInstance, VerificationReport

__all__ = [
    "Gen1Fingerprint",
    "Gen1Sample",
    "Gen2Fingerprint",
    "fingerprint_gen1_instances",
    "fingerprint_gen2_instances",
    "FrequencyEstimate",
    "measure_tsc_frequency",
    "reported_tsc_frequency",
    "CTestResult",
    "CovertChannel",
    "MemoryBusCovertChannel",
    "RngCovertChannel",
    "PairwiseVerifier",
    "ScalableVerifier",
    "TaggedInstance",
    "VerificationReport",
]
