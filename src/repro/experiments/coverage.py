"""Figure 11 and §5.2: victim instance coverage of the launching strategies.

Runs attacker-vs-victim co-location campaigns across datacenters, victim
accounts, victim fleet sizes (Fig. 11a), victim container sizes (Fig. 11b),
strategies (naive vs. optimized), and execution environments (Gen 1/Gen 2).

Paper reference (optimized strategy, Gen 1, 100 Small victims):

=============  ==========  ==========
datacenter     Account 2   Account 3
=============  ==========  ==========
us-east1       97.7%       99.7%
us-central1    61.3%       90.0%
us-west1       100.0%      100.0%
=============  ==========  ==========

The naive strategy achieves zero coverage except Account 2 in us-west1
(100%) and Account 3 in us-central1 (81%).  Gen 2 numbers are slightly
lower (87.3/88.7, 40.7/75.3, 96.0/97.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cloud.services import CONTAINER_SIZES, SMALL, ContainerSize
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import naive_launch, optimized_launch
from repro.experiments.base import default_env
from repro.runner import CellSpec, RunnerConfig, run_cells

PAPER_OPTIMIZED_GEN1 = {
    ("us-east1", "account-2"): 0.977,
    ("us-east1", "account-3"): 0.997,
    ("us-central1", "account-2"): 0.613,
    ("us-central1", "account-3"): 0.900,
    ("us-west1", "account-2"): 1.000,
    ("us-west1", "account-3"): 1.000,
}

PAPER_NAIVE_GEN1 = {
    ("us-east1", "account-2"): 0.0,
    ("us-east1", "account-3"): 0.0,
    ("us-central1", "account-2"): 0.0,
    ("us-central1", "account-3"): 0.81,
    ("us-west1", "account-2"): 1.0,
    ("us-west1", "account-3"): 0.0,
}

PAPER_OPTIMIZED_GEN2 = {
    ("us-east1", "account-2"): 0.873,
    ("us-east1", "account-3"): 0.887,
    ("us-central1", "account-2"): 0.407,
    ("us-central1", "account-3"): 0.753,
    ("us-west1", "account-2"): 0.960,
    ("us-west1", "account-3"): 0.973,
}


@dataclass(frozen=True)
class CoverageConfig:
    """One coverage measurement cell."""

    region: str = "us-east1"
    victim_account: str = "account-2"
    strategy: str = "optimized"
    generation: str = "gen1"
    n_victim_instances: int = 100
    victim_size: ContainerSize = SMALL
    attacker_services: int = 6
    attacker_launches: int = 6
    attacker_instances: int = 800
    repetitions: int = 3
    ground_truth: str = "covert"
    base_seed: int = 600


@dataclass
class CoverageCell:
    """Aggregated coverage for one (region, account, parameters) cell."""

    config: CoverageConfig
    coverages: list[float] = field(default_factory=list)
    attacker_hosts: list[int] = field(default_factory=list)
    costs_usd: list[float] = field(default_factory=list)

    @property
    def mean(self) -> float:
        return float(np.mean(self.coverages))

    @property
    def std(self) -> float:
        return float(np.std(self.coverages))

    @property
    def mean_cost_usd(self) -> float:
        return float(np.mean(self.costs_usd))

    @property
    def mean_attacker_hosts(self) -> float:
        return float(np.mean(self.attacker_hosts))


def _strategy_fn(config: CoverageConfig):
    if config.strategy == "optimized":
        return lambda client: optimized_launch(
            client,
            n_services=config.attacker_services,
            launches=config.attacker_launches,
            instances_per_service=config.attacker_instances,
            generation=config.generation,
        )
    if config.strategy == "naive":
        return lambda client: naive_launch(
            client,
            n_services=config.attacker_services,
            instances_per_service=config.attacker_instances,
            generation=config.generation,
        )
    raise ValueError(f"unknown strategy {config.strategy!r}")


def _cell_params(config: CoverageConfig) -> dict:
    """The fields one repetition depends on (sweep bookkeeping excluded).

    ``repetitions`` and ``base_seed`` are deliberately absent: the cell's
    identity is ``(these parameters, seed)``, so growing a sweep reuses the
    repetitions already cached.
    """
    return {
        "region": config.region,
        "victim_account": config.victim_account,
        "strategy": config.strategy,
        "generation": config.generation,
        "n_victim_instances": config.n_victim_instances,
        "victim_size": config.victim_size,
        "attacker_services": config.attacker_services,
        "attacker_launches": config.attacker_launches,
        "attacker_instances": config.attacker_instances,
        "ground_truth": config.ground_truth,
    }


def _rep_cell(params: dict, seed: int) -> tuple[float, int, float]:
    """One campaign repetition; returns ``(coverage, hosts, cost_usd)``."""
    config = CoverageConfig(repetitions=1, base_seed=seed, **params)
    env = default_env(config.region, seed=seed)
    if config.ground_truth == "oracle":
        return _oracle_campaign(env, config)
    campaign = ColocationCampaign(
        attacker=env.attacker,
        victim=env.victim(config.victim_account),
        strategy=_strategy_fn(config),
        generation=config.generation,
    )
    outcome = campaign.run(
        n_victim_instances=config.n_victim_instances,
        victim_size=config.victim_size,
    )
    return outcome.coverage, outcome.attacker_hosts, outcome.attacker_cost_usd


def _rep_specs(config: CoverageConfig, label: str = "") -> list[CellSpec]:
    """One CellSpec per repetition of the given coverage configuration."""
    params = _cell_params(config)
    return [
        CellSpec(
            experiment="coverage",
            fn=_rep_cell,
            config=params,
            seed=config.base_seed + rep,
            label=label or f"{config.region}/{config.victim_account}/rep{rep}",
        )
        for rep in range(config.repetitions)
    ]


def _aggregate(config: CoverageConfig, outcomes) -> CoverageCell:
    cell = CoverageCell(config=config)
    for coverage, hosts, cost in outcomes:
        cell.coverages.append(coverage)
        cell.attacker_hosts.append(hosts)
        cell.costs_usd.append(cost)
    return cell


def run_cell(
    config: CoverageConfig = CoverageConfig(),
    runner: RunnerConfig | None = None,
) -> CoverageCell:
    """Measure victim instance coverage for one experiment cell."""
    results = run_cells(_rep_specs(config), runner)
    return _aggregate(config, (r.value for r in results))


def _oracle_campaign(env, config: CoverageConfig) -> tuple[float, int, float]:
    """Fast-path campaign scored against the simulator's placement map.

    Coverage is computed with fleet-index masks (:func:`host_coverage`)
    rather than per-campaign host-id sets.
    """
    from repro.cloud.services import ServiceConfig
    from repro.experiments.base import host_coverage

    strategy = _strategy_fn(config)
    outcome = strategy(env.attacker)
    victim = env.victim(config.victim_account)
    service = victim.deploy(
        ServiceConfig(
            name="victim",
            size=config.victim_size,
            generation=config.generation,
            max_instances=max(100, config.n_victim_instances),
        )
    )
    handles = victim.connect(service, config.n_victim_instances)
    coverage, attacker_hosts = host_coverage(env, outcome.handles, handles)
    return coverage, attacker_hosts, outcome.cost_usd


@dataclass(frozen=True)
class MatrixConfig:
    """Sweep configuration for Fig. 11a/11b-style grids."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    victim_accounts: tuple[str, ...] = ("account-2", "account-3")
    strategy: str = "optimized"
    generation: str = "gen1"
    victim_counts: tuple[int, ...] = (100,)
    victim_sizes: tuple[str, ...] = ("Small",)
    repetitions: int = 3
    ground_truth: str = "covert"
    base_seed: int = 600


def run_matrix(
    config: MatrixConfig = MatrixConfig(),
    runner: RunnerConfig | None = None,
) -> dict[tuple, CoverageCell]:
    """Run a grid of coverage cells.

    Returns a mapping from ``(region, account, n_victims, size_name)`` to
    the aggregated :class:`CoverageCell`.  Every repetition of every grid
    point is an independent cell, so the whole grid fans out at once.
    """
    grid: list[tuple[tuple, CoverageConfig]] = []
    for region in config.regions:
        for account in config.victim_accounts:
            for n_victims in config.victim_counts:
                for size_name in config.victim_sizes:
                    cell_config = CoverageConfig(
                        region=region,
                        victim_account=account,
                        strategy=config.strategy,
                        generation=config.generation,
                        n_victim_instances=n_victims,
                        victim_size=CONTAINER_SIZES[size_name],
                        repetitions=config.repetitions,
                        ground_truth=config.ground_truth,
                        base_seed=config.base_seed,
                    )
                    grid.append(
                        ((region, account, n_victims, size_name), cell_config)
                    )

    specs: list[CellSpec] = []
    for _key, cell_config in grid:
        specs.extend(_rep_specs(cell_config))
    results = run_cells(specs, runner)

    cells: dict[tuple, CoverageCell] = {}
    cursor = 0
    for key, cell_config in grid:
        chunk = results[cursor : cursor + cell_config.repetitions]
        cursor += cell_config.repetitions
        cells[key] = _aggregate(cell_config, (r.value for r in chunk))
    return cells
