"""Regression test: placement cost must not scale with fleet size.

Before the columnar refactor the orchestrator rebuilt a full-fleet
``{host_id: capacity}`` dict on *every* placement call, so placing one
instance on a 10-host base set cost O(n_hosts).  With the fleet store the
policy only touches the ``allowed`` index array, so fleet size is
irrelevant to per-call cost.
"""

import time

import numpy as np

from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.fleet import FleetStore


def place_many(n_hosts, rounds=300, allowed_size=10, count=8):
    store = FleetStore([f"h{i:06d}" for i in range(n_hosts)], capacity_slots=1e12)
    allowed = np.arange(allowed_size, dtype=np.int64)
    counts = store.service_counts("svc")
    policy = PlacementPolicy(np.random.default_rng(0))
    start = time.perf_counter()
    for _ in range(rounds):
        policy.place(
            PlacementRequest(
                count=count,
                slots_per_instance=1.0,
                allowed=allowed,
                service_counts=counts,
            ),
            store,
        )
    return time.perf_counter() - start


def test_placement_cost_independent_of_fleet_size():
    # Best-of-three to shake scheduler noise out of the wall-clock numbers.
    small = min(place_many(n_hosts=200) for _ in range(3))
    large = min(place_many(n_hosts=40_000) for _ in range(3))
    # The fleets differ by 200x; any per-call full-fleet scan would blow
    # far past this generous margin.
    assert large < 10 * small, (
        f"placement slowed down with fleet size: {small:.4f}s @200 hosts "
        f"vs {large:.4f}s @40k hosts"
    )
