"""Legacy shim so `python setup.py develop` works on old tooling.

All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
