"""The FaaS orchestrator: scaling, placement, idle reaping, billing.

This is the control plane the paper reverse engineers.  It implements the
behaviors of Observations 1-6 (§5.1):

1. instances of a service spread near-uniformly across the hosts used;
2. idle instances are preserved ~2 minutes, then gradually terminated, all
   gone ~12 minutes after disconnecting;
3. launches from the same account land on a preferred set of *base hosts*;
4. different accounts get different base hosts (placement shards);
5. a service with repeated high demand inside a 30-minute window spills
   onto extra *helper hosts* (load balancing), proportionally to how many
   instances had to be newly created;
6. helper sets are per-service, overlapping across services.
"""

from __future__ import annotations

import math
from typing import Callable

import numpy as np

from repro.cloud.accounts import Account
from repro.cloud.datacenter import DataCenter
from repro.cloud.instance import ContainerInstance, InstanceState
from repro.cloud.loadbalancer import DemandTracker, HelperHostRecruiter
from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.cloud.platform import PlatformProfile
from repro.cloud.services import Service, ServiceConfig
from repro.errors import CloudError, LaunchError
from repro.faults import DEFAULT_LAUNCH_RETRY, FaultPlan, RetryPolicy
from repro.fleet import HostHandle, ServiceStateStore
from repro.sandbox.base import Sandbox, TscPolicy
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.microvm import MicroVMSandbox
from repro.simtime.scheduler import EventScheduler, ScheduledEvent, SequenceCounter
from repro.telemetry import current_telemetry


class Orchestrator:
    """Fully managed container orchestration for one datacenter region.

    Parameters
    ----------
    datacenter:
        The physical substrate.
    tsc_policy:
        Fleet-wide TSC exposure policy; set to ``TscPolicy.EMULATED`` to
        enable the paper's §6 mitigation on every host.
    fault_plan:
        Optional deterministic fault schedule; injects launch errors and
        slow launches at instance-creation time.
    retry_policy:
        Bounded retry-with-backoff for failed launch attempts (backoff is
        slept in simulated time).  Defaults to two retries.
    platform:
        Optional :class:`~repro.cloud.platform.PlatformProfile` shaping
        the orchestrator personality (idle window, sandbox generation,
        placement spread).  Defaults to the datacenter's profile, so
        building the datacenter with one is enough.
    """

    def __init__(
        self,
        datacenter: DataCenter,
        tsc_policy: TscPolicy = TscPolicy.NATIVE,
        fault_plan: FaultPlan | None = None,
        retry_policy: RetryPolicy | None = None,
        platform: PlatformProfile | None = None,
    ) -> None:
        self.datacenter = datacenter
        self.clock = datacenter.clock
        self.tsc_policy = tsc_policy
        self.fault_plan = fault_plan
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_LAUNCH_RETRY
        self.platform = platform if platform is not None else datacenter.platform
        self.scheduler = EventScheduler(self.clock)
        self.accounts: dict[str, Account] = {}
        self.services: dict[str, Service] = {}
        self.instances: dict[str, ContainerInstance] = {}
        self.fleet = datacenter.fleet
        self._rng = np.random.default_rng(datacenter.rng.integers(2**63))
        self._placement = PlacementPolicy(self._rng, platform=self.platform)
        self._demand = DemandTracker(datacenter.profile)
        self._recruiter = HelperHostRecruiter(datacenter.profile, self._rng)
        self._billed_seconds: dict[str, float] = {}
        self._idle_reaps: dict[str, ScheduledEvent] = {}
        self._service_instances: dict[str, list[ContainerInstance]] = {}
        self._svc_state = ServiceStateStore()
        self._idle_streams: dict[str, Callable[[str], float]] = {}
        # qualified name -> (helper count, allowed host-index array).  Base
        # shards are pinned per account and helper sets are append-only, so
        # the id->index resolution is reusable until a recruit grows the
        # helper list.  Never used under randomized_base, where base hosts
        # are a fresh RNG sample on every placement decision.
        self._allowed_idx: dict[str, tuple[int, np.ndarray]] = {}
        # account id -> base-shard host-index array.  Base shards are
        # pinned per account, so the id->index resolution never changes.
        # Bypassed under randomized_base (fresh sample per decision).
        self._base_idx: dict[str, np.ndarray] = {}
        self._route_counters: dict[str, int] = {}
        self._probe_counters: dict[str, int] = {}
        self._instance_counter = SequenceCounter()
        self._image_counter = SequenceCounter()
        # Scalar-reference switch for the launch path (twin-world tests
        # pin the batched path against it); production code never sets it.
        self.force_scalar_launch = False

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------
    def register_account(self, account: Account) -> None:
        """Register an account; idempotent for the same object."""
        existing = self.accounts.get(account.account_id)
        if existing is not None and existing is not account:
            raise CloudError(f"account {account.account_id!r} already registered")
        self.accounts[account.account_id] = account

    def deploy_service(self, account_id: str, config: ServiceConfig) -> Service:
        """Deploy (or redeploy) a service; builds a fresh container image."""
        account = self._account(account_id)
        service = Service(
            config=config,
            account_id=account.account_id,
            image_id=f"image-{next(self._image_counter):06d}",
        )
        key = service.qualified_name
        if key in self.services:
            raise CloudError(f"service {key!r} already deployed")
        self.services[key] = service
        self._svc_state.ensure(key)
        return service

    def rebuild_image(self, service: Service) -> None:
        """Rebuild the service's container image (invalidates host caches)."""
        service.image_id = f"image-{next(self._image_counter):06d}"

    # ------------------------------------------------------------------
    # Scaling (autoscaler entry points)
    # ------------------------------------------------------------------
    def connect(self, service: Service, n_connections: int) -> list[ContainerInstance]:
        """Ensure capacity for ``n_connections`` concurrent connections.

        Models the paper's workload generator: each instance serves up to
        ``service.config.concurrency`` concurrent requests, so the target
        instance count is ``ceil(n_connections / concurrency)``.  The paper
        pins concurrency to 1 (§5) so that opening N WebSocket connections
        forces exactly N concurrent instances; services configured with a
        higher concurrency pack connections instead.  Existing idle
        instances are reused first; the remainder are newly created, which
        is what drives helper-host recruitment when the service is hot.
        """
        per_instance = service.config.concurrency
        return self.scale_to(service, math.ceil(n_connections / per_instance))

    def scale_to(
        self, service: Service, target: int, *, sleep_startup: bool = True
    ) -> list[ContainerInstance]:
        """Autoscale the service to ``target`` concurrently active instances.

        Scaling *out* reuses idle instances and creates the remainder
        (recruiting helper hosts when the service is hot); scaling *in*
        idles the most recently created extras, which the reaper later
        terminates (§2.2 autoscaling).  ``sleep_startup=False`` skips the
        cold-start sleep: open-loop background drivers fire from scheduler
        events *inside* a ``clock.sleep`` and must not advance the shared
        clock re-entrantly.
        """
        return self._scale(service, target, want_list=True, sleep_startup=sleep_startup)

    def scale_to_count(
        self, service: Service, target: int, *, sleep_startup: bool = True
    ) -> int:
        """Autoscale like :meth:`scale_to`, returning only the active count.

        The hot path for :class:`~repro.cloud.traffic.BackgroundDriver`: a
        steady-state evaluation reads the columnar
        :class:`~repro.fleet.ServiceStateStore` counts instead of
        rebuilding per-instance Python lists, so thousands of tenant
        evaluations per tick stay cheap.
        """
        return self._scale(service, target, want_list=False, sleep_startup=sleep_startup)

    def _scale(
        self,
        service: Service,
        target: int,
        *,
        want_list: bool,
        sleep_startup: bool,
    ):
        account = self._account(service.account_id)
        if target > service.config.max_instances:
            raise CloudError(
                f"service {service.qualified_name!r} allows at most "
                f"{service.config.max_instances} instances (requested {target})"
            )
        account.check_instance_quota(target)
        telemetry = current_telemetry()

        now = self.clock.now()
        self.datacenter.serving_pool()  # triggers serving-pool rotation
        state = self._svc_state
        index = state.ensure(service.qualified_name)
        active_n = state.active_count(index)

        if target < active_n:
            # Scale in: idle out the most recently created extras.  The
            # per-service instance lists are append-only and pruning keeps
            # order, so the ACTIVE sublist is creation-ordered (pinned by
            # a property test).
            with telemetry.span(
                "orchestrator.scale_in",
                service=service.qualified_name,
                target=target,
            ) as span:
                active = self._active_list(service)
                for instance in active[target:]:
                    self._idle_out(instance, now)
                span.set(idled=active_n - target)
                telemetry.count("orchestrator.scale_ins")
                self._demand.record_demand(service, now, target)
            return active[:target] if want_list else target

        with telemetry.span(
            "orchestrator.launch",
            service=service.qualified_name,
            target=target,
        ) as span:
            need = target - active_n
            idle_n = state.idle_count(index)
            new_needed = max(0, need - idle_n)
            if want_list or (need > 0 and idle_n > 0):
                alive = self.alive_instances(service)
                active = [i for i in alive if i.state is InstanceState.ACTIVE]
                # Scale out: reuse just enough idle instances, create the rest.
                idle = [i for i in alive if i.state is InstanceState.IDLE]
                for instance in idle[:need]:
                    instance.go_active(now)
                    self._cancel_idle_reap(instance.instance_id)
                    state.on_activated(index)

            # Hotness is judged on *past* demand, before this launch.
            hot = self._demand.is_hot(service, now)
            self._demand.record_demand(service, now, target)
            span.set(created=new_needed, hot=hot)
            telemetry.count("orchestrator.launch_batches")
            telemetry.count("orchestrator.instances_created", new_needed)
            if need > 0:
                telemetry.count("orchestrator.scale_outs")

            base_hosts = self._base_hosts(account)
            if hot and new_needed > 0 and self.datacenter.profile.defense != "tenant_isolation":
                # Under tenant isolation the load balancer may not spill a
                # tenant onto shared hosts, so no helper recruitment happens.
                # Candidate selection is index-mask math in pool order: the
                # serving pool minus the hosts the service already uses.
                pool_idx = self.fleet.pool_order
                known_idx = self._known_indices(service, base_hosts)
                prior_helpers = len(service.helper_host_ids)
                candidates = pool_idx[~np.isin(pool_idx, known_idx)]
                new_helpers = self._recruiter.recruit(
                    service, new_needed, candidates, self.fleet
                )
                # Keep the placement cache fresh across the recruit: new
                # helpers are drawn from candidates, which exclude every
                # cached host, so appending their indices preserves the
                # base-then-helpers allowed order.
                cached = self._allowed_idx.get(service.qualified_name)
                if new_helpers and cached is not None and cached[0] == prior_helpers:
                    self._allowed_idx[service.qualified_name] = (
                        len(service.helper_host_ids),
                        np.concatenate(
                            [cached[1], self.fleet.indices_of(new_helpers)]
                        ),
                    )

            if new_needed > 0:
                created = self._create_instances(service, account, new_needed)
                if sleep_startup:
                    startup = self._startup_seconds(service, new_needed, target)
                    if self.fault_plan is not None:
                        startup += sum(
                            self.fault_plan.slow_launch_penalty(i.instance_id)
                            for i in created
                        )
                    self.clock.sleep(startup)

            if not want_list:
                return state.active_count(index)
            active = [
                i
                for i in self.alive_instances(service)
                if i.state is InstanceState.ACTIVE
            ]
        return active[:target] if len(active) > target else active

    def disconnect(self, service: Service) -> None:
        """Close all connections: instances idle out and are later reaped.

        Each idle instance is terminated at an independent uniform time
        between ``idle_grace`` and ``idle_deadline`` after disconnecting,
        reproducing the gradual decay of Fig. 6.
        """
        now = self.clock.now()
        for instance in self.alive_instances(service):
            if instance.state is InstanceState.ACTIVE:
                self._idle_out(instance, now)

    def _idle_out(self, instance: ContainerInstance, now: float) -> None:
        """Idle one instance and schedule its eventual termination."""
        profile = self.datacenter.profile
        instance.go_idle(now)
        self._svc_state.on_idled(
            self._svc_state.ensure(instance.service.qualified_name)
        )
        self._settle_billing(instance)
        idle_grace, idle_deadline = profile.idle_grace, profile.idle_deadline
        if self.platform is not None:
            idle_grace, idle_deadline = self.platform.idle_window(
                idle_grace, idle_deadline
            )
        stream = self._idle_streams.get(instance.service.qualified_name)
        if stream is None:
            deadline = now + self._rng.uniform(idle_grace, idle_deadline)
        else:
            # Hashed per-instance draw: order-independent, and consumes
            # nothing from the shared RNG, so interleaved background
            # tenants cannot perturb foreground draw sequences.
            span_s = idle_deadline - idle_grace
            deadline = now + idle_grace + stream(instance.instance_id) * span_s
        self._schedule_idle_reap(instance, idle_epoch=instance.last_active_at, when=deadline)

    def set_idle_deadline_stream(
        self, service: Service, stream: Callable[[str], float] | None
    ) -> None:
        """Route a service's idle-reap deadline draws through ``stream``.

        ``stream(instance_id)`` must return a uniform ``[0, 1)`` value that
        depends only on the instance id (FaultPlan-style hashing, see
        :func:`repro.faults.hashed_uniform`) — *not* on draw order.
        Background-traffic tenants register one so their idle reaps never
        consume the orchestrator's shared RNG; services without a stream
        keep the historical shared-RNG draws byte-for-byte.  Pass ``None``
        to restore the default.
        """
        key = service.qualified_name
        if stream is None:
            self._idle_streams.pop(key, None)
        else:
            self._idle_streams[key] = stream

    def note_demand(self, service: Service, concurrency: int) -> None:
        """Record a demand observation without scaling.

        Lets the background driver keep a steady tenant's demand history
        (hotness window) alive between target changes without paying for
        a full no-op scale evaluation.
        """
        self._demand.record_demand(service, self.clock.now(), concurrency)

    def kill_service(self, service: Service) -> None:
        """Immediately terminate every instance of a service."""
        now = self.clock.now()
        for instance in self.alive_instances(service):
            self._terminate(instance, now)

    def route_request(self, service: Service, processing_seconds: float) -> None:
        """Deliver one request to the service (its public interface).

        The request is routed round-robin to an active instance, which
        executes for ``processing_seconds`` — observable as CPU contention
        by co-located instances.  A service with no active instance scales
        out by one first (scale-from-zero).
        """
        active = [
            i for i in self.alive_instances(service)
            if i.state is InstanceState.ACTIVE
        ]
        if not active:
            active = self.scale_to(service, 1)
        counter = self._route_counters.get(service.qualified_name, 0)
        instance = active[counter % len(active)]
        self._route_counters[service.qualified_name] = counter + 1
        instance.sandbox.run_busy(processing_seconds)

    def probe_service(
        self, qualified_name: str, processing_seconds: float = 0.05
    ) -> float:
        """Time one request to a service's public URL; returns the latency.

        Unlike :meth:`route_request` callers, the prober needs no ownership
        of the service — anyone who knows the qualified name (the public
        URL) can send a request and time the response, which is the whole
        attacker-side surface of the Target Victim Locator.  The request is
        routed round-robin like any other; the serving sandbox's response
        time stretches under co-resident memory-bus locking
        (:meth:`~repro.sandbox.base.Sandbox.serve_request`).  Under an
        active fault plan, individual responses may additionally carry an
        injected platform-noise delay; the fault token carries a
        per-service probe sequence number, so a re-probe is a fresh draw.
        """
        try:
            service = self.services[qualified_name]
        except KeyError:
            raise CloudError(f"no service at {qualified_name!r}") from None
        active = [
            i for i in self.alive_instances(service)
            if i.state is InstanceState.ACTIVE
        ]
        if not active:
            active = self.scale_to(service, 1)
        counter = self._route_counters.get(qualified_name, 0)
        instance = active[counter % len(active)]
        self._route_counters[qualified_name] = counter + 1
        latency = instance.sandbox.serve_request(processing_seconds)
        seq = self._probe_counters.get(qualified_name, 0)
        self._probe_counters[qualified_name] = seq + 1
        if self.fault_plan is not None:
            latency += self.fault_plan.probe_delay_seconds(
                f"{qualified_name}#p{seq}"
            )
        self.clock.sleep(latency)
        current_telemetry().count("orchestrator.probes")
        return latency

    # ------------------------------------------------------------------
    # Introspection (ground truth for the simulator and metrics; guests
    # and the attacker-facing client API never see host ids)
    # ------------------------------------------------------------------
    def alive_instances(self, service: Service) -> list[ContainerInstance]:
        """All non-terminated instances of a service."""
        kept = self._service_instances.get(service.qualified_name, [])
        alive = [instance for instance in kept if instance.alive]
        # Prune terminated instances so repeated launches stay O(alive).
        if len(alive) != len(kept):
            self._service_instances[service.qualified_name] = alive
        return list(alive)

    def _active_list(self, service: Service) -> list[ContainerInstance]:
        return [
            i for i in self.alive_instances(service)
            if i.state is InstanceState.ACTIVE
        ]

    def active_count(self, service: Service) -> int:
        """ACTIVE instance count from the columnar state (no list build)."""
        return self._svc_state.active_count(
            self._svc_state.ensure(service.qualified_name)
        )

    def idle_count(self, service: Service) -> int:
        """IDLE instance count from the columnar state (no list build)."""
        return self._svc_state.idle_count(
            self._svc_state.ensure(service.qualified_name)
        )

    def alive_count(self, service: Service) -> int:
        """Non-terminated instance count from the columnar state."""
        return self._svc_state.alive_count(
            self._svc_state.ensure(service.qualified_name)
        )

    @property
    def service_state(self) -> ServiceStateStore:
        """The columnar per-service counts (read-only for callers)."""
        return self._svc_state

    def true_host_of(self, instance_id: str) -> str:
        """Ground-truth host of an instance (validation only)."""
        return self.instances[instance_id].host_id

    def host_load_slots(self, host_id: str) -> float:
        """Current committed capacity slots on a host."""
        return self.datacenter.host_handle(host_id).load_slots

    def account_cost_usd(self, account_id: str) -> float:
        """Account bill including accrued-but-unsettled active time."""
        account = self._account(account_id)
        now = self.clock.now()
        pending = 0.0
        rates = account.billing.rates
        for instance in self.instances.values():
            if (
                instance.service.account_id != account_id
                or not instance.alive
                or instance.state is not InstanceState.ACTIVE
                or instance.active_since is None
            ):
                continue
            size = instance.service.config.size
            unsettled = (
                instance.active_seconds_total
                + (now - instance.active_since)
                - self._billed_seconds[instance.instance_id]
            )
            pending += rates.active_cost(size.vcpus, size.memory_gb, max(0.0, unsettled))
        return account.billing.total_usd + pending

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _account(self, account_id: str) -> Account:
        try:
            return self.accounts[account_id]
        except KeyError:
            raise CloudError(f"account {account_id!r} is not registered") from None

    def _base_hosts(self, account: Account) -> tuple[str, ...]:
        profile = self.datacenter.profile
        if profile.defense == "randomized_base":
            # §6 defense: no stable per-account hosts — a fresh sample from
            # the serving pool on every placement decision.
            pool = self.datacenter.serving_pool()
            size = min(profile.shard_size, len(pool))
            picked = self._rng.choice(len(pool), size=size, replace=False)
            return tuple(pool[i] for i in picked)
        region = profile.name
        hosts = account.base_host_ids.get(region)
        if hosts is None:
            shard = self.datacenter.shard_for_account(account.account_id)
            hosts = self.datacenter.shard_hosts(shard)
            account.base_host_ids[region] = hosts
        return hosts

    def _known_indices(
        self, service: Service, base_hosts: tuple[str, ...]
    ) -> np.ndarray:
        """Index set of the hosts the service already prefers (base plus
        helpers), reusing the placement cache when it is fresh.  The cached
        array deduplicates helpers against base hosts, which is irrelevant
        to set-membership callers."""
        if self.datacenter.profile.defense != "randomized_base":
            cached = self._allowed_idx.get(service.qualified_name)
            if cached is not None and cached[0] == len(service.helper_host_ids):
                return cached[1]
            base_idx = self._base_indices(service.account_id, base_hosts)
        else:
            base_idx = self.fleet.indices_of(base_hosts)
        return np.concatenate(
            [base_idx, self.fleet.indices_of(service.helper_host_ids)]
        )

    def _base_indices(
        self, account_id: str, base_hosts: tuple[str, ...]
    ) -> np.ndarray:
        """Cached fleet indices of an account's pinned base shard.

        Only valid outside randomized_base, where base hosts are a fresh
        sample on every placement decision — callers branch before here.
        """
        cached = self._base_idx.get(account_id)
        if cached is None:
            cached = self.fleet.indices_of(base_hosts)
            self._base_idx[account_id] = cached
        return cached

    def _create_instances(
        self,
        service: Service,
        account: Account,
        count: int,
    ) -> list[ContainerInstance]:
        fleet = self.fleet
        qualified = service.qualified_name
        cacheable = self.datacenter.profile.defense != "randomized_base"
        cached = self._allowed_idx.get(qualified) if cacheable else None
        if cached is not None and cached[0] == len(service.helper_host_ids):
            allowed = cached[1]
        else:
            if cacheable:
                base_idx = self._base_indices(
                    account.account_id, self._base_hosts(account)
                )
            else:
                base_idx = fleet.indices_of(self._base_hosts(account))
            helper_idx = fleet.indices_of(service.helper_host_ids)
            if helper_idx.size:
                allowed = np.concatenate(
                    [base_idx, helper_idx[~np.isin(helper_idx, base_idx)]]
                )
            else:
                allowed = base_idx
            if cacheable:
                self._allowed_idx[qualified] = (
                    len(service.helper_host_ids),
                    allowed,
                )
        isolated = self.datacenter.profile.defense == "tenant_isolation"
        request = PlacementRequest(
            count=count,
            slots_per_instance=service.config.size.slots,
            allowed=allowed,
            service_counts=fleet.service_counts(qualified),
            scatter_probability=(
                0.0 if isolated
                else self.datacenter.dynamism_for_account(account.account_id)
            ),
            scatter_candidates=fleet.all_indices,
        )
        chosen = self._placement.place(request, fleet)

        now = self.clock.now()
        state_index = self._svc_state.ensure(qualified)
        created = []
        # Hot loop: operate on the columns directly (equivalent to a
        # HostHandle per instance, minus the per-instance cursor objects).
        ids = fleet.ids
        counts = fleet.service_counts(qualified)
        service_list = self._service_instances.setdefault(qualified, [])

        if self.fault_plan is None and not self.force_scalar_launch:
            # Batched launch path.  Without a fault plan, _attempt_launch
            # is a no-op, so the loop's only RNG consumption is the
            # per-instance sandbox seed — and one vector draw of size n
            # consumes the identical stream as n scalar `integers(2**63)`
            # draws (power-of-two bound takes the Lemire-free mask path;
            # pinned by the twin-world launch tests).  Count and state
            # bookkeeping never feed the RNG, so committing them as one
            # add_at / on_created(count=n) is identity-safe.
            seeds = self._rng.integers(2**63, size=chosen.size)
            counts.add_at(chosen)
            self._svc_state.on_created(state_index, count=int(chosen.size))
            host_of = self.datacenter.host
            cls = (
                GVisorSandbox
                if self._generation(service) == "gen1"
                else MicroVMSandbox
            )
            for host_index, seed in zip(chosen.tolist(), seeds.tolist()):
                host_id = ids[host_index]
                instance_id = f"{qualified}#{next(self._instance_counter):07d}"
                sandbox = cls(
                    host_of(host_id),
                    self.clock,
                    np.random.default_rng(seed),
                    instance_id,
                    tsc_policy=self.tsc_policy,
                )
                instance = ContainerInstance(
                    instance_id=instance_id,
                    service=service,
                    host_id=host_id,
                    sandbox=sandbox,
                    created_at=now,
                )
                self.instances[instance_id] = instance
                self._billed_seconds[instance_id] = 0.0
                service_list.append(instance)
                created.append(instance)
            return created

        # Scalar reference path: a fault plan can abort the loop mid-way
        # (LaunchError) or sleep simulated time between launches, so each
        # instance must draw its sandbox seed individually — batching the
        # draws would desynchronize the stream on the first failed launch.
        for host_index in chosen:
            index = int(host_index)
            host_id = ids[index]
            instance_id = f"{qualified}#{next(self._instance_counter):07d}"
            self._attempt_launch(instance_id)
            counts.inc(index)
            sandbox = self._make_sandbox(service, host_id, instance_id)
            instance = ContainerInstance(
                instance_id=instance_id,
                service=service,
                host_id=host_id,
                sandbox=sandbox,
                created_at=now,
            )
            self.instances[instance_id] = instance
            self._billed_seconds[instance_id] = 0.0
            service_list.append(instance)
            self._svc_state.on_created(state_index)
            created.append(instance)
        return created

    def _attempt_launch(self, instance_id: str) -> None:
        """Survive injected launch failures with bounded retry-with-backoff.

        Each failed attempt sleeps the policy's backoff in simulated time
        before retrying; the fault plan keys its decision on the attempt
        number, so a retry is a genuinely new draw.  Raises
        :class:`LaunchError` once the retry budget is exhausted.
        """
        if self.fault_plan is None:
            return
        attempt = 0
        while self.fault_plan.launch_fails(instance_id, attempt):
            if attempt >= self.retry_policy.max_retries:
                raise LaunchError(
                    f"instance {instance_id!r} failed to launch after "
                    f"{attempt + 1} attempts"
                )
            self.clock.sleep(self.retry_policy.backoff(attempt))
            self.fault_plan.counters.launch_retries += 1
            current_telemetry().count("faults.launch_retries")
            attempt += 1

    def _generation(self, service: Service) -> str:
        """A service's effective sandbox generation under the platform."""
        generation = service.config.generation
        if self.platform is not None:
            generation = self.platform.generation_for(generation)
        return generation

    def _make_sandbox(self, service: Service, host_id: str, instance_id: str) -> Sandbox:
        host = self.datacenter.host(host_id)
        sandbox_rng = np.random.default_rng(self._rng.integers(2**63))
        cls = GVisorSandbox if self._generation(service) == "gen1" else MicroVMSandbox
        return cls(host, self.clock, sandbox_rng, instance_id, tsc_policy=self.tsc_policy)

    #: Gen 2 microVMs have a larger resource footprint and boot slower
    #: than Gen 1 containers (paper §2.3).
    GEN2_STARTUP_FACTOR = 3.0

    def _startup_seconds(self, service: Service, new_count: int, target: int) -> float:
        """Batch cold-start latency; creation slows near the 1000 cap."""
        profile = self.datacenter.profile
        slowdown = 1.0 + 2.0 * max(0, target - 700) / 300.0
        seconds = (
            profile.baseline_startup
            + profile.per_instance_startup * new_count * slowdown
        )
        if self._generation(service) == "gen2":
            seconds *= self.GEN2_STARTUP_FACTOR
        return seconds

    def _schedule_idle_reap(
        self, instance: ContainerInstance, idle_epoch: float, when: float
    ) -> None:
        # Cancel any reap left from an earlier idle period: stale timers
        # would otherwise pile up in the scheduler for the whole campaign.
        self._cancel_idle_reap(instance.instance_id)
        reap = _IdleReap(self, instance, idle_epoch)
        reap.event = self.scheduler.call_at(when, reap)
        self._idle_reaps[instance.instance_id] = reap.event

    def _cancel_idle_reap(self, instance_id: str) -> None:
        event = self._idle_reaps.pop(instance_id, None)
        if event is not None:
            event.cancel()

    def _terminate(self, instance: ContainerInstance, now: float) -> None:
        if not instance.alive:
            return
        current_telemetry().count("orchestrator.terminations")
        self._cancel_idle_reap(instance.instance_id)
        self._svc_state.on_terminated(
            self._svc_state.ensure(instance.service.qualified_name),
            was_active=instance.state is InstanceState.ACTIVE,
        )
        instance.terminate(now)
        self._settle_billing(instance)
        # A destroyed container's guest loops stop executing, so any
        # hardware pressure it still held (an attacker killed mid-lock)
        # is released with it — otherwise a dead locker would pin its
        # host's contention level forever.  ``release_pressure`` covers
        # every channel domain the host has instantiated, not just the
        # two eager ones.
        host = self.datacenter.host(instance.host_id)
        host.release_pressure(instance.instance_id)
        handle = self.datacenter.host_handle(instance.host_id)
        handle.release_load(instance.service.config.size.slots)
        handle.dec_service(instance.service.qualified_name)

    def _settle_billing(self, instance: ContainerInstance) -> None:
        account = self._account(instance.service.account_id)
        owed = instance.active_seconds_total - self._billed_seconds[instance.instance_id]
        if owed > 0:
            size = instance.service.config.size
            account.billing.charge_active(size.vcpus, size.memory_gb, owed)
            self._billed_seconds[instance.instance_id] += owed


class _IdleReap:
    """The scheduled idle-termination action for one instance.

    A plain callable object rather than a closure so the scheduler queue
    stays picklable — world snapshots (:mod:`repro.runner.worldcache`)
    serialize pending events, and a restored reap must keep pointing at
    the restored orchestrator/instance pair.  ``event`` is backfilled
    right after scheduling so the identity check below survives the
    round-trip too.
    """

    __slots__ = ("orchestrator", "instance", "idle_epoch", "event")

    def __init__(
        self,
        orchestrator: Orchestrator,
        instance: ContainerInstance,
        idle_epoch: float,
    ) -> None:
        self.orchestrator = orchestrator
        self.instance = instance
        self.idle_epoch = idle_epoch
        self.event: ScheduledEvent | None = None

    def __getstate__(self):
        return (self.orchestrator, self.instance, self.idle_epoch, self.event)

    def __setstate__(self, state) -> None:
        self.orchestrator, self.instance, self.idle_epoch, self.event = state

    def __call__(self) -> None:
        orch = self.orchestrator
        instance = self.instance
        if orch._idle_reaps.get(instance.instance_id) is self.event:
            del orch._idle_reaps[instance.instance_id]
        still_idle = (
            instance.alive
            and instance.state is InstanceState.IDLE
            and instance.last_active_at == self.idle_epoch
        )
        if still_idle:
            orch._terminate(instance, orch.clock.now())
