"""Platform profiles: AWS/Azure-style orchestrator personalities.

The paper's measurements target Google Cloud Run, but the methodology is
platform-generic — what changes between FaaS providers is a small bundle
of *placement and exposure* knobs: how aggressively instances spread over
hosts, how long idle instances linger (Lambda keeps them minutes, Azure
Functions tens of minutes), which sandbox generation serves the workload,
whether instance identity leaks a Gen1-style bootable fingerprint or only
a Gen2-style one, and how noisy each covert channel's background floor is
on that provider's multi-tenancy mix.

A :class:`PlatformProfile` bundles those knobs.  The ``default`` profile
is the identity element: every knob at its neutral value, so a simulation
built with it is byte-identical (same RNG draw order, same golden traces)
to one built with no profile at all.  ``aws_lambda_like`` and
``azure_functions_like`` are stylized non-Google personalities for the
cross-platform sweeps (:mod:`repro.experiments.channel_matrix`).

Profiles reach worker processes explicitly (the runner carries them next
to fault plans — ambient contextvars do not survive a process pool), and
an ambient :func:`platform_context` serves in-process composition.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass

from repro import units
from repro.errors import CloudError
from repro.hardware.channels import channel_kind


@dataclass(frozen=True)
class PlatformProfile:
    """One FaaS platform personality.

    Attributes
    ----------
    name / description:
        Registry key and one-line summary.
    placement_spread:
        Multiplier on the account's scatter probability (the placement
        policy's host-spreading dynamism).  ``1.0`` is neutral; > 1
        spreads new instances over more hosts (AWS-style fleet churn),
        < 1 concentrates them (Azure-style packing).
    idle_grace_s / idle_deadline_s:
        Platform-specific idle-termination window, overriding the region
        profile's; ``None`` keeps the region default.
    sandbox_generation:
        Force every service onto ``"gen1"`` or ``"gen2"`` sandboxes
        regardless of service configuration; ``None`` respects the
        service's own generation.
    instance_id_exposure:
        Which fingerprinting surface instance identity exposes:
        ``"gen1"`` (boot-time + TSC fingerprints, Lambda-bare-metal
        style) or ``"gen2"`` (virtualized, unique-ID style).
    channel_noise:
        ``(kind, multiplier)`` pairs scaling each covert channel's
        background-contention rate on this platform's tenancy mix; kinds
        absent from the tuple stay at registry defaults.  A tuple so the
        profile stays frozen/hashable and cache-key canonicalizable.
    """

    name: str
    description: str
    placement_spread: float = 1.0
    idle_grace_s: float | None = None
    idle_deadline_s: float | None = None
    sandbox_generation: str | None = None
    instance_id_exposure: str = "gen1"
    channel_noise: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if self.placement_spread <= 0.0:
            raise CloudError(
                f"{self.name}: placement_spread must be > 0, got "
                f"{self.placement_spread!r}"
            )
        if (self.idle_grace_s is None) != (self.idle_deadline_s is None):
            raise CloudError(
                f"{self.name}: idle_grace_s and idle_deadline_s must be "
                f"overridden together"
            )
        if self.idle_grace_s is not None and not (
            0.0 <= self.idle_grace_s <= self.idle_deadline_s
        ):
            raise CloudError(
                f"{self.name}: need 0 <= idle_grace_s <= idle_deadline_s, got "
                f"{self.idle_grace_s!r}/{self.idle_deadline_s!r}"
            )
        if self.sandbox_generation not in (None, "gen1", "gen2"):
            raise CloudError(
                f"{self.name}: unknown sandbox_generation "
                f"{self.sandbox_generation!r}; expected None, 'gen1' or 'gen2'"
            )
        if self.instance_id_exposure not in ("gen1", "gen2"):
            raise CloudError(
                f"{self.name}: unknown instance_id_exposure "
                f"{self.instance_id_exposure!r}; expected 'gen1' or 'gen2'"
            )
        for kind_name, multiplier in self.channel_noise:
            channel_kind(kind_name)  # unknown kinds raise, naming the registry
            if multiplier <= 0.0:
                raise CloudError(
                    f"{self.name}: channel {kind_name!r} noise multiplier "
                    f"must be > 0, got {multiplier!r}"
                )

    def effective_scatter(self, scatter_probability: float) -> float:
        """Apply the platform's spread multiplier to a scatter probability.

        Neutral spread (exactly 1.0) returns the input object unchanged —
        no float round-trip — preserving byte-identity for the default
        profile; zero stays zero so isolated placements stay isolated.
        """
        if self.placement_spread == 1.0 or scatter_probability <= 0.0:
            return scatter_probability
        return min(1.0, scatter_probability * self.placement_spread)

    def idle_window(self, idle_grace: float, idle_deadline: float) -> tuple[float, float]:
        """Resolve the idle-termination window over region defaults."""
        if self.idle_grace_s is None:
            return idle_grace, idle_deadline
        return self.idle_grace_s, self.idle_deadline_s

    def generation_for(self, service_generation: str) -> str:
        """Resolve a service's sandbox generation under this platform."""
        if self.sandbox_generation is None:
            return service_generation
        return self.sandbox_generation

    def noise_multiplier(self, kind: str) -> float:
        """The background-noise multiplier for one channel kind."""
        for kind_name, multiplier in self.channel_noise:
            if kind_name == kind:
                return multiplier
        return 1.0


PLATFORM_PROFILES: dict[str, PlatformProfile] = {
    profile.name: profile
    for profile in (
        PlatformProfile(
            name="default",
            description="neutral Cloud Run-style baseline (every knob inert)",
        ),
        PlatformProfile(
            name="aws_lambda_like",
            description=(
                "Lambda-style: Firecracker microVMs, short idle reaping, "
                "wide placement spread, busy cache hierarchy"
            ),
            placement_spread=1.4,
            idle_grace_s=5 * units.MINUTE,
            idle_deadline_s=10 * units.MINUTE,
            sandbox_generation="gen2",
            instance_id_exposure="gen2",
            channel_noise=(("llc", 2.0), ("dvfs", 1.25)),
        ),
        PlatformProfile(
            name="azure_functions_like",
            description=(
                "Azure Functions-style: process-level sandboxes, long idle "
                "retention, packed placement, power-budget pressure"
            ),
            placement_spread=0.7,
            idle_grace_s=20 * units.MINUTE,
            idle_deadline_s=30 * units.MINUTE,
            sandbox_generation="gen1",
            instance_id_exposure="gen1",
            channel_noise=(("dvfs", 2.0), ("llc", 1.25)),
        ),
    )
}


def platform_profile(name: str) -> PlatformProfile:
    """Look up a platform profile; unknown names list what exists."""
    try:
        return PLATFORM_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PLATFORM_PROFILES))
        raise CloudError(
            f"unknown platform profile: {name!r}; known profiles: {known}"
        ) from None


_current_platform: ContextVar[PlatformProfile | None] = ContextVar(
    "current_platform", default=None
)


def current_platform() -> PlatformProfile | None:
    """The ambient platform profile, or ``None`` outside any context."""
    return _current_platform.get()


@contextlib.contextmanager
def platform_context(platform: PlatformProfile | None):
    """Ambiently scope a platform profile (in-process composition only).

    Contextvars do not propagate into process-pool workers; the runner
    carries the profile explicitly (like fault plans) and re-enters this
    context inside each worker.
    """
    token = _current_platform.set(platform)
    try:
        yield platform
    finally:
        _current_platform.reset(token)
