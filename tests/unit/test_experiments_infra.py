"""Unit tests for experiment infrastructure: env builder, ground truth,
report formatting."""

import pytest

from repro.experiments.base import ATTACKER_ACCOUNT, VICTIM_ACCOUNTS, default_env
from repro.experiments.ground_truth import truth_clusters
from repro.experiments.report import ComparisonRow, format_comparison, format_series, pct
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances

from tests.conftest import tiny_profile


class TestDefaultEnv:
    def test_builds_three_accounts(self):
        env = default_env(profile=tiny_profile(), seed=1)
        assert set(env.clients) == {ATTACKER_ACCOUNT, *VICTIM_ACCOUNTS}
        assert env.attacker.account_id == "account-1"
        assert env.victim().account_id == "account-2"

    def test_region_name(self):
        env = default_env(profile=tiny_profile(), seed=1)
        assert env.region == "tiny"

    def test_named_region_lookup(self):
        env = default_env("test-region1", seed=1)
        assert env.region == "test-region1"

    def test_seed_determinism(self):
        def footprint(seed):
            env = default_env(profile=tiny_profile(), seed=seed)
            client = env.attacker
            name = client.deploy(ServiceConfig(name="d"))
            handles = client.connect(name, 10)
            return sorted(
                env.orchestrator.true_host_of(h.instance_id) for h in handles
            )

        assert footprint(5) == footprint(5)
        assert footprint(5) != footprint(6)


class TestGroundTruth:
    def launch(self, env, n=12):
        client = env.attacker
        name = client.deploy(ServiceConfig(name="gt"))
        handles = client.connect(name, n)
        return fingerprint_gen1_instances(handles, p_boot=1.0)

    def test_oracle_matches_simulator(self):
        env = default_env(profile=tiny_profile(), seed=2)
        pairs = self.launch(env)
        truth = truth_clusters("oracle", env.orchestrator, pairs)
        for handle, _fp in pairs:
            assert truth[handle.instance_id] == env.orchestrator.true_host_of(
                handle.instance_id
            )

    def test_covert_agrees_with_oracle(self):
        env = default_env(profile=tiny_profile(), seed=3)
        pairs = self.launch(env, n=20)
        covert = truth_clusters("covert", env.orchestrator, pairs)
        oracle = truth_clusters("oracle", env.orchestrator, pairs)
        # Same partition (labels differ).
        by_covert: dict = {}
        for iid, label in covert.items():
            by_covert.setdefault(label, set()).add(iid)
        by_oracle: dict = {}
        for iid, label in oracle.items():
            by_oracle.setdefault(label, set()).add(iid)
        assert {frozenset(s) for s in by_covert.values()} == {
            frozenset(s) for s in by_oracle.values()
        }

    def test_unknown_mode_rejected(self):
        env = default_env(profile=tiny_profile(), seed=4)
        pairs = self.launch(env, n=4)
        with pytest.raises(ValueError):
            truth_clusters("psychic", env.orchestrator, pairs)


class TestReportFormatting:
    def test_comparison_contains_all_rows(self):
        text = format_comparison(
            "title", [ComparisonRow("a", "1", "2"), ComparisonRow("b", "3", "4")]
        )
        assert "title" in text
        for token in ("a", "b", "1", "2", "3", "4", "paper", "measured"):
            assert token in text

    def test_series_formats_floats(self):
        text = format_series("s", ("x", "y"), [(1, 0.123456), (2, 3.0)])
        assert "0.1235" in text
        assert "s" in text

    def test_pct(self):
        assert pct(0.613) == "61.3%"
        assert pct(1.0) == "100.0%"
