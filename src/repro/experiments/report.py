"""Formatting helpers for paper-vs-measured experiment reports."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


@dataclass(frozen=True)
class ComparisonRow:
    """One paper-vs-measured comparison line."""

    label: str
    paper: str
    measured: str

    def formatted(self, label_width: int = 44, col_width: int = 22) -> str:
        """Render this row with aligned columns."""
        return (
            f"{self.label:<{label_width}} "
            f"{self.paper:>{col_width}} "
            f"{self.measured:>{col_width}}"
        )


def format_comparison(title: str, rows: Iterable[ComparisonRow]) -> str:
    """Render a paper-vs-measured table as plain text."""
    rows = list(rows)
    label_width = max([len(r.label) for r in rows] + [len("metric")])
    header = ComparisonRow("metric", "paper", "measured").formatted(label_width)
    rule = "-" * len(header)
    lines = [title, rule, header, rule]
    lines.extend(row.formatted(label_width) for row in rows)
    lines.append(rule)
    return "\n".join(lines)


def format_series(title: str, header: tuple[str, ...], rows: Iterable[tuple]) -> str:
    """Render a data series (figure regeneration) as plain text."""
    widths = [max(12, len(h) + 2) for h in header]
    head = "".join(f"{h:>{w}}" for h, w in zip(header, widths))
    rule = "-" * len(head)
    lines = [title, rule, head, rule]
    for row in rows:
        cells = []
        for value, width in zip(row, widths):
            if isinstance(value, float):
                cells.append(f"{value:>{width}.4g}")
            else:
                cells.append(f"{value!s:>{width}}")
        lines.append("".join(cells))
    lines.append(rule)
    return "\n".join(lines)


def pct(value: float) -> str:
    """Format a fraction as a percentage string."""
    return f"{100.0 * value:.1f}%"
