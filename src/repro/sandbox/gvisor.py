"""Gen 1 execution environment: gVisor-sandboxed Linux container.

gVisor runs as a userspace kernel that intercepts system calls, concealing
host information such as the CPU model in ``/proc/cpuinfo`` and the host's
uptime (paper §2.3).  But it does *not* virtualize the hardware itself:
unprivileged instructions like ``rdtsc`` and ``cpuid`` execute directly on
the host CPU, which is exactly the leak the paper's Gen 1 fingerprint
exploits (§4.1).
"""

from __future__ import annotations

from repro.errors import PrivilegeError
from repro.sandbox.base import Sandbox, TscPolicy


class GVisorSandbox(Sandbox):
    """A gVisor-style sandbox around a Linux container (no virtualization).

    The covert-channel surface is inherited unchanged from
    :class:`~repro.sandbox.base.Sandbox`: ``RDRAND`` is an unprivileged
    instruction gVisor cannot intercept, so RNG-contention pressure and
    observation hit real shared hardware — which also makes the batched
    observation port (:meth:`~repro.sandbox.base.Sandbox.rng_channel_port`)
    valid for Gen 1 without any generation-specific handling.
    """

    generation = "gen1"

    def rdtsc(self) -> int:
        """``rdtsc`` reaches host hardware: returns the raw host TSC.

        Under the ``EMULATED`` mitigation policy the host kernel traps the
        instruction (CR4.TSD) and serves a per-container virtual counter.
        """
        if self.tsc_policy is TscPolicy.EMULATED:
            return self._emulated_rdtsc()
        return self._host.tsc.read(self._clock.now())

    def cpuid_model(self) -> str:
        """``cpuid`` reaches host hardware: returns the real model string."""
        return self._host.cpu.name

    def kernel_tsc_khz(self) -> float:
        """Unavailable: the container only talks to gVisor, not a kernel.

        gVisor's userspace kernel does not expose the host's refined TSC
        frequency, so the Gen 2 technique of reading it does not transfer
        to Gen 1 (paper §4.5).
        """
        raise PrivilegeError(
            "gVisor does not expose the host kernel's refined TSC frequency"
        )

    def proc_uptime(self) -> float:
        """gVisor virtualizes host runtime state: uptime is sandbox-relative."""
        return self._clock.now() - self.boot_wall_time

    def proc_cpuinfo_model(self) -> str:
        """gVisor emulates ``/proc/cpuinfo`` and hides the host CPU model."""
        return "unknown"
