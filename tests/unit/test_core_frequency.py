"""Unit tests for TSC frequency acquisition (§4.2)."""

import numpy as np
import pytest

from repro import units
from repro.core.frequency import measure_tsc_frequency, reported_tsc_frequency
from repro.errors import FingerprintError
from repro.sandbox.gvisor import GVisorSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def make_sandbox(host=None, seed=3):
    host = host or make_host()
    clock = SimClock()
    return GVisorSandbox(host, clock, np.random.default_rng(seed), "sb")


class TestReportedFrequency:
    def test_falls_back_to_model_name(self):
        sandbox = make_sandbox()
        assert reported_tsc_frequency(sandbox) == pytest.approx(2.0 * units.GHZ)

    def test_raises_without_frequency_source(self):
        host = make_host()
        object.__setattr__(host.cpu, "name", None) if False else None
        sandbox = make_sandbox(host)
        sandbox.cpuid_model = lambda: "Mystery CPU"  # no labeled frequency
        with pytest.raises(FingerprintError):
            reported_tsc_frequency(sandbox)

    def test_reported_deviates_from_actual(self):
        """The whole point of §4.2: the reported frequency is slightly off."""
        host = make_host(epsilon_hz=2000.0)
        sandbox = make_sandbox(host)
        reported = reported_tsc_frequency(sandbox)
        assert reported != host.tsc.actual_frequency_hz
        assert reported - host.tsc.actual_frequency_hz == pytest.approx(2000.0)


class TestMeasuredFrequency:
    def test_quiet_host_measures_accurately(self):
        host = make_host(epsilon_hz=5000.0)
        sandbox = make_sandbox(host)
        estimate = measure_tsc_frequency(sandbox, interval_s=0.1, repetitions=10)
        assert estimate.mean_hz == pytest.approx(host.tsc.actual_frequency_hz, abs=2000)
        assert estimate.std_hz < 200.0  # paper: < 100 Hz on most hosts

    def test_problematic_host_measures_noisily(self):
        from repro.hardware.noise import problematic_noise_model

        host = make_host(epsilon_hz=5000.0)
        host.syscall_noise = problematic_noise_model()
        host.problematic_timing = True
        sandbox = make_sandbox(host)
        estimate = measure_tsc_frequency(sandbox, interval_s=0.1, repetitions=10)
        assert estimate.std_hz > 10 * units.KHZ  # paper: 10 kHz .. MHz

    def test_repetition_count(self):
        sandbox = make_sandbox()
        estimate = measure_tsc_frequency(sandbox, repetitions=7)
        assert estimate.repetitions == 7

    def test_requires_two_repetitions(self):
        sandbox = make_sandbox()
        with pytest.raises(FingerprintError):
            measure_tsc_frequency(sandbox, repetitions=1)

    def test_measurement_consumes_wall_time(self):
        sandbox = make_sandbox()
        t0 = sandbox._clock.now()
        measure_tsc_frequency(sandbox, interval_s=0.1, repetitions=5)
        assert sandbox._clock.now() >= t0 + 0.45

    def test_measured_beats_reported_for_drift(self):
        """The measured frequency tracks the actual one, so boot times
        derived from it do not drift (the §4.2 trade-off)."""
        host = make_host(epsilon_hz=50_000.0)
        sandbox = make_sandbox(host)
        estimate = measure_tsc_frequency(sandbox, interval_s=0.1, repetitions=10)
        reported = reported_tsc_frequency(sandbox)
        actual = host.tsc.actual_frequency_hz
        assert abs(estimate.mean_hz - actual) < abs(reported - actual)
