"""Experiment drivers reproducing every table and figure of the paper.

Each module exposes a ``run(config) -> result`` entry point plus a
paper-reference constant, so the benchmark harness can print measured
values side by side with the published ones.  See DESIGN.md §4 for the
experiment index.
"""

from repro.experiments.base import SimulationEnv, default_env

__all__ = ["SimulationEnv", "default_env"]
