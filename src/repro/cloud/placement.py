"""Host selection for new container instances.

Implements the placement behavior observed in the paper: a typical FaaS
orchestrator filters feasible hosts and picks the best-scoring one by
resource utilization and load balancing (§2.2).  Observation 1 shows the
visible outcome on Cloud Run — instances of a service spread *near-uniformly*
across the hosts used — so the scorer here balances the *service's own*
per-host instance count (anti-affinity-style spreading) with random
tie-breaking, subject to per-host total-capacity limits.  Balancing on the
service's own count rather than total host load is what makes a launch
spread 800 instances 10-11 per host (Exp. 1) regardless of other tenants.

In dynamic regions (us-central1), a per-account fraction of instances
scatters off the allowed set onto arbitrary fleet hosts; see
:class:`~repro.cloud.topology.AccountPlacementPlan`.

Placement runs against the columnar :class:`~repro.fleet.FleetStore`:
requests carry host *index* arrays, and load/capacity reads and writes are
column operations.  Two equivalent execution paths exist:

* the **heap path** — a min-heap over ``(service count, random tiebreak,
  host index)``, byte-for-byte identical to the historical dict-based
  implementation (same RNG draw order, same float accumulation);
* a **vectorized fast path** for scatter-free requests where no host can
  fill during the batch — the common fleet-scale case.  The pick sequence
  of the heap is exactly the sorted multiset ``{(c, tiebreak_h) : c >=
  c0_h}``, so the fast path materializes per-host levels and lexsorts.  A
  draw-order-identity test pins both paths to the same host sequence and
  the same RNG end state.
"""

from __future__ import annotations

import dataclasses
import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import NoCapacityError
from repro.fleet import FleetStore, SparseServiceCounts

if TYPE_CHECKING:  # import cycle: platform -> ... only at type-check time
    from repro.cloud.platform import PlatformProfile

#: Scatter-free batches up to this size take the repeated-argmin path;
#: larger ones amortize better through the lexsort fast path.
_SMALL_BATCH = 32


@dataclass
class PlacementRequest:
    """One batch placement request (all hosts given as fleet indices).

    Attributes
    ----------
    count:
        Number of instances to place.
    slots_per_instance:
        Host capacity slots each instance consumes (see
        :meth:`repro.cloud.services.ContainerSize.slots`).
    allowed:
        Index array of the service's preferred hosts (base plus recruited
        helpers), in preference order — tiebreaks are drawn in this order.
    service_counts:
        Per-host instance counts for the launching service, sparse over
        the fleet (``None`` reads as all-zero).  A dense column is also
        accepted — both support the ``counts[index_array]`` gather.
    scatter_probability:
        Per-instance chance of being scattered onto a random fleet host
        instead of the allowed set (0 outside dynamic regions).
    scatter_candidates:
        Index array of hosts eligible as scatter targets (normally the
        whole fleet).
    """

    count: int
    slots_per_instance: float
    allowed: np.ndarray
    service_counts: SparseServiceCounts | np.ndarray | None = None
    scatter_probability: float = 0.0
    scatter_candidates: np.ndarray | None = None


class PlacementPolicy:
    """Least-loaded near-uniform placement over an allowed host set.

    An optional :class:`~repro.cloud.platform.PlatformProfile` scales the
    per-request scatter probability (its ``placement_spread`` knob); the
    neutral profile (and ``None``) leaves every request untouched, so the
    heap/lexsort draw-order contract is unaffected.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        platform: "PlatformProfile | None" = None,
    ) -> None:
        self._rng = rng
        self._platform = platform

    def place(self, request: PlacementRequest, store: FleetStore) -> np.ndarray:
        """Choose a host index for each requested instance.

        Mutates ``store.load_slots`` as instances are placed so the batch
        itself spreads uniformly.  Returns an int64 index array of length
        ``request.count``.

        Raises
        ------
        NoCapacityError
            If no feasible host remains for some instance.
        """
        if self._platform is not None:
            effective = self._platform.effective_scatter(
                request.scatter_probability
            )
            if effective != request.scatter_probability:
                request = dataclasses.replace(
                    request, scatter_probability=effective
                )
        allowed = np.asarray(request.allowed, dtype=np.int64)
        if allowed.size == 0:
            raise NoCapacityError("placement request has no allowed hosts")

        if request.service_counts is not None:
            counts0 = request.service_counts[allowed]
        else:
            counts0 = np.zeros(allowed.size, dtype=np.int64)
        # One tiebreak per allowed host, drawn in allowed order.  A single
        # array draw consumes the identical RNG stream as the historical
        # per-host scalar draws.
        tiebreaks = self._rng.random(allowed.size)

        scatter = (
            request.scatter_candidates
            if (
                request.scatter_probability > 0.0
                and request.scatter_candidates is not None
                and request.scatter_candidates.size > 0
            )
            else None
        )
        if scatter is None and request.count <= _SMALL_BATCH:
            return self._place_small(request, store, allowed, counts0, tiebreaks)
        if scatter is None and self._no_host_can_fill(request, store, allowed):
            return self._place_vectorized(request, store, allowed, counts0, tiebreaks)
        return self._place_heap(request, store, allowed, counts0, tiebreaks, scatter)

    # ------------------------------------------------------------------
    # Heap path (reference semantics)
    # ------------------------------------------------------------------
    def _place_heap(
        self,
        request: PlacementRequest,
        store: FleetStore,
        allowed: np.ndarray,
        counts0: np.ndarray,
        tiebreaks: np.ndarray,
        scatter: np.ndarray | None,
    ) -> np.ndarray:
        load = store.load_slots
        capacity = store.capacity_slots
        slots = request.slots_per_instance
        # Min-heap over (service instance count, random tiebreak, host index).
        # Counts only grow during a batch, so hosts popped as full stay full.
        heap: list[tuple[int, float, int]] = [
            (int(counts0[i]), float(tiebreaks[i]), int(allowed[i]))
            for i in range(allowed.size)
        ]
        heapq.heapify(heap)

        chosen = np.empty(request.count, dtype=np.int64)
        for k in range(request.count):
            host = -1
            if scatter is not None and self._rng.random() < request.scatter_probability:
                host = self._pick_scatter_host(scatter, slots, load, capacity)
            if host < 0:
                host = self._pop_least_used(heap, slots, load, capacity)
            if host < 0:
                raise NoCapacityError(
                    f"no host among {allowed.size} allowed and "
                    f"{0 if scatter is None else scatter.size} scatter "
                    f"candidates has {slots} free slots"
                )
            load[host] += slots
            chosen[k] = host
        return chosen

    def _pop_least_used(
        self,
        heap: list[tuple[int, float, int]],
        slots: float,
        load: np.ndarray,
        capacity: np.ndarray,
    ) -> int:
        while heap:
            count, tiebreak, host = heapq.heappop(heap)
            if load[host] + slots > capacity[host]:
                continue  # permanently full for this batch
            heapq.heappush(heap, (count + 1, tiebreak, host))
            return host
        return -1

    def _pick_scatter_host(
        self,
        scatter: np.ndarray,
        slots: float,
        load: np.ndarray,
        capacity: np.ndarray,
    ) -> int:
        """Pick a random feasible scatter target (a few rejection samples)."""
        for _ in range(16):
            host = int(scatter[int(self._rng.integers(scatter.size))])
            if load[host] + slots <= capacity[host]:
                return host
        return -1

    # ------------------------------------------------------------------
    # Vectorized fast paths
    # ------------------------------------------------------------------
    def _place_small(
        self,
        request: PlacementRequest,
        store: FleetStore,
        allowed: np.ndarray,
        counts0: np.ndarray,
        tiebreaks: np.ndarray,
    ) -> np.ndarray:
        """Scatter-free small batch (the common background-autoscale delta).

        Simulates the heap directly with repeated argmins over a dense key
        array: the heap pops the ``(count, tiebreak)`` minimum, skips full
        hosts permanently (``inf``), and reinserts picks one level up
        (``+= 1.0``).  With tiebreaks in ``[0, 1)``, ordering by ``count +
        tiebreak`` matches the lexicographic order, so each argmin is the
        heap's next pop.  Load accumulates per pick exactly as the heap
        path's repeated scalar additions.
        """
        count = request.count
        if count == 0:
            return np.empty(0, dtype=np.int64)
        slots = request.slots_per_instance
        load = store.load_slots
        capacity = store.capacity_slots
        key = counts0 + tiebreaks
        chosen = np.empty(count, dtype=np.int64)
        for k in range(count):
            while True:
                i = int(key.argmin())
                if key[i] == np.inf:
                    raise NoCapacityError(
                        f"no host among {allowed.size} allowed and 0 scatter "
                        f"candidates has {slots} free slots"
                    )
                host = int(allowed[i])
                if load[host] + slots > capacity[host]:
                    key[i] = np.inf  # permanently full for this batch
                    continue
                load[host] += slots
                chosen[k] = host
                key[i] += 1.0
                break
        return chosen

    def _no_host_can_fill(
        self, request: PlacementRequest, store: FleetStore, allowed: np.ndarray
    ) -> bool:
        """True when no allowed host can reach capacity during this batch.

        The margin of one extra instance absorbs any difference between
        repeated float addition and the closed-form bound, so the heap
        path's feasibility check provably never fires when this holds.
        """
        slots = request.slots_per_instance
        budget = (request.count + 1) * slots
        feasible = store.load_slots[allowed] + budget <= store.capacity_slots[allowed]
        return bool(feasible.all())

    def _place_vectorized(
        self,
        request: PlacementRequest,
        store: FleetStore,
        allowed: np.ndarray,
        counts0: np.ndarray,
        tiebreaks: np.ndarray,
    ) -> np.ndarray:
        """Batch equivalent of the heap path for the scatter-free case.

        With no scatter draws and no capacity rejections, the heap pops
        exactly the ``count`` smallest elements of the infinite multiset
        ``{(c, tiebreak_h) : c >= c0_h}`` in sorted order.  Materialize
        just enough levels per host and lexsort.
        """
        count = request.count
        if count == 0:
            return np.empty(0, dtype=np.int64)
        c0 = counts0.astype(np.int64)
        n = allowed.size

        # Smallest level bound L with sum(max(0, L - c0)) >= count; every
        # pick then sits strictly below level L.  With sorted counts and
        # prefix sums, sum(max(0, L - c0)) == L*k - prefix[k] for
        # k = #{c0 < L}, so each probe is one scalar searchsorted.
        c_sorted = np.sort(c0)
        prefix = c_sorted.cumsum()
        lo, hi = int(c_sorted[0]) + 1, int(c_sorted[0]) + count
        while lo < hi:
            mid = (lo + hi) // 2
            k = int(c_sorted.searchsorted(mid))
            below = int(prefix[k - 1]) if k else 0
            if mid * k - below >= count:
                hi = mid
            else:
                lo = mid + 1
        levels_per_host = np.maximum(0, lo - c0)

        host_rep = np.arange(n, dtype=np.int64).repeat(levels_per_host)
        offsets = levels_per_host.cumsum() - levels_per_host
        level = (
            np.arange(host_rep.size, dtype=np.int64)
            - offsets.repeat(levels_per_host)
            + c0.repeat(levels_per_host)
        )
        order = np.lexsort((tiebreaks.repeat(levels_per_host), level))[:count]
        chosen_local = host_rep[order]

        # Apply loads with the heap path's exact float semantics: each
        # chosen host accumulates `slots` by repeated addition, once per
        # instance it received.
        slots = request.slots_per_instance
        picks = np.bincount(chosen_local, minlength=n)
        live = np.flatnonzero(picks)
        hosts_live = allowed[live]
        remaining = picks[live]
        while hosts_live.size:
            store.load_slots[hosts_live] += slots
            remaining -= 1
            keep = remaining > 0
            hosts_live = hosts_live[keep]
            remaining = remaining[keep]
        return allowed[chosen_local]
