"""Shared hardware random-number-generator contention resource.

The paper's co-location verification uses a covert channel built on
contention for the host's hardware RNG (RDRAND), chosen because the RNG is
rarely used by background workloads so the false-contention rate is under 1%
(paper §4.4.1).

The model: every container instance that currently *pressures* the RNG
registers itself here.  A pressuring instance observing the channel sees a
contention level equal to the total number of co-located pressurers
(including itself), occasionally perturbed by background activity.

The same contention model backs every registered covert-channel kind (see
:mod:`repro.hardware.channels`): the kinds differ in their background/drop
rates and, for coarse channels like LLC occupancy, an optional observation
``saturation`` — never in draw order.

Draw-order contract
-------------------
Both the scalar :meth:`ContentionResource.observe` path and the batched
:meth:`ContentionResource.observe_rounds` engine consume each observer's
``numpy`` generator in exactly the same order, which is what keeps the two
execution strategies byte-identical (the same guarantee the columnar fleet
store gives for placement).  Per observation by one instance:

1. one uniform draw **per co-located other pressurer**, in one block; a
   draw ``>= drop_rate`` means that pressurer's contribution is seen;
2. then exactly **one** uniform draw for background contention, counted
   when it is ``< background_rate``.

So one observation advances the observer's generator by ``others + 1``
draws, where ``others`` is the number of *other* pressurers registered at
the moment of the observation.  Because every sandbox owns a private
generator, interleaving observations of different instances never changes
any stream — only the per-round pressurer counts couple co-located
observers, and those are plain set sizes, not randomness.  The contract is
pinned by ``tests/unit/test_hardware_rng_resource.py``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


class ContentionResource:
    """Per-host shared-hardware contention domain.

    Parameters
    ----------
    background_rate:
        Per-observation probability that unrelated host activity adds one
        unit of contention (paper: "less than 1%" for the RNG).
    drop_rate:
        Per-observation probability that scheduling noise makes a pressurer
        miss the contention it should have seen (its own unit still counts).
    saturation:
        Optional upper bound on the *observed* contention level: a coarse
        channel (e.g. LLC occupancy) cannot resolve more than this many
        concurrent pressurers, so levels clamp to it.  The clamp is applied
        after all draws, so ``None`` (no clamp, the default) and any
        saturation consume byte-identical randomness.
    """

    def __init__(
        self,
        background_rate: float = 0.005,
        drop_rate: float = 0.02,
        saturation: int | None = None,
    ) -> None:
        if not 0.0 <= background_rate < 1.0:
            raise ValueError(f"background_rate out of range: {background_rate!r}")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate!r}")
        if saturation is not None and saturation < 1:
            raise ValueError(f"saturation must be >= 1, got {saturation!r}")
        self.background_rate = background_rate
        self.drop_rate = drop_rate
        self.saturation = saturation
        self._pressurers: set[str] = set()

    def start_pressure(self, instance_id: str) -> None:
        """Register ``instance_id`` as actively hammering the RNG."""
        self._pressurers.add(instance_id)

    def stop_pressure(self, instance_id: str) -> None:
        """Unregister ``instance_id`` (no-op if it was not pressuring)."""
        self._pressurers.discard(instance_id)

    @property
    def pressurer_count(self) -> int:
        """Number of instances currently pressuring this host's RNG."""
        return len(self._pressurers)

    def current_pressurers(self) -> frozenset[str]:
        """Ids of the instances currently pressuring (provider telemetry)."""
        return frozenset(self._pressurers)

    def observe(self, instance_id: str, rng: np.random.Generator) -> int:
        """Return the contention level seen by one pressuring instance.

        The observation is the number of co-located pressurers (including
        the observer itself, which must be pressuring to measure), minus
        occasional scheduling drops of *other* pressurers' contributions,
        plus occasional background contention.

        The draws follow the module-level draw-order contract (``others``
        drop draws, then one background draw), so a sequence of scalar
        observations is stream-identical to one :meth:`observe_rounds`
        call covering the same rounds.
        """
        if instance_id not in self._pressurers:
            raise ValueError(
                f"instance {instance_id!r} must pressure the RNG before observing it"
            )
        others = len(self._pressurers) - 1
        seen_others = sum(1 for _ in range(others) if rng.random() >= self.drop_rate)
        background = 1 if rng.random() < self.background_rate else 0
        level = 1 + seen_others + background
        if self.saturation is not None:
            level = min(level, self.saturation)
        return level

    def observe_rounds(
        self,
        observers: Sequence[tuple[str, np.random.Generator]],
        n_rounds: int,
        stop_rounds: Sequence[int | None] | None = None,
    ) -> list[np.ndarray]:
        """Batched multi-round observation: one call per host per test window.

        Simulates, for every observer, ``n_rounds`` successive scalar
        :meth:`observe` calls — but draws each observer's uniforms as one
        vector and counts seen-others/background hits with array ops, so
        the cost is O(hosts) Python work instead of O(rounds x instances).

        Parameters
        ----------
        observers:
            ``(instance_id, rng)`` pairs in *schedule order*: the order in
            which the equivalent scalar engine would visit the observers
            within each round.  Every observer must currently be
            registered as pressuring.
        n_rounds:
            Number of observation rounds in the test window.
        stop_rounds:
            Optional per-observer death round: observer ``i`` observes
            rounds ``[0, stop_rounds[i])`` and stops pressuring *at its
            own slot* in round ``stop_rounds[i]``.  Within that round,
            observers scheduled earlier still see its contribution and
            observers scheduled later do not — exactly the semantics of a
            scalar engine that visits observers in schedule order and
            removes the dying pressurer when it reaches it.  ``None``
            entries (or no ``stop_rounds`` at all) mean the observer
            survives the whole window.

        Returns
        -------
        One ``int64`` array of contention levels per observer, in input
        order; observer ``i``'s array has ``stop_rounds[i]`` entries (or
        ``n_rounds`` if it survives).  Pressurers registered on this host
        that are *not* observers count as a constant external
        contribution for every round, mirroring the scalar engine (which
        never unregisters them mid-window).

        The per-observer draw streams are byte-identical to the scalar
        path (see the module-level draw-order contract); this method never
        mutates the pressurer set — deaths only truncate observations and
        pressure contributions, and the caller unregisters dead observers
        afterwards, as the scalar engine does at the death slot.
        """
        if n_rounds < 0:
            raise ValueError(f"n_rounds must be >= 0, got {n_rounds}")
        ids = [instance_id for instance_id, _rng in observers]
        if len(set(ids)) != len(ids):
            raise ValueError("observe_rounds observers must be distinct instances")
        for instance_id in ids:
            if instance_id not in self._pressurers:
                raise ValueError(
                    f"instance {instance_id!r} must pressure the RNG "
                    f"before observing it"
                )
        if stop_rounds is None:
            stops = [n_rounds] * len(observers)
        else:
            if len(stop_rounds) != len(observers):
                raise ValueError(
                    f"got {len(stop_rounds)} stop_rounds for "
                    f"{len(observers)} observers"
                )
            stops = [n_rounds if s is None else min(s, n_rounds) for s in stop_rounds]
            if any(s < 0 for s in stops):
                raise ValueError(f"stop_rounds must be >= 0, got {list(stop_rounds)}")

        external = len(self._pressurers) - len(observers)
        rounds = np.arange(n_rounds)
        stop_arr = np.asarray(stops, dtype=np.int64).reshape(-1, 1)
        # alive[j, r]: observer j still pressures *throughout* round r;
        # dying[j, r]: observer j stops at its own slot within round r, so
        # only observers scheduled before it still see it that round.
        alive = stop_arr > rounds
        dying = stop_arr == rounds
        total_alive = alive.sum(axis=0)
        dying_after = dying.sum(axis=0) - np.cumsum(dying, axis=0)
        others = external + (total_alive - alive) + dying_after

        levels: list[np.ndarray] = []
        for index, (_instance_id, rng) in enumerate(observers):
            stop = stops[index]
            counts = others[index, :stop] + 1
            draws = rng.random(int(counts.sum()))
            ends = np.cumsum(counts)
            starts = ends - counts
            seen_prefix = np.concatenate(
                ([0], np.cumsum(draws >= self.drop_rate))
            )
            seen_others = seen_prefix[ends - 1] - seen_prefix[starts]
            background = draws[ends - 1] < self.background_rate
            stream = (1 + seen_others + background).astype(np.int64, copy=False)
            if self.saturation is not None:
                stream = np.minimum(stream, self.saturation)
            levels.append(stream)
        return levels


#: Historical name of :class:`ContentionResource`, kept as an alias (not a
#: subclass: the vectorized CTest engine proves stream identity by comparing
#: ``type(resource).observe`` against this class's methods, and an alias
#: keeps every existing identity check true by construction).
RngContentionResource = ContentionResource
