"""Exception hierarchy for the EAAO reproduction library.

All library-specific errors derive from :class:`ReproError` so that callers
can catch everything raised by this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SimulationError(ReproError):
    """A simulated component was driven into an invalid state."""


class ClockError(SimulationError):
    """Simulated time was manipulated incorrectly (e.g. moved backwards)."""


class HardwareError(SimulationError):
    """A simulated hardware component rejected an operation."""


class SandboxError(ReproError):
    """A sandboxed guest attempted an operation its environment forbids."""


class PrivilegeError(SandboxError):
    """The guest lacks the privilege required for the requested operation."""


class CloudError(ReproError):
    """The simulated FaaS platform rejected a control-plane request."""


class QuotaExceededError(CloudError):
    """A request would exceed the account's resource quota."""


class NoCapacityError(CloudError):
    """The orchestrator could not find a host with spare capacity."""


class InstanceGoneError(CloudError):
    """An operation referenced a terminated or unknown container instance."""


class LaunchError(CloudError):
    """An instance launch failed (and bounded retries were exhausted)."""


class VerificationError(ReproError):
    """The co-location verification pipeline hit an unrecoverable state."""


class FingerprintError(ReproError):
    """A fingerprint could not be computed from the available probes."""


class FaultSpecError(ReproError):
    """A fault-injection spec string or rate could not be validated."""


class CellExecutionError(ReproError):
    """One or more experiment cells failed (after any configured retries)."""
