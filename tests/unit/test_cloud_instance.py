"""Unit tests for container instance lifecycle."""

import numpy as np
import pytest

from repro.cloud.instance import ContainerInstance, InstanceState
from repro.cloud.services import Service, ServiceConfig
from repro.errors import InstanceGoneError
from repro.sandbox.gvisor import GVisorSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def make_instance(clock=None):
    clock = clock or SimClock()
    host = make_host()
    sandbox = GVisorSandbox(host, clock, np.random.default_rng(0), "i-1")
    service = Service(config=ServiceConfig(name="s"), account_id="a", image_id="img")
    return (
        ContainerInstance(
            instance_id="i-1",
            service=service,
            host_id=host.host_id,
            sandbox=sandbox,
            created_at=clock.now(),
        ),
        clock,
    )


class TestLifecycle:
    def test_starts_active(self):
        instance, _clock = make_instance()
        assert instance.state is InstanceState.ACTIVE
        assert instance.alive

    def test_go_idle_accumulates_active_time(self):
        instance, clock = make_instance()
        clock.sleep(30.0)
        instance.go_idle(clock.now())
        assert instance.state is InstanceState.IDLE
        assert instance.active_seconds_total == pytest.approx(30.0)

    def test_idle_then_active_again(self):
        instance, clock = make_instance()
        clock.sleep(10.0)
        instance.go_idle(clock.now())
        clock.sleep(100.0)
        instance.go_active(clock.now())
        clock.sleep(5.0)
        instance.go_idle(clock.now())
        # Idle gaps do not bill: 10 + 5 seconds of activity.
        assert instance.active_seconds_total == pytest.approx(15.0)

    def test_terminate_closes_active_period(self):
        instance, clock = make_instance()
        clock.sleep(20.0)
        instance.terminate(clock.now())
        assert not instance.alive
        assert instance.active_seconds_total == pytest.approx(20.0)

    def test_terminate_idempotent(self):
        instance, clock = make_instance()
        instance.terminate(clock.now())
        instance.terminate(clock.now())
        assert not instance.alive

    def test_sigterm_callback_receives_time(self):
        instance, clock = make_instance()
        seen = []
        instance.on_sigterm = seen.append
        clock.sleep(7.0)
        instance.terminate(clock.now())
        assert seen == [clock.now()]

    def test_sigterm_not_fired_twice(self):
        instance, clock = make_instance()
        seen = []
        instance.on_sigterm = seen.append
        instance.terminate(clock.now())
        instance.terminate(clock.now())
        assert len(seen) == 1

    def test_operations_on_terminated_rejected(self):
        instance, clock = make_instance()
        instance.terminate(clock.now())
        with pytest.raises(InstanceGoneError):
            instance.go_idle(clock.now())
        with pytest.raises(InstanceGoneError):
            instance.go_active(clock.now())
        with pytest.raises(InstanceGoneError):
            instance.require_alive()
