"""Unit tests for the CLI and the experiment registry."""

import pytest

from repro.cli import main
from repro.experiments.registry import EXPERIMENTS, run_experiment


class TestRegistry:
    def test_all_design_doc_experiments_registered(self):
        expected = {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10",
            "fig11a", "fig12", "exp1", "sec42", "sec43", "sec45",
            "naive", "gen2cov", "cost", "victim_locator",
        }
        assert expected <= set(EXPERIMENTS)

    def test_unknown_experiment_raises_with_listing(self):
        with pytest.raises(KeyError) as excinfo:
            run_experiment("fig99")
        assert "fig9" in str(excinfo.value)

    def test_invalid_scale_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("exp1", scale="enormous")

    def test_quick_exp1_produces_report(self):
        report = run_experiment("exp1", scale="quick")
        assert "Experiment 1" in report
        assert "measured" in report

    def test_quick_fig7_produces_series(self):
        report = run_experiment("fig7", scale="quick")
        assert "cumulative" in report


class TestCli:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "exp1" in out
        assert "fig9" in out

    def test_run_single_experiment(self, capsys):
        assert main(["run", "exp1"]) == 0
        out = capsys.readouterr().out
        assert "Experiment 1" in out

    def test_run_unknown_experiment_fails(self, capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment" in err

    def test_scale_flag_parsed(self, capsys):
        assert main(["run", "exp1", "--scale", "quick"]) == 0

    def test_negative_jobs_rejected(self, capsys):
        assert main(["run", "exp1", "--jobs", "-1"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_run_reports_runner_stats(self, capsys):
        assert main(["run", "exp1"]) == 0
        out = capsys.readouterr().out
        assert "[runner]" in out
        assert "1 cells" in out

    def test_second_run_hits_cache(self, capsys):
        assert main(["run", "exp1"]) == 0
        capsys.readouterr()
        assert main(["run", "exp1"]) == 0
        out = capsys.readouterr().out
        assert "1 cache hits (100%)" in out

    def test_no_cache_flag_recomputes(self, capsys):
        assert main(["run", "exp1"]) == 0
        capsys.readouterr()
        assert main(["run", "exp1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out

    def test_faults_flag_reports_counters(self, capsys):
        assert main(["run", "exp1", "--faults", "cell=0.2,seed=3", "--max-retries", "5"]) == 0
        out = capsys.readouterr().out
        assert "Experiment 1" in out
        assert "[faults] spec 'cell=0.2,seed=3':" in out
        assert "faults injected" in out

    def test_fault_run_never_reads_cache(self, capsys):
        assert main(["run", "exp1"]) == 0  # populate the cache
        capsys.readouterr()
        assert main(["run", "exp1", "--faults", "cell=0.1,seed=1"]) == 0
        out = capsys.readouterr().out
        assert "0 cache hits" in out

    def test_invalid_fault_spec_rejected(self, capsys):
        assert main(["run", "exp1", "--faults", "warp=0.5"]) == 2
        err = capsys.readouterr().err
        assert "--faults" in err
        assert "unknown fault spec key" in err

    def test_out_of_range_fault_rate_rejected(self, capsys):
        assert main(["run", "exp1", "--faults", "cell=1.5"]) == 2
        assert "--faults" in capsys.readouterr().err

    def test_negative_max_retries_rejected(self, capsys):
        assert main(["run", "exp1", "--max-retries", "-1"]) == 2
        assert "--max-retries" in capsys.readouterr().err

    def test_unknown_platform_rejected(self, capsys):
        assert main(["run", "exp1", "--platform", "gcp"]) == 2
        err = capsys.readouterr().err
        assert "--platform" in err
        assert "known profiles" in err

    def test_platform_run_never_touches_cache(self, capsys):
        assert main(["run", "exp1"]) == 0  # populate the cache
        capsys.readouterr()
        assert main(["run", "exp1", "--platform", "azure_functions_like"]) == 0
        out = capsys.readouterr().out
        assert "Experiment 1" in out
        assert "0 cache hits" in out

    def test_default_platform_name_is_neutral(self, capsys):
        assert main(["run", "exp1"]) == 0  # populate the cache
        capsys.readouterr()
        assert main(["run", "exp1", "--platform", "default"]) == 0
        out = capsys.readouterr().out
        assert "1 cache hits (100%)" in out


class TestChannelStats:
    def test_record_batch_accumulates(self):
        from repro.core.covert import ChannelStats

        stats = ChannelStats()
        stats.record_batch([3, 2], seconds=1.2)
        stats.record_batch([2], seconds=1.2)
        assert stats.n_tests == 3
        assert stats.n_instance_slots == 7
        assert stats.batches == 2
        assert stats.busy_seconds == pytest.approx(2.4)
        # per_batch_tests is a bounded histogram view, not a raw list:
        # long campaigns must not accumulate one entry per batch.
        assert stats.per_batch_tests.count == 2
        assert stats.per_batch_tests.total == 3
        assert stats.per_batch_tests.max == 2
        assert stats.per_batch_tests.min == 1

    def test_per_batch_tests_memory_is_bounded(self):
        from repro.core.covert import ChannelStats

        stats = ChannelStats()
        for _ in range(10_000):
            stats.record_batch([1], seconds=0.0)
        view = stats.per_batch_tests
        assert view.count == 10_000
        assert view.mean == 1.0
        # The backing store is the histogram summary — four scalars — so
        # nothing in the stats object grows with the number of batches.
        assert not any(
            isinstance(value, list) and len(value) > 100
            for value in vars(stats).values()
        )


class TestBuildParser:
    def test_parser_accepts_run_with_scale(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "exp1", "--scale", "full"])
        assert args.command == "run"
        assert args.experiment == "exp1"
        assert args.scale == "full"

    def test_parser_rejects_bad_scale(self):
        from repro.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "exp1", "--scale", "huge"])

    def test_parser_accepts_jobs_and_no_cache(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4", "--jobs", "4", "--no-cache"])
        assert args.jobs == 4
        assert args.no_cache is True

    def test_parser_defaults_serial_with_cache(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["run", "fig4"])
        assert args.jobs == 0
        assert args.no_cache is False
        assert args.faults is None
        assert args.max_retries is None

    def test_parser_accepts_faults_and_max_retries(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "exp1", "--faults", "launch=0.1,seed=7", "--max-retries", "3"]
        )
        assert args.faults == "launch=0.1,seed=7"
        assert args.max_retries == 3

    def test_extension_experiments_registered(self):
        assert "surveillance" in EXPERIMENTS
        assert "defenses" in EXPERIMENTS
        assert "victim_locator" in EXPERIMENTS
        assert "channel_matrix" in EXPERIMENTS

    def test_parser_accepts_platform(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["run", "exp1", "--platform", "aws_lambda_like"]
        )
        assert args.platform == "aws_lambda_like"
        assert build_parser().parse_args(["run", "exp1"]).platform is None


class TestCliTelemetry:
    def test_trace_flag_writes_deterministic_jsonl(self, tmp_path, capsys):
        import json

        trace = tmp_path / "out.jsonl"
        assert main(["--trace", str(trace), "run", "exp1"]) == 0
        out = capsys.readouterr().out
        assert "[trace]" in out
        lines = trace.read_text(encoding="utf-8").splitlines()
        assert lines, "trace file is empty"
        names = [json.loads(line)["name"] for line in lines]
        assert names[0] == "experiment"
        assert "cell" in names
        assert "orchestrator.launch" in names
        # Wall-clock measurements never leak into the deterministic export.
        assert all("wall_s" not in json.loads(line) for line in lines)

    def test_trace_flag_accepted_after_subcommand(self, tmp_path):
        trace = tmp_path / "sub.jsonl"
        assert main(["run", "exp1", "--trace", str(trace)]) == 0
        assert trace.exists()

    def test_trace_is_identical_across_jobs_counts(self, tmp_path):
        serial = tmp_path / "serial.jsonl"
        pooled = tmp_path / "pooled.jsonl"
        assert main(["run", "exp1", "--no-cache", "--trace", str(serial)]) == 0
        assert main(
            ["run", "exp1", "--no-cache", "--jobs", "2", "--trace", str(pooled)]
        ) == 0
        assert serial.read_bytes() == pooled.read_bytes()

    def test_metrics_flag_prints_counters(self, capsys):
        assert main(["--metrics", "run", "exp1"]) == 0
        out = capsys.readouterr().out
        assert "[metrics]" in out
        assert "runner.cells" in out
        assert "orchestrator.instances_created" in out

    def test_disabled_telemetry_output_is_unchanged(self, capsys):
        """The no-op guarantee, CLI edition: the report body of a traced
        run equals a plain run's output exactly (minus the appended
        [trace]/[metrics] sections).  ``[runner]`` stat lines carry
        wall-clock timings, so they are stripped before comparing — the
        same convention the CI byte-stability check uses."""

        def body(out: str) -> str:
            return "\n".join(
                line for line in out.splitlines()
                if not line.startswith("[runner]")
            )

        assert main(["run", "exp1", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert main(["--metrics", "run", "exp1", "--no-cache"]) == 0
        traced = capsys.readouterr().out
        assert body(traced).startswith(body(plain))
        assert "[metrics]" not in plain
