"""Typed metric containers: counters, gauges, and histograms.

A :class:`MetricSet` is the mutable numeric state behind both the
telemetry handle (:class:`~repro.telemetry.tracer.Telemetry`) and the
legacy stats facades (:class:`~repro.core.covert.ChannelStats`,
:class:`~repro.runner.pool.RunStats`).  Three metric kinds:

* **counters** — monotonically accumulated sums (``inc``);
* **gauges** — last-write-wins point-in-time values (``gauge``);
* **histograms** — summarized observations (``observe``), stored as
  ``(count, total, min, max)`` so they merge across processes without
  keeping every sample.

Counter and histogram accumulation is commutative and associative, so
totals are independent of execution order — the property that lets worker
processes keep their own sets and :meth:`MetricSet.merge` fold them into
the parent without caring who finished first.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class HistogramSummary:
    """Order-independent summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    min: float = float("inf")
    max: float = float("-inf")

    def observe(self, value: float) -> None:
        """Fold one observation into the summary."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: "HistogramSummary") -> None:
        """Fold another summary into this one."""
        self.count += other.count
        self.total += other.total
        if other.count:
            self.min = min(self.min, other.min)
            self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        """Mean observation (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict:
        """JSON-able representation."""
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }


@dataclass
class MetricSet:
    """A named collection of counters, gauges, and histograms."""

    counters: dict[str, float] = field(default_factory=dict)
    gauges: dict[str, float] = field(default_factory=dict)
    histograms: dict[str, HistogramSummary] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name`` (created at 0)."""
        self.counters[name] = self.counters.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = HistogramSummary()
        hist.observe(value)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> float:
        """Current value of counter ``name`` (0 when absent)."""
        return self.counters.get(name, 0)

    def snapshot(self) -> dict[str, float]:
        """Copy of the counters, for later :meth:`since` deltas."""
        return dict(self.counters)

    def since(self, snapshot: dict[str, float]) -> dict[str, float]:
        """Per-counter growth since a :meth:`snapshot`.

        The delta discipline is what makes re-entrant consumers safe: a
        caller that wants "cost of *this* call" snapshots before and reads
        the difference after, instead of resetting shared counters (which
        would double-count or lose concurrent increments).
        """
        return {
            name: value - snapshot.get(name, 0)
            for name, value in self.counters.items()
            if value != snapshot.get(name, 0)
        }

    def merge(self, other: "MetricSet") -> None:
        """Fold another set into this one (counters/histograms add;
        gauges last-write-wins)."""
        for name, value in other.counters.items():
            self.inc(name, value)
        self.gauges.update(other.gauges)
        for name, hist in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histograms[name] = HistogramSummary()
            mine.merge(hist)

    def as_dict(self) -> dict:
        """Deterministic (sorted-key) JSON-able representation."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "gauges": {k: self.gauges[k] for k in sorted(self.gauges)},
            "histograms": {
                k: self.histograms[k].as_dict() for k in sorted(self.histograms)
            },
        }

    def to_state(self) -> dict:
        """Picklable/JSON-able state for cross-process transfer."""
        return self.as_dict()

    @classmethod
    def from_state(cls, state: dict) -> "MetricSet":
        """Rebuild a set from :meth:`to_state` output."""
        ms = cls()
        ms.counters.update(state.get("counters", {}))
        ms.gauges.update(state.get("gauges", {}))
        for name, h in state.get("histograms", {}).items():
            if h.get("count"):
                ms.histograms[name] = HistogramSummary(
                    count=h["count"], total=h["total"], min=h["min"], max=h["max"]
                )
        return ms
