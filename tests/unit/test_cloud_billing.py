"""Unit tests for the billing model."""

import pytest

from repro.cloud.billing import BillingMeter, TIER1_RATES, pairwise_test_cost


class TestPricingRates:
    def test_paper_rates(self):
        """Paper §4.3: ¢0.0024/vCPU-s and ¢0.00025/GB-s."""
        assert TIER1_RATES.cpu_usd_per_vcpu_second == pytest.approx(0.000024)
        assert TIER1_RATES.memory_usd_per_gb_second == pytest.approx(0.0000025)

    def test_active_cost_formula(self):
        """Cost = t * (C*R_cpu + M*R_mem) for one instance."""
        cost = TIER1_RATES.active_cost(vcpus=1.0, memory_gb=0.5, active_seconds=100.0)
        assert cost == pytest.approx(100.0 * (0.000024 + 0.5 * 0.0000025))

    def test_zero_time_costs_nothing(self):
        assert TIER1_RATES.active_cost(4.0, 4.0, 0.0) == 0.0


class TestBillingMeter:
    def test_accumulates_usage(self):
        meter = BillingMeter()
        meter.charge_active(vcpus=1.0, memory_gb=0.5, active_seconds=10.0)
        meter.charge_active(vcpus=2.0, memory_gb=1.0, active_seconds=5.0)
        assert meter.vcpu_seconds == 20.0
        assert meter.gb_seconds == 10.0

    def test_total_usd(self):
        meter = BillingMeter()
        meter.charge_active(1.0, 0.5, 1000.0)
        assert meter.total_usd == pytest.approx(1000 * 0.000024 + 500 * 0.0000025)

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            BillingMeter().charge_active(1.0, 0.5, -1.0)

    def test_reset(self):
        meter = BillingMeter()
        meter.charge_active(1.0, 0.5, 10.0)
        meter.reset()
        assert meter.total_usd == 0.0

    def test_idle_instances_not_charged_here(self):
        """Only active time is ever passed to the meter (request billing)."""
        meter = BillingMeter()
        assert meter.total_usd == 0.0


class TestPairwiseCostModel:
    def test_paper_headline_numbers(self):
        """800 instances: 319,600 tests, ~8.9 hours, ~$645 (paper §4.3)."""
        n_tests, seconds, usd = pairwise_test_cost(800, seconds_per_test=0.1)
        assert n_tests == 319_600
        assert seconds / 3600 == pytest.approx(8.878, rel=0.01)
        assert usd == pytest.approx(645, rel=0.01)

    def test_quadratic_scaling(self):
        t1, _, _ = pairwise_test_cost(100, 0.1)
        t2, _, _ = pairwise_test_cost(200, 0.1)
        assert t1 == 4950
        assert t2 == 19900

    def test_two_instances_single_test(self):
        n_tests, seconds, _ = pairwise_test_cost(2, 0.5)
        assert n_tests == 1
        assert seconds == 0.5
