"""Property-based tests for the telemetry subsystem's core guarantees.

Three invariants carry the golden-trace machinery:

* spans always nest — every record's parent is the span that was open
  when it was opened, and a child's simulated interval lies inside its
  parent's;
* counter and histogram totals are independent of execution order and of
  how increments are partitioned across handles (what makes worker-side
  merge exact); and
* enabling telemetry never changes what an experiment computes — the
  instrumented code paths are observation only.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.simtime.clock import SimClock
from repro.telemetry import MetricSet, Telemetry, telemetry_context

# One step of a random instrumentation program: open a span, close the
# innermost span, record an event, or advance simulated time.
actions = st.lists(
    st.one_of(
        st.tuples(st.just("open"), st.sampled_from(["a", "b", "c", "d"])),
        st.tuples(st.just("close"), st.none()),
        st.tuples(st.just("event"), st.sampled_from(["e", "f"])),
        st.tuples(st.just("sleep"), st.floats(min_value=0.5, max_value=60.0)),
    ),
    max_size=40,
)


def run_program(program) -> Telemetry:
    tm = Telemetry()
    tm.use_clock(SimClock())
    open_spans = []
    for action, arg in program:
        if action == "open":
            open_spans.append(tm.span(arg))
        elif action == "close" and open_spans:
            open_spans.pop().close()
        elif action == "event":
            tm.event(arg)
        elif action == "sleep":
            tm._clock.sleep(arg)
    while open_spans:
        open_spans.pop().close()
    return tm


@given(actions)
@settings(max_examples=150, deadline=None)
def test_spans_always_nest(program):
    tm = run_program(program)
    records = tm.records()
    by_id = {span.span_id: span for span in records}
    for span in records:
        # Ids are assigned at open time, so a parent always precedes its
        # children — no orphans, no forward references.
        if span.parent_id is not None:
            assert span.parent_id in by_id
            assert span.parent_id < span.span_id
            parent = by_id[span.parent_id]
            # Child interval inside the parent's (both are closed).
            assert parent.t0 <= span.t0
            assert span.t1 <= parent.t1
        assert span.t0 <= span.t1


@given(actions)
@settings(max_examples=60, deadline=None)
def test_identical_programs_trace_identically(program):
    from repro.telemetry import span_lines

    assert span_lines(run_program(program)) == span_lines(run_program(program))


increments = st.lists(
    st.tuples(st.sampled_from(["x", "y", "z"]), st.integers(-5, 5)),
    max_size=30,
)


@given(increments, st.randoms(use_true_random=False))
@settings(max_examples=150, deadline=None)
def test_counter_totals_are_order_independent(entries, rnd):
    forward, shuffled = MetricSet(), MetricSet()
    for name, n in entries:
        forward.inc(name, n)
    reordered = list(entries)
    rnd.shuffle(reordered)
    for name, n in reordered:
        shuffled.inc(name, n)
    assert forward.counters == shuffled.counters


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["h1", "h2"]),
            st.floats(min_value=-100, max_value=100),
        ),
        max_size=30,
    ),
    st.integers(min_value=0, max_value=30),
)
@settings(max_examples=150, deadline=None)
def test_partitioned_merge_equals_whole(observations, split):
    split = min(split, len(observations))
    whole, left, right = MetricSet(), MetricSet(), MetricSet()
    for name, value in observations:
        whole.observe(name, value)
        whole.inc(name)
    for name, value in observations[:split]:
        left.observe(name, value)
        left.inc(name)
    for name, value in observations[split:]:
        right.observe(name, value)
        right.inc(name)
    left.merge(right)
    assert left.counters == whole.counters
    assert set(left.histograms) == set(whole.histograms)
    for name, merged in left.histograms.items():
        reference = whole.histograms[name]
        assert merged.count == reference.count
        assert merged.min == reference.min
        assert merged.max == reference.max
        # Float addition is not associative: partitioned partial sums may
        # differ from the straight-line sum in the last bits.
        assert math.isclose(
            merged.total, reference.total, rel_tol=1e-9, abs_tol=1e-9
        )


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=8, deadline=None)
def test_enabling_telemetry_never_changes_results(seed):
    def verify_once():
        from tests.conftest import tiny_profile

        env = default_env(profile=tiny_profile(), seed=seed)
        client = env.attacker
        service = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(service, 16)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)
        clusters = sorted(
            tuple(sorted(h.instance_id for h in cluster))
            for cluster in report.clusters
        )
        return clusters, report.n_tests, report.n_batches, report.busy_seconds

    plain = verify_once()
    with telemetry_context(Telemetry()):
        traced = verify_once()
    assert traced == plain
