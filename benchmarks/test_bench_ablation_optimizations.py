"""Ablation: the paper's §5.2 "potential attack optimizations".

* Multi-account scaling: more attacker accounts -> wider combined
  footprint, but new-account quotas throttle the benefit.
* Victim profiling: a recorded fingerprint profile lets a repeat attacker
  focus on a small, precise subset of its fleet.
"""

from repro import units
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import optimized_launch
from repro.core.attack.targeting import VictimProfile, multi_account_footprint
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import VICTIM_ACCOUNTS, default_env
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once


def run_multi_account():
    results = {}
    for k in (1, 2, 3):
        # A fresh region per arm: footprints must not accumulate across
        # arms, and neither must billing from still-running fleets.
        env = default_env("us-east1", seed=960)
        clients = [env.attacker] + [env.victim(a) for a in VICTIM_ACCOUNTS]
        union, cost, _ = multi_account_footprint(
            clients[:k], n_services_per_account=4, launches=4
        )
        results[k] = (len(union), cost)
    return results


def test_ablation_multi_account(benchmark, emit):
    results = run_once(benchmark, run_multi_account)
    emit(
        format_comparison(
            "Ablation — footprint vs number of attacker accounts",
            [
                ComparisonRow(
                    f"{k} account(s)", "-", f"{hosts} hosts / ${cost:.2f}"
                )
                for k, (hosts, cost) in sorted(results.items())
            ],
        )
    )
    assert results[2][0] > results[1][0]
    assert results[3][0] >= results[2][0]
    # Cost scales ~linearly with accounts.
    assert results[3][1] > 2 * results[1][1]


def run_profiling():
    env = default_env("us-east1", seed=961)
    attacker, victim = env.attacker, env.victim("account-2")
    campaign = ColocationCampaign(
        attacker=attacker,
        victim=victim,
        strategy=lambda c: optimized_launch(c, service_prefix="p1"),
    )
    result = campaign.run(n_victim_instances=100, victim_service_name="api")
    cluster_of = result.verification.cluster_index()
    victim_handles = [
        h
        for cluster in result.verification.clusters
        for h in cluster
        if h.instance_id.startswith("account-2/")
    ]
    attacker_alive = [
        h
        for cluster in result.verification.clusters
        for h in cluster
        if h.instance_id.startswith("account-1/") and h.alive
    ]
    tagged = fingerprint_gen1_instances(attacker_alive, p_boot=1.0)
    profile = VictimProfile.from_campaign(
        now=attacker.now(),
        victim_handles=victim_handles,
        cluster_of=cluster_of,
        attacker_fingerprints={h.instance_id: fp for h, fp in tagged},
    )
    for name in attacker.service_names():
        attacker.disconnect(name)
    victim.disconnect("api")
    attacker.wait(2 * units.DAY)

    outcome = optimized_launch(attacker, service_prefix="p2")
    tagged2 = fingerprint_gen1_instances(outcome.handles, p_boot=1.0)
    targets = profile.select_targets(tagged2, now=attacker.now())
    victim_handles2 = victim.connect("api", 100)
    orch = env.orchestrator
    victim_hosts = {orch.true_host_of(h.instance_id) for h in victim_handles2}
    on_target = sum(
        1 for h in targets if orch.true_host_of(h.instance_id) in victim_hosts
    )
    return len(outcome.handles), len(targets), on_target


def test_ablation_victim_profiling(benchmark, emit):
    fleet, targets, on_target = run_once(benchmark, run_profiling)
    emit(
        format_comparison(
            "Ablation — repeat attack with a victim fingerprint profile",
            [
                ComparisonRow("fleet size (strike 2)", "-", str(fleet)),
                ComparisonRow("instances selected by profile", "-", str(targets)),
                ComparisonRow(
                    "selected truly co-located with victim", "-",
                    f"{on_target} ({100 * on_target / max(targets, 1):.0f}%)",
                ),
            ],
        )
    )
    assert targets < fleet / 3, "profiling must cut the monitored fleet"
    assert on_target / max(targets, 1) > 0.7, "profiled targets are precise"
