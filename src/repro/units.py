"""Small unit helpers shared across the package.

Simulated wall-clock time is expressed in seconds since the Unix epoch as a
``float``.  TSC values are expressed in ticks as an ``int``.  Frequencies are
expressed in Hz as a ``float``.  These helpers exist so that call sites read
naturally (``MINUTE``, ``khz(4)``) instead of being littered with magic
numbers.
"""

from __future__ import annotations

#: One second, the base time unit.
SECOND: float = 1.0

#: Number of seconds in one millisecond.
MILLISECOND: float = 1e-3

#: Number of seconds in one microsecond.
MICROSECOND: float = 1e-6

#: Number of seconds in one minute.
MINUTE: float = 60.0

#: Number of seconds in one hour.
HOUR: float = 3600.0

#: Number of seconds in one day.
DAY: float = 86400.0

#: One hertz, the base frequency unit.
HZ: float = 1.0

#: Number of Hz in one kilohertz.
KHZ: float = 1e3

#: Number of Hz in one megahertz.
MHZ: float = 1e6

#: Number of Hz in one gigahertz.
GHZ: float = 1e9


def minutes(value: float) -> float:
    """Convert ``value`` minutes to seconds."""
    return value * MINUTE


def hours(value: float) -> float:
    """Convert ``value`` hours to seconds."""
    return value * HOUR


def days(value: float) -> float:
    """Convert ``value`` days to seconds."""
    return value * DAY


def khz(value: float) -> float:
    """Convert ``value`` kilohertz to Hz."""
    return value * KHZ


def mhz(value: float) -> float:
    """Convert ``value`` megahertz to Hz."""
    return value * MHZ


def ghz(value: float) -> float:
    """Convert ``value`` gigahertz to Hz."""
    return value * GHZ
