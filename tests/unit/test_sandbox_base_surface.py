"""Unit tests for the shared sandbox surface (base-class behaviors)."""

import numpy as np

from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.microvm import MicroVMSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def both_generations(host=None, clock=None):
    host = host or make_host()
    clock = clock or SimClock()
    return [
        GVisorSandbox(host, clock, np.random.default_rng(1), "g1"),
        MicroVMSandbox(host, clock, np.random.default_rng(2), "g2"),
    ], host


class TestSharedSurface:
    def test_cpuid_tsc_leaf_hidden_everywhere(self):
        sandboxes, _host = both_generations()
        for sandbox in sandboxes:
            assert sandbox.cpuid_tsc_frequency() is None

    def test_bus_pressure_surface(self):
        sandboxes, host = both_generations()
        for sandbox in sandboxes:
            sandbox.start_bus_pressure()
        assert host.memory_bus.pressurer_count == 2
        level = sandboxes[0].observe_bus_contention()
        assert level >= 1
        for sandbox in sandboxes:
            sandbox.stop_bus_pressure()
        assert host.memory_bus.pressurer_count == 0

    def test_run_busy_visible_to_sibling(self):
        sandboxes, _host = both_generations()
        sandboxes[0].run_busy(10.0)
        assert sandboxes[1].observe_cpu_contention() >= 1

    def test_rng_and_bus_domains_are_independent(self):
        sandboxes, host = both_generations()
        sandboxes[0].start_rng_pressure()
        assert host.memory_bus.pressurer_count == 0
        assert host.rng_resource.pressurer_count == 1
        sandboxes[0].stop_rng_pressure()

    def test_boot_wall_time_recorded(self):
        clock = SimClock()
        clock.sleep(123.0)
        sandboxes, _host = both_generations(clock=clock)
        for sandbox in sandboxes:
            assert sandbox.boot_wall_time == clock.now()
