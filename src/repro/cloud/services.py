"""Services, container sizes, and container images.

A *service* (the paper uses "function" and "service" interchangeably) is a
deployed container image plus resource configuration.  Table 1 of the paper
defines four container sizes used throughout the evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CloudError


@dataclass(frozen=True)
class ContainerSize:
    """Resource specification of a container instance (paper Table 1)."""

    name: str
    vcpus: float
    memory_gb: float

    @property
    def slots(self) -> float:
        """Host capacity slots consumed; one slot = one Small instance.

        Sized by the dominant resource so that, e.g., a Large instance
        (4 vCPU / 4 GB) displaces four Small instances (1 vCPU / 0.5 GB).
        """
        return max(self.vcpus, self.memory_gb, 0.25)


#: The four sizes defined for the paper's evaluation (Table 1).
PICO = ContainerSize("Pico", vcpus=0.25, memory_gb=0.256)
SMALL = ContainerSize("Small", vcpus=1.0, memory_gb=0.512)
MEDIUM = ContainerSize("Medium", vcpus=2.0, memory_gb=1.0)
LARGE = ContainerSize("Large", vcpus=4.0, memory_gb=4.0)

#: Lookup by name for configuration files and CLI-style callers.
CONTAINER_SIZES: dict[str, ContainerSize] = {
    size.name: size for size in (PICO, SMALL, MEDIUM, LARGE)
}


@dataclass(frozen=True)
class ServiceConfig:
    """Deployment-time configuration of a service.

    Attributes
    ----------
    name:
        Service name, unique within an account.
    size:
        Container resource specification.
    generation:
        Execution environment: ``"gen1"`` (gVisor, default on Cloud Run) or
        ``"gen2"`` (microVM).
    max_instances:
        Autoscaling limit.  Cloud Run defaults to 100 and allows up to 1000;
        instance creation slows as the count approaches 1000 (paper §4.4.1).
    concurrency:
        Requests per instance before the autoscaler adds instances.  The
        paper pins it to 1 so that N connections force N instances.
    """

    name: str
    size: ContainerSize = SMALL
    generation: str = "gen1"
    max_instances: int = 100
    concurrency: int = 1

    def __post_init__(self) -> None:
        if self.generation not in ("gen1", "gen2"):
            raise CloudError(f"unknown execution environment: {self.generation!r}")
        if not 1 <= self.max_instances <= 1000:
            raise CloudError(
                f"max_instances must be in [1, 1000], got {self.max_instances!r}"
            )
        if self.concurrency < 1:
            raise CloudError(f"concurrency must be >= 1, got {self.concurrency!r}")


@dataclass
class Service:
    """A deployed service and its orchestrator-side runtime state."""

    config: ServiceConfig
    account_id: str
    image_id: str
    #: Hosts recruited by the load balancer for this service (helper hosts).
    helper_host_ids: list[str] = field(default_factory=list)
    #: (wall_time, concurrent_instances) peaks, for the demand history.
    demand_events: list[tuple[float, int]] = field(default_factory=list)

    @property
    def qualified_name(self) -> str:
        """Globally unique service identifier."""
        return f"{self.account_id}/{self.config.name}"
