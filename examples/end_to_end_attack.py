#!/usr/bin/env python3
"""The complete kill chain, short of extraction.

1. The attacker primes six services hot and spreads across the datacenter.
2. A victim deploys a login API; the attacker drives traffic to it (its
   interface is public) so instances spin up.
3. The covert channel verifies which attacker instances share hosts with
   victim instances.
4. One co-located attacker instance then *watches*: it samples CPU
   contention and detects exactly when the victim serves requests — the
   hand-off point to a microarchitectural extraction attack (out of scope
   here, as in the paper).

Run:  python examples/end_to_end_attack.py
"""

from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import optimized_launch
from repro.core.detect import ActivityDetector, score_detection
from repro.experiments.base import default_env


def main() -> None:
    env = default_env("us-east1", seed=77)
    attacker = env.attacker
    victim = env.victim("account-2")

    print("[1] attacker primes its services across the datacenter...")
    campaign = ColocationCampaign(
        attacker=attacker,
        victim=victim,
        strategy=lambda c: optimized_launch(c),
    )
    print("[2] victim's login API scales up; [3] covert channel verifies...")
    result = campaign.run(n_victim_instances=100, victim_service_name="login")
    print(f"    coverage: {100 * result.coverage:.1f}% "
          f"({result.shared_hosts} shared hosts)")

    # Pick one attacker instance verified to share a host with a victim.
    cluster_of = result.verification.cluster_index()
    victim_clusters = {
        cluster_of[h.instance_id]
        for cluster in result.verification.clusters
        for h in cluster
        if h.instance_id.startswith("account-2/")
    }
    spy = next(
        h
        for cluster in result.verification.clusters
        for h in cluster
        if h.instance_id.startswith("account-1/")
        and h.alive
        and cluster_of[h.instance_id] in victim_clusters
    )
    print(f"[4] monitoring from co-located instance {spy.instance_id[:28]}...")

    # The victim's day: three request bursts with quiet gaps.
    detector = ActivityDetector(spy, cadence_s=0.05, min_consecutive=3)
    bursts = []
    timelines = []
    for burst in range(3):
        start = env.clock.now()
        for _ in range(300):
            victim.invoke("login", processing_seconds=1.5)
        bursts.append((start, env.clock.now() + 1.5))
        timelines.append(detector.monitor(duration_s=1.0))
        env.clock.sleep(30.0)  # quiet gap (victims stay connected)
        timelines.append(detector.monitor(duration_s=1.0))

    merged = timelines[0]
    for timeline in timelines[1:]:
        merged.samples.extend(timeline.samples)
        merged.episodes.extend(timeline.episodes)
    precision, recall = score_detection(merged, bursts)
    print(f"    detected {len(merged.episodes)} activity episodes over 3 bursts")
    print(f"    detection precision {100 * precision:.0f}%, "
          f"recall {100 * recall:.0f}%")
    print("    -> the attacker knows where the victim runs and when;"
          " extraction would start here.")


if __name__ == "__main__":
    main()
