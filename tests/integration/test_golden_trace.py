"""Golden-trace regression tests.

The deterministic JSONL export of each scenario in
:mod:`tests.golden.scenarios` is pinned byte-for-byte against a
checked-in golden file.  A diff here means the *shape* of the
instrumented execution changed — new/renamed spans, different phase
structure, changed simulated timing — which is either a regression or an
intentional change that must be re-blessed:

    REPRO_BLESS=1 python -m pytest tests/integration/test_golden_trace.py

(then review and commit the rewritten ``tests/golden/*.jsonl``).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.telemetry import span_lines
from tests.golden import scenarios

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "golden"


def _text(telemetry) -> str:
    return "\n".join(span_lines(telemetry)) + "\n"


@pytest.mark.parametrize("name", sorted(scenarios.SCENARIOS))
def test_trace_matches_golden(name):
    text = _text(scenarios.SCENARIOS[name]())
    golden = GOLDEN_DIR / f"{name}.jsonl"
    if os.environ.get("REPRO_BLESS"):
        golden.write_text(text, encoding="utf-8")
        pytest.skip(f"blessed {golden.name}")
    assert golden.exists(), (
        f"missing golden {golden}; generate it with REPRO_BLESS=1"
    )
    assert text == golden.read_text(encoding="utf-8")


@pytest.mark.parametrize("name", sorted(scenarios.SCENARIOS))
def test_pooled_run_traces_identically_to_serial(name):
    builder = scenarios.SCENARIOS[name]
    assert _text(builder(parallelism=2)) == _text(builder(parallelism=0))


def test_warm_cache_trace_matches_cold(tmp_path):
    cold = _text(scenarios.attack_trace(cache=True, cache_dir=tmp_path))
    warm = _text(scenarios.attack_trace(cache=True, cache_dir=tmp_path))
    assert warm == cold


def test_attack_trace_reconstructs_full_phase_tree():
    names = {
        json.loads(line)["name"]
        for line in _text(scenarios.attack_trace()).splitlines()
    }
    for expected in (
        "experiment",
        "cell",
        "campaign",
        "campaign.attacker_launch",
        "orchestrator.launch",
        "campaign.victim_scale",
        "campaign.fingerprint",
        "campaign.verification",
        "verify",
        "verify.wave",
        "ctest.batch",
    ):
        assert expected in names, f"span {expected!r} missing from attack trace"


def test_faulted_trace_records_recovery_spans():
    telemetry = scenarios.faulted_verification_trace()
    names = [span.name for span in telemetry.records()]
    assert "verify.false_negative_hunt" in names
    counters = telemetry.metrics.counters
    assert counters.get("faults.cell_errors", 0) > 0
    assert counters.get("runner.cell_retries", 0) > 0
    # The fault mirrors are exhaustive: spliced cell metrics carry the
    # worker-side injections back to the parent handle.
    assert counters.get("faults.launch_errors", 0) > 0
