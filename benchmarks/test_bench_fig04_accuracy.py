"""Figure 4: Gen 1 fingerprint accuracy vs. rounding precision.

Paper: FMI is low at fine precisions, ~0.9999 for p_boot in [0.1 s, 1 s],
and degrades at coarse precisions; 14 of 15 runs are perfect at 1 s.
"""

from repro.experiments import fingerprint_accuracy as fa
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = fa.AccuracyConfig(repetitions=2)  # paper: 5 reps x 3 DCs; we run 2 x 3


def test_fig04_accuracy_sweep(benchmark, emit, runner):
    result = run_once(benchmark, lambda: fa.run(CONFIG, runner=runner))

    emit(
        format_series(
            "Figure 4 — fingerprint accuracy vs p_boot (mean over runs)",
            ("p_boot_s", "FMI", "precision", "recall"),
            [
                (p.p_boot, p.fmi_mean, p.precision_mean, p.recall_mean)
                for p in result.points
            ],
        )
    )

    sweet = [result.point(0.1), result.point(1.0)]
    assert all(p.fmi_mean > 0.995 for p in sweet), "sweet spot must be near-perfect"

    fine = result.point(1e-4)
    assert fine.recall_mean < 0.6, "fine rounding must produce false negatives"
    assert fine.precision_mean > 0.99, "fine rounding must not collide hosts"

    coarse = result.point(1e3)
    assert coarse.precision_mean < 0.99, "coarse rounding must collide hosts"
    assert coarse.recall_mean > 0.99, "coarse rounding has no false negatives"

    # Paper: 14/15 runs perfect at 1 s; require a clear majority here.
    assert result.perfect_runs_at_1s >= len(result.run_fmis_at_1s) - 1
