"""Unit tests for the event scheduler."""

from repro.simtime.clock import SimClock
from repro.simtime.scheduler import EventScheduler


class TestEventScheduler:
    def test_event_fires_when_time_reached(self, clock):
        sched = EventScheduler(clock)
        fired = []
        sched.call_after(10.0, lambda: fired.append("x"))
        clock.sleep(9.9)
        assert fired == []
        clock.sleep(0.2)
        assert fired == ["x"]

    def test_event_at_exact_time_fires(self, clock):
        sched = EventScheduler(clock)
        fired = []
        sched.call_at(clock.now() + 5.0, lambda: fired.append(1))
        clock.sleep(5.0)
        assert fired == [1]

    def test_events_fire_in_timestamp_order(self, clock):
        sched = EventScheduler(clock)
        order = []
        sched.call_after(20.0, lambda: order.append("late"))
        sched.call_after(10.0, lambda: order.append("early"))
        clock.sleep(30.0)
        assert order == ["early", "late"]

    def test_same_time_events_fire_in_registration_order(self, clock):
        sched = EventScheduler(clock)
        order = []
        sched.call_after(5.0, lambda: order.append("first"))
        sched.call_after(5.0, lambda: order.append("second"))
        clock.sleep(5.0)
        assert order == ["first", "second"]

    def test_cancelled_event_does_not_fire(self, clock):
        sched = EventScheduler(clock)
        fired = []
        event = sched.call_after(1.0, lambda: fired.append("x"))
        event.cancel()
        clock.sleep(2.0)
        assert fired == []

    def test_past_event_fires_on_next_tick(self, clock):
        sched = EventScheduler(clock)
        fired = []
        sched.call_at(clock.now() - 100.0, lambda: fired.append("x"))
        assert fired == []
        clock.sleep(0.001)
        assert fired == ["x"]

    def test_pending_counts_only_uncancelled(self, clock):
        sched = EventScheduler(clock)
        sched.call_after(1.0, lambda: None)
        event = sched.call_after(2.0, lambda: None)
        event.cancel()
        assert sched.pending() == 1

    def test_event_scheduled_during_callback_fires_later(self, clock):
        sched = EventScheduler(clock)
        fired = []

        def reschedule():
            fired.append("a")
            sched.call_after(10.0, lambda: fired.append("b"))

        sched.call_after(5.0, reschedule)
        clock.sleep(5.0)
        assert fired == ["a"]
        clock.sleep(10.0)
        assert fired == ["a", "b"]

    def test_detach_stops_observing(self, clock):
        sched = EventScheduler(clock)
        fired = []
        sched.call_after(1.0, lambda: fired.append("x"))
        sched.detach()
        clock.sleep(5.0)
        assert fired == []

    def test_multiple_schedulers_on_one_clock(self, clock):
        s1, s2 = EventScheduler(clock), EventScheduler(clock)
        fired = []
        s1.call_after(1.0, lambda: fired.append("s1"))
        s2.call_after(1.0, lambda: fired.append("s2"))
        clock.sleep(1.0)
        assert sorted(fired) == ["s1", "s2"]


class TestSchedulerStress:
    def test_many_interleaved_events(self, clock):
        """Hundreds of events across interleaved advances all fire once,
        in order."""
        sched = EventScheduler(clock)
        fired = []
        import random

        rnd = random.Random(5)
        delays = sorted(rnd.uniform(0, 1000) for _ in range(300))
        for i, delay in enumerate(delays):
            sched.call_after(delay, lambda i=i: fired.append(i))
        while clock.now() < SimClock().now() + 1001:
            clock.sleep(rnd.uniform(0, 37))
        assert fired == sorted(fired)
        assert len(fired) == 300

    def test_cancel_is_idempotent(self, clock):
        sched = EventScheduler(clock)
        event = sched.call_after(5.0, lambda: None)
        event.cancel()
        event.cancel()
        assert sched.pending() == 0

    def test_cancel_after_fire_is_noop(self, clock):
        sched = EventScheduler(clock)
        fired = []
        event = sched.call_after(1.0, lambda: fired.append("x"))
        clock.sleep(2.0)
        assert fired == ["x"]
        event.cancel()  # must not corrupt the dead-entry accounting
        assert sched.pending() == 0
        sched.call_after(1.0, lambda: fired.append("y"))
        assert sched.pending() == 1
        clock.sleep(2.0)
        assert fired == ["x", "y"]

    def test_mass_cancel_compacts_queue(self, clock):
        """Cancelling most of a large queue rebuilds the heap instead of
        letting dead entries accumulate until their timestamps pass."""
        sched = EventScheduler(clock)
        keep = [sched.call_after(1e6 + i, lambda: None) for i in range(100)]
        doomed = [sched.call_after(2e6 + i, lambda: None) for i in range(900)]
        for event in doomed:
            event.cancel()
        # Far-future events never popped, yet the queue shrank in place.
        assert len(sched._queue) <= 200
        assert sched.pending() == len(keep)

    def test_small_queues_skip_compaction(self, clock):
        """Below the dead-entry floor the heap is left alone (no rebuild
        churn for tiny queues)."""
        sched = EventScheduler(clock)
        events = [sched.call_after(1e6 + i, lambda: None) for i in range(20)]
        for event in events[:15]:
            event.cancel()
        assert len(sched._queue) == 20  # >50% dead but under the floor
        assert sched.pending() == 5

    def test_cancelled_events_dropped_on_pop(self, clock):
        sched = EventScheduler(clock)
        fired = []
        live = sched.call_after(10.0, lambda: fired.append("live"))
        dead = sched.call_after(5.0, lambda: fired.append("dead"))
        dead.cancel()
        clock.sleep(20.0)
        assert fired == ["live"]
        assert live._fired
        assert sched.pending() == 0
        assert sched._queue == []

    def test_pending_exact_through_mixed_churn(self, clock):
        import random

        rnd = random.Random(7)
        sched = EventScheduler(clock)
        events = [sched.call_after(rnd.uniform(0, 500), lambda: None)
                  for _ in range(200)]
        cancelled = set(rnd.sample(range(200), 80))
        for i in cancelled:
            events[i].cancel()
        assert sched.pending() == 120
        clock.sleep(250.0)
        expected = sum(
            1 for i, e in enumerate(events)
            if i not in cancelled and not e._fired
        )
        assert sched.pending() == expected
        clock.sleep(300.0)
        assert sched.pending() == 0

    def test_cancel_half_fire_half(self, clock):
        sched = EventScheduler(clock)
        fired = []
        events = [
            sched.call_after(float(i + 1), lambda i=i: fired.append(i))
            for i in range(20)
        ]
        for event in events[::2]:
            event.cancel()
        clock.sleep(30.0)
        assert sorted(fired) == list(range(1, 20, 2))
