"""Ablation: the group-testing threshold ``m`` (DESIGN.md §5).

With contention threshold ``m``, chunks hold up to ``2m - 1`` instances, so
larger ``m`` verifies each fingerprint group in fewer, bigger tests — at
the price of needing ``m`` co-located pressurers to light up at all.
"""

from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once


def verify_with_m(threshold_m: int):
    env = default_env("us-east1", seed=950)
    client = env.attacker
    service = client.deploy(ServiceConfig(name="ablate-m", max_instances=800))
    handles = client.connect(service, 800)
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
    report = ScalableVerifier(RngCovertChannel(), threshold_m=threshold_m).verify(tagged)
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    from repro.analysis.metrics import pair_confusion

    confusion = pair_confusion(report.cluster_index(), truth)
    return report, confusion


def test_ablation_threshold_m(benchmark, emit):
    results = run_once(
        benchmark, lambda: {m: verify_with_m(m) for m in (2, 3, 4)}
    )

    emit(
        format_comparison(
            "Ablation — group-testing threshold m (800 instances)",
            [
                ComparisonRow(
                    f"m={m}: tests / batches / FMI",
                    "-",
                    f"{report.n_tests} / {report.n_batches} / {confusion.fmi:.4f}",
                )
                for m, (report, confusion) in sorted(results.items())
            ],
        )
    )

    for m, (report, confusion) in results.items():
        assert confusion.fmi > 0.999, f"m={m} must stay exact"
    # Bigger chunks -> fewer tests.
    assert results[4][0].n_tests < results[2][0].n_tests
    assert results[3][0].n_tests <= results[2][0].n_tests
