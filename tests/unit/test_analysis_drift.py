"""Unit tests for drift fitting and expiration estimation."""

import math

import numpy as np
import pytest

from repro.analysis.drift import DriftFit, estimate_expiration_time, fit_boot_time_drift


class TestFitDrift:
    def test_fits_perfect_line(self):
        times = np.linspace(0, 1000, 20)
        boots = 500.0 + 2e-6 * times
        fit = fit_boot_time_drift(times, boots)
        assert fit.slope == pytest.approx(2e-6, rel=1e-6)
        assert fit.intercept == pytest.approx(500.0, abs=1e-6)
        assert abs(fit.r_value) == pytest.approx(1.0)

    def test_fits_negative_slope(self):
        times = np.linspace(0, 1000, 20)
        boots = 500.0 - 3e-6 * times
        fit = fit_boot_time_drift(times, boots)
        assert fit.slope == pytest.approx(-3e-6, rel=1e-6)

    def test_noisy_fit_still_strongly_linear(self, rng):
        """Paper: minimum |r| across all histories was 0.9997."""
        times = np.linspace(0, 7 * 86400, 168)
        boots = 100.0 + 1.5e-6 * times + rng.normal(0, 0.001, size=times.size)
        fit = fit_boot_time_drift(times, boots)
        assert abs(fit.r_value) > 0.999

    def test_constant_history_r_treated_as_one(self):
        times = np.linspace(0, 100, 10)
        boots = np.full(10, 42.0)
        fit = fit_boot_time_drift(times, boots)
        assert fit.slope == pytest.approx(0.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_boot_time_drift([1, 2], [1, 2, 3])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            fit_boot_time_drift([1, 2], [1, 2])

    def test_boot_time_at(self):
        fit = DriftFit(slope=2.0, intercept=10.0, r_value=1.0)
        assert fit.boot_time_at(5.0) == 20.0


class TestExpiration:
    def test_positive_drift_expires_at_upper_boundary(self):
        # Boot time 100.2 drifting +1e-6 s/s with p=1: boundary at 100.5.
        fit = DriftFit(slope=1e-6, intercept=100.2, r_value=1.0)
        expiration = estimate_expiration_time(fit, at_wall_time=0.0, p_boot=1.0)
        assert expiration == pytest.approx(0.3 / 1e-6)

    def test_negative_drift_expires_at_lower_boundary(self):
        fit = DriftFit(slope=-1e-6, intercept=100.2, r_value=1.0)
        expiration = estimate_expiration_time(fit, at_wall_time=0.0, p_boot=1.0)
        assert expiration == pytest.approx(0.7 / 1e-6)

    def test_zero_drift_never_expires(self):
        fit = DriftFit(slope=0.0, intercept=100.0, r_value=1.0)
        assert estimate_expiration_time(fit, 0.0, 1.0) == math.inf

    def test_larger_precision_lives_longer(self):
        fit = DriftFit(slope=1e-6, intercept=100.1, r_value=1.0)
        fine = estimate_expiration_time(fit, 0.0, 0.1)
        coarse = estimate_expiration_time(fit, 0.0, 10.0)
        assert coarse > fine

    def test_evaluated_at_later_time(self):
        fit = DriftFit(slope=1e-6, intercept=100.2, r_value=1.0)
        early = estimate_expiration_time(fit, 0.0, 1.0)
        later = estimate_expiration_time(fit, 1000.0, 1.0)
        assert later == pytest.approx(early - 1000.0, rel=1e-6)

    def test_invalid_precision_rejected(self):
        fit = DriftFit(slope=1e-6, intercept=0.0, r_value=1.0)
        with pytest.raises(ValueError):
            estimate_expiration_time(fit, 0.0, 0.0)

    def test_faster_drift_expires_sooner(self):
        slow = DriftFit(slope=1e-7, intercept=100.2, r_value=1.0)
        fast = DriftFit(slope=1e-5, intercept=100.2, r_value=1.0)
        assert estimate_expiration_time(fast, 0.0, 1.0) < estimate_expiration_time(
            slow, 0.0, 1.0
        )
