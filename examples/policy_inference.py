#!/usr/bin/env python3
"""Quantitative black-box policy inference (extension of §5.1).

The paper's Experiments 1-4 reverse engineer Cloud Run *qualitatively*.
This example closes the loop quantitatively: it measures the orchestrator
from the outside and prints the inferred policy parameters next to the
simulator's true values — the kind of model an attacker needs to plan
launch schedules without further probing.

Run:  python examples/policy_inference.py
"""

from repro import units
from repro.analysis.policy_inference import (
    estimate_base_set_size,
    estimate_hot_window,
    estimate_recruit_rate,
    fit_idle_policy,
)
from repro.cloud.topology import region_profile
from repro.experiments import idle_termination, launch_behavior


def main() -> None:
    true = region_profile("us-east1")

    print("fitting the idle-termination policy (one 800-instance launch)...")
    idle_curve = idle_termination.run(
        idle_termination.IdleTerminationConfig(seed=81)
    )
    idle = fit_idle_policy(idle_curve.series, total_instances=800)
    print(f"  grace:    inferred {idle.grace_s / 60:.1f} min"
          f"  (true {true.idle_grace / 60:.0f} min)")
    print(f"  deadline: inferred {idle.deadline_s / 60:.1f} min"
          f"  (true {true.idle_deadline / 60:.0f} min)")

    print("estimating the base-host-set size (three cold launches)...")
    cold = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(launches=3, seed=82)
    )
    base_size = estimate_base_set_size(cold.per_launch)
    print(f"  base hosts: inferred {base_size}  (true {true.shard_size})")

    print("bracketing the hot window (interval sweep)...")
    sweep = launch_behavior.run_interval_sweep(
        launch_behavior.IntervalSweepConfig(
            intervals_minutes=(2.0, 10.0, 20.0, 30.0, 45.0), seed=83
        )
    )
    growth = {interval: series.growth for interval, series in sweep.items()}
    window = estimate_hot_window(growth)
    print(f"  hot window: inferred ~{window:.0f} min"
          f"  (true {true.hot_window / 60:.0f} min)")

    print("estimating the helper recruitment rate (hot launch series)...")
    hot = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(interval=10 * units.MINUTE, seed=84)
    )
    rate = estimate_recruit_rate(
        hot.per_launch,
        instances_per_launch=800,
        interval_s=10 * units.MINUTE,
        idle_policy=idle,
    )
    print(f"  recruit rate: inferred {rate:.3f} helpers/new instance"
          f"  (true {true.helper_recruit_fraction:.3f})")


if __name__ == "__main__":
    main()
