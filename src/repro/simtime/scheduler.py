"""A simple event scheduler driven by :class:`~repro.simtime.clock.SimClock`.

The FaaS orchestrator uses this to schedule deferred work such as idle
instance termination: events registered for time ``t`` fire as soon as the
clock advances to or past ``t``, in timestamp order.

Cancelled events are compacted lazily: a cancelled entry is dropped when it
reaches the top of the heap, and when more than half the heap is dead the
whole queue is rebuilt.  Long campaigns cancel thousands of keep-alive and
idle-timer events, so without compaction the heap grows without bound.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.simtime.clock import SimClock
from repro.telemetry import current_telemetry

#: Dead entries tolerated before compaction is even considered; keeps tiny
#: queues from re-heapifying constantly.
_COMPACT_MIN_DEAD = 64


class SequenceCounter:
    """A picklable ``itertools.count`` stand-in.

    ``itertools.count`` objects cannot be pickled, which would exclude the
    scheduler (and anything holding one, e.g. the orchestrator) from
    world snapshots (:mod:`repro.runner.worldcache`).  This counter
    exposes the same ``next(...)`` protocol with its position as plain
    state, so a restored world resumes numbering exactly where the
    snapshot left off.
    """

    __slots__ = ("value",)

    def __init__(self, start: int = 0) -> None:
        self.value = int(start)

    def __next__(self) -> int:
        value = self.value
        self.value += 1
        return value

    def __iter__(self) -> "SequenceCounter":
        return self

    def __getstate__(self) -> int:
        return self.value

    def __setstate__(self, state: int) -> None:
        self.value = state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SequenceCounter({self.value})"


@dataclass(order=True)
class ScheduledEvent:
    """An event queued for execution at a future simulated time.

    Events are ordered by ``(when, sequence)`` so that events scheduled for
    the same instant fire in registration order.
    """

    when: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    _fired: bool = field(default=False, compare=False, repr=False)
    _owner: Optional["EventScheduler"] = field(
        default=None, compare=False, repr=False
    )

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if it already fired)."""
        if self.cancelled or self._fired:
            return
        self.cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()


class EventScheduler:
    """Fires callbacks as simulated time passes.

    The scheduler attaches itself to the clock's tick hooks, so any
    ``clock.sleep(...)`` automatically drains the events that became due.

    Examples
    --------
    >>> clock = SimClock()
    >>> sched = EventScheduler(clock)
    >>> fired = []
    >>> _ = sched.call_at(clock.now() + 10.0, lambda: fired.append("a"))
    >>> clock.sleep(5.0); fired
    []
    >>> clock.sleep(5.0); fired
    ['a']
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._queue: list[ScheduledEvent] = []
        self._counter = SequenceCounter()
        self._dead = 0
        clock.add_tick_hook(self._on_tick)

    def call_at(self, when: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run at absolute simulated time ``when``.

        Events scheduled in the past fire on the next clock advancement.
        Returns the event so callers may :meth:`~ScheduledEvent.cancel` it.
        """
        event = ScheduledEvent(
            when=float(when),
            sequence=next(self._counter),
            action=action,
            _owner=self,
        )
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        return self.call_at(self._clock.now() + delay, action)

    def pending(self) -> int:
        """Return the number of events still waiting to fire (O(1))."""
        return len(self._queue) - self._dead

    def _note_cancelled(self) -> None:
        """Count one newly cancelled queued event; compact if >50% dead."""
        self._dead += 1
        current_telemetry().count("simtime.events_cancelled")
        if self._dead >= _COMPACT_MIN_DEAD and self._dead * 2 > len(self._queue):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries."""
        self._queue = [event for event in self._queue if not event.cancelled]
        heapq.heapify(self._queue)
        self._dead = 0
        current_telemetry().count("simtime.compactions")

    def _on_tick(self, now: float) -> None:
        fired = 0
        while self._queue and self._queue[0].when <= now:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                self._dead -= 1
                continue
            event._fired = True
            fired += 1
            event.action()
        if fired:
            current_telemetry().count("simtime.events_fired", fired)

    def detach(self) -> None:
        """Stop observing the clock (used when tearing down a simulation)."""
        self._clock.remove_tick_hook(self._on_tick)
