"""Warm-world snapshot benchmark: fork a built region vs rebuild it.

Drives a channel-matrix-shaped 16-cell grid (4 covert channels x 2
platform personalities x 2 repetitions) where every cell needs the same
kind of expensive world: a 16x-scaled ``test-region1`` fleet with a
1000-tenant background population warmed to steady state.  Cells
sharing a platform share one world (repetitions vary the cell's own
service deployments, so their results still differ).  Two ways:

* ``fresh`` — the pre-snapshot behavior: every cell rebuilds its world
  from scratch (datacenter columns, 1000 service deploys, the full
  warmup drive);
* ``warm`` — :class:`repro.runner.WorldCache`: the first cell per
  distinct (platform, seed) world builds and checkpoints it, every
  sibling forks the pickled snapshot.

Cell *work* (fingerprint + channel verification + oracle scoring) is
identical in both modes, and the per-cell result digests are asserted
byte-identical — forking must never change an answer.

A second, informational section times one figure-family sweep (4
channels, one world) at the 64x fleet tier.

Run::

    PYTHONPATH=src python benchmarks/bench_world.py --out BENCH_world.json

Exit status is non-zero if the warm path misses the 3x speedup floor on
the 16-cell grid, or if any forked cell's value diverges from its fresh
twin.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import pickle
import sys
import time

from repro import units
from repro.analysis.metrics import pair_confusion
from repro.cloud.platform import platform_profile
from repro.cloud.services import ServiceConfig
from repro.cloud.topology import REGION_PROFILES
from repro.cloud.traffic import TrafficConfig
from repro.core.covert import covert_channel_for
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import SimulationEnv, default_env
from repro.runner import EnvSpec, WorldCache

CHANNELS = ("rng", "bus", "llc", "dvfs")
PLATFORMS = ("default", "aws_lambda_like")
REPETITIONS = 2
N_TENANTS = 1000
WARMUP_S = 3 * units.HOUR
BASE_SEED = 9200
SPEEDUP_FLOOR = 3.0


def scaled_profile(factor: int):
    base = REGION_PROFILES["test-region1"]
    return dataclasses.replace(
        base,
        name=f"bench-world-{factor}x",
        n_hosts=base.n_hosts * factor,
        active_hosts=base.active_hosts * factor,
        shard_size=base.shard_size * factor,
    )


def traffic_config(seed: int) -> TrafficConfig:
    return TrafficConfig(
        n_tenants=N_TENANTS,
        seed=seed + 1_000_003,
        duration_s=WARMUP_S + 30 * units.MINUTE,
    )


def world_spec(factor: int, platform: str, seed: int) -> EnvSpec:
    return EnvSpec(
        seed=seed,
        profile=scaled_profile(factor),
        platform=platform_profile(platform),
        background=traffic_config(seed),
    )


def build_world(factor: int, platform: str, seed: int) -> SimulationEnv:
    """The expensive part: build the region and warm the population."""
    env = default_env(
        profile=scaled_profile(factor),
        seed=seed,
        platform=platform_profile(platform),
        background=traffic_config(seed),
    )
    env.clock.sleep(WARMUP_S)
    return env


def cell_work(env: SimulationEnv, channel_kind: str, rep: int) -> dict:
    """Channel-matrix cell body: fingerprint, verify, oracle-score.

    ``rep`` varies the deployed service names, so repetition cells draw
    different placements from the shared world and produce distinct
    results — each still byte-reproducible fresh vs forked.
    """
    platform = env.datacenter.platform
    attacker = env.attacker
    handles = []
    for index in range(2):
        name = attacker.deploy(ServiceConfig(name=f"bench-{rep}-{index}"))
        handles.extend(attacker.connect(name, 4))
    handles = [handle for handle in handles if handle.alive]
    if platform.instance_id_exposure == "gen2":
        tagged = [
            TaggedInstance(handle, fingerprint)
            for handle, fingerprint in fingerprint_gen2_instances(handles)
            if handle.alive
        ]
        no_false_negatives = True
    else:
        tagged = [
            TaggedInstance(handle, fingerprint, fingerprint.cpu_model)
            for handle, fingerprint in fingerprint_gen1_instances(
                handles, p_boot=1.0
            )
            if handle.alive
        ]
        no_false_negatives = False
    verifier = ScalableVerifier(
        covert_channel_for(channel_kind),
        assume_no_false_negatives=no_false_negatives,
    )
    report = verifier.verify(tagged)
    predicted = report.cluster_index()
    truth = {
        instance_id: env.orchestrator.true_host_of(instance_id)
        for instance_id in predicted
    }
    confusion = pair_confusion(predicted, truth)
    return {
        "channel": channel_kind,
        "fmi": confusion.fmi,
        "n_tests": report.n_tests,
        "busy_seconds": report.busy_seconds,
    }


def grid_cells() -> list[tuple[str, str, int]]:
    """(channel, platform, rep) triples, channel-major like the driver."""
    return [
        (channel, platform, rep)
        for channel in CHANNELS
        for platform in PLATFORMS
        for rep in range(REPETITIONS)
    ]


def digest(value: dict) -> str:
    return hashlib.sha256(pickle.dumps(value)).hexdigest()


def run_fresh(factor: int) -> tuple[float, list[str]]:
    start = time.perf_counter()
    digests = []
    for channel, platform, rep in grid_cells():
        env = build_world(factor, platform, BASE_SEED)
        digests.append(digest(cell_work(env, channel, rep)))
    return time.perf_counter() - start, digests


def run_warm(factor: int) -> tuple[float, list[str], WorldCache]:
    cache = WorldCache(maxsize=len(PLATFORMS))
    start = time.perf_counter()
    digests = []
    for channel, platform, rep in grid_cells():
        env = cache.build_or_fork(
            world_spec(factor, platform, BASE_SEED),
            lambda p=platform: build_world(factor, p, BASE_SEED),
        )
        digests.append(digest(cell_work(env, channel, rep)))
    return time.perf_counter() - start, digests, cache


def run() -> dict:
    results: dict = {
        "grid": {
            "channels": list(CHANNELS),
            "platforms": list(PLATFORMS),
            "repetitions": REPETITIONS,
            "n_tenants": N_TENANTS,
            "warmup_s": WARMUP_S,
        },
    }

    factor = 16
    fresh_t, fresh_digests = run_fresh(factor)
    warm_t, warm_digests, cache = run_warm(factor)
    results["16x"] = {
        "n_hosts": scaled_profile(factor).n_hosts,
        "cells": len(fresh_digests),
        "fresh_s": round(fresh_t, 6),
        "warm_s": round(warm_t, 6),
        "speedup": round(fresh_t / warm_t, 3),
        "worldcache_builds": cache.misses,
        "worldcache_forks": cache.hits,
        "identical": fresh_digests == warm_digests,
    }
    print(
        f" 16x ({results['16x']['n_hosts']} hosts, {N_TENANTS} tenants): "
        f"fresh {fresh_t:.3f}s, warm {warm_t:.3f}s "
        f"({cache.misses} builds + {cache.hits} forks), "
        f"{results['16x']['speedup']}x, "
        f"identical={results['16x']['identical']}"
    )

    # Informational 64x tier: one figure family (4 channels, one world).
    factor = 64
    start = time.perf_counter()
    family_fresh = [
        digest(
            cell_work(build_world(factor, "default", BASE_SEED), channel, 0)
        )
        for channel in CHANNELS
    ]
    fresh_t = time.perf_counter() - start
    cache = WorldCache(maxsize=1)
    start = time.perf_counter()
    family_warm = [
        digest(
            cell_work(
                cache.build_or_fork(
                    world_spec(factor, "default", BASE_SEED),
                    lambda: build_world(factor, "default", BASE_SEED),
                ),
                channel,
                0,
            )
        )
        for channel in CHANNELS
    ]
    warm_t = time.perf_counter() - start
    results["64x_family"] = {
        "n_hosts": scaled_profile(factor).n_hosts,
        "cells": len(CHANNELS),
        "fresh_s": round(fresh_t, 6),
        "warm_s": round(warm_t, 6),
        "speedup": round(fresh_t / warm_t, 3),
        "identical": family_fresh == family_warm,
    }
    print(
        f" 64x ({results['64x_family']['n_hosts']} hosts) figure family: "
        f"fresh {fresh_t:.3f}s, warm {warm_t:.3f}s, "
        f"{results['64x_family']['speedup']}x, "
        f"identical={results['64x_family']['identical']}"
    )
    return results


def check(results: dict) -> list[str]:
    failures = []
    grid = results["16x"]
    if not grid["identical"]:
        failures.append("forked 16x cells diverge from fresh-built twins")
    if grid["speedup"] < SPEEDUP_FLOOR:
        failures.append(
            f"16x warm-world speedup {grid['speedup']}x is below the "
            f"{SPEEDUP_FLOOR}x floor"
        )
    if not results["64x_family"]["identical"]:
        failures.append("forked 64x family cells diverge from fresh twins")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_world.json", help="output path")
    args = parser.parse_args(argv)
    results = run()
    failures = check(results)
    results["pass"] = not failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
