"""Shared fixtures: small simulated environments that keep tests fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud.topology import AccountPlacementPlan, RegionProfile
from repro.experiments.base import SimulationEnv, default_env
from repro.hardware.cpu import cpu_catalog
from repro.hardware.host import PhysicalHost
from repro.hardware.tsc import TimestampCounter
from repro.simtime.clock import SIM_EPOCH, SimClock


@pytest.fixture(autouse=True)
def _isolated_cell_cache(tmp_path, monkeypatch):
    """Keep every test's runner cache inside its own tmp directory.

    Without this, CLI/driver tests invoked with caching enabled would read
    and write ``~/.cache/repro-runner`` on the developer's machine.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cell-cache"))


@pytest.fixture(autouse=True)
def _isolated_world_cache():
    """Drop the per-process warm-world cache around every test.

    Warm worlds are content-addressed, so carryover would be *correct*,
    but hit/miss counters leaking between tests would make assertions
    order-dependent.
    """
    from repro.runner import reset_process_world_cache

    reset_process_world_cache()
    yield
    reset_process_world_cache()


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def clock() -> SimClock:
    """A fresh simulated clock at the default epoch."""
    return SimClock()


def make_host(
    host_id: str = "host-test",
    boot_age_s: float = 10 * 86400.0,
    epsilon_hz: float = 1000.0,
    now: float = SIM_EPOCH,
    model_index: int = 0,
) -> PhysicalHost:
    """Build one physical host with controlled TSC parameters."""
    cpu = cpu_catalog()[model_index]
    return PhysicalHost(
        host_id=host_id,
        cpu=cpu,
        tsc=TimestampCounter(
            boot_time=now - boot_age_s,
            actual_frequency_hz=cpu.reported_tsc_frequency_hz - epsilon_hz,
        ),
    )


@pytest.fixture
def host() -> PhysicalHost:
    """A single host booted 10 days ago with a 1 kHz frequency error."""
    return make_host()


def tiny_profile(**overrides) -> RegionProfile:
    """A very small region profile for fast tests."""
    defaults = dict(
        name="tiny",
        n_hosts=30,
        active_hosts=20,
        shard_size=5,
        helper_recruit_fraction=0.25,
        helper_pool_cap=12,
        hot_min_concurrency=8,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    )
    defaults.update(overrides)
    return RegionProfile(**defaults)


@pytest.fixture
def tiny_env() -> SimulationEnv:
    """A complete simulated region small enough for unit tests."""
    return default_env(profile=tiny_profile(), seed=42)


@pytest.fixture
def tiny_env_factory():
    """Factory for tiny environments with custom seeds/profile overrides."""

    def build(
        seed: int = 42,
        fault_plan=None,
        retry_policy=None,
        **profile_overrides,
    ) -> SimulationEnv:
        return default_env(
            profile=tiny_profile(**profile_overrides),
            seed=seed,
            fault_plan=fault_plan,
            retry_policy=retry_policy,
        )

    return build
