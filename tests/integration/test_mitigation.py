"""Integration tests for the §6 mitigation: TSC emulation/virtualization.

When the platform masks both the TSC value and its frequency, the Gen 1
boot-time fingerprint and the Gen 2 refined-frequency fingerprint stop
identifying hosts — and fingerprint-guided attacks lose their advantage.
"""

from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.experiments.base import default_env
from repro.sandbox.base import TscPolicy

from tests.conftest import tiny_profile


def mitigated_env(seed=21):
    return default_env(profile=tiny_profile(), seed=seed, tsc_policy=TscPolicy.EMULATED)


class TestGen1Mitigation:
    def test_fingerprints_no_longer_identify_hosts(self):
        env = mitigated_env()
        client = env.attacker
        name = client.deploy(ServiceConfig(name="mit1"))
        handles = client.connect(name, 20)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        orch = env.orchestrator
        # Under emulation every sandbox sees a virtual counter started at
        # its own boot, so the derived "boot time" is the launch time —
        # identical for all instances regardless of host.  Fingerprints
        # carry no host information: distinct hosts collapse together.
        hosts = {orch.true_host_of(h.instance_id) for h, _fp in pairs}
        assert len(hosts) > 2
        boot_buckets = {fp.boot_bucket for _h, fp in pairs}
        assert len(boot_buckets) <= 2  # everyone "booted" at launch time
        # And the derived boot time is nowhere near any true host boot.
        for host_id in hosts:
            host = env.datacenter.host(host_id)
            for _h, fp in pairs:
                assert abs(fp.boot_time - host.boot_time) > 86400.0

    def test_derived_boot_times_cluster_at_launch_time(self):
        env = mitigated_env()
        client = env.attacker
        name = client.deploy(ServiceConfig(name="mit2"))
        t_launch = client.now()
        handles = client.connect(name, 10)
        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        for _handle, fp in pairs:
            assert abs(fp.boot_time - t_launch) < 300.0


class TestGen2Mitigation:
    def test_refined_frequency_masked(self):
        env = mitigated_env()
        client = env.attacker
        name = client.deploy(ServiceConfig(name="mit3", generation="gen2"))
        handles = client.connect(name, 20)
        pairs = fingerprint_gen2_instances(handles)
        # Every guest reads a *reported* frequency, so fingerprints carry
        # no per-host deviation: the number of distinct values collapses to
        # the number of distinct nominal frequencies.
        values = {fp.tsc_khz for _h, fp in pairs}
        reported = {
            round(env.datacenter.host(env.orchestrator.true_host_of(h.instance_id))
                  .cpu.reported_tsc_frequency_hz / 1e3)
            for h in handles
        }
        assert values <= reported

    def test_mitigated_fingerprint_lacks_discrimination(self):
        """On unmitigated hosts, hosts with the same CPU model usually get
        distinct refined frequencies; under mitigation they all collapse."""
        env = mitigated_env()
        client = env.attacker
        name = client.deploy(ServiceConfig(name="mit4", generation="gen2"))
        handles = client.connect(name, 20)
        orch = env.orchestrator
        pairs = fingerprint_gen2_instances(handles)
        by_model: dict = {}
        for handle, fp in pairs:
            model = env.datacenter.host(orch.true_host_of(handle.instance_id)).cpu.name
            by_model.setdefault(model, set()).add(fp)
        # One fingerprint per model: zero per-host information.
        assert all(len(fps) == 1 for fps in by_model.values())
