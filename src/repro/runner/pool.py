"""Fan experiment cells out across worker processes, with cell caching.

:func:`run_cells` is the shared entry point every multi-cell experiment
driver routes through.  The default (``parallelism=0``) executes cells
serially in-process — exactly the behavior the drivers had before the
runner existed, preserving determinism and debuggability (breakpoints,
tracebacks, profilers all see one process).  With ``parallelism=N`` the
uncached cells are submitted to a ``ProcessPoolExecutor`` of ``N`` workers;
because every cell derives all randomness from its own seed, pooled and
serial runs produce byte-identical results.

Failure discipline: a raising cell never takes its siblings down.  Each
cell's exception is captured as a structured :class:`CellResult` error,
completed cells are written to the cache *as they finish* (not in a batch
at the end), failed cells are retried up to ``RunnerConfig.max_retries``
times, and only then does the run either raise a
:class:`~repro.errors.CellExecutionError` naming the failed cells
(default) or — with ``isolate_errors=True`` — return the error results
in-line for the caller to triage.

An attached :class:`~repro.faults.FaultPlan` injects deterministic cell
failures (and, through the ambient fault context, launch/CTest faults
inside the cell's own simulation).  Fault-injected runs bypass the cache
entirely: their values are not clean results and must never collide with
a fault-free run's cache keys.

Per-cell timing, cache-hit, retry, and error counters accumulate on the
:class:`RunnerConfig`'s :class:`RunStats`, so callers (the CLI, the
benchmark harness) can report the achieved speedup and observed faults.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as wait_futures
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import CellExecutionError
from repro.faults import FaultPlan, fault_context
from repro.runner.cache import CellCache
from repro.runner.cellspec import CellResult, CellSpec


@dataclass
class RunStats:
    """Aggregated counters for one runner's cell executions."""

    cells: int = 0
    cache_hits: int = 0
    computed_seconds: float = 0.0
    saved_seconds: float = 0.0
    wall_seconds: float = 0.0
    parallelism: int = 0
    cell_retries: int = 0
    cell_errors: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cells restored from the cache."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        text = (
            f"{self.cells} cells, {self.cache_hits} cache hits "
            f"({100.0 * self.hit_rate:.0f}%), computed "
            f"{self.computed_seconds:.1f}s, saved ~{self.saved_seconds:.1f}s, "
            f"wall {self.wall_seconds:.1f}s, jobs {self.parallelism}"
        )
        if self.cell_errors or self.cell_retries:
            text += (
                f", {self.cell_errors} cell errors, "
                f"{self.cell_retries} cell retries"
            )
        return text


@dataclass
class RunnerConfig:
    """How an experiment's cells should be executed.

    The default is the conservative library behavior: serial, in-process,
    no cache — indistinguishable from calling the cell functions directly.
    The CLI and benchmark harness opt into workers and caching explicitly.

    Attributes
    ----------
    parallelism:
        0 runs cells serially in-process; ``N >= 1`` fans uncached cells
        out to ``N`` worker processes.
    cache_read:
        Restore completed cells from the on-disk cache.
    cache_write:
        Store newly computed cells.  ``--no-cache`` maps to
        ``cache_read=False, cache_write=True``: bypass reads, still write.
    cache_dir:
        Cache location override (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-runner``).
    fault_plan:
        Optional deterministic fault schedule (``--faults`` on the CLI):
        injects cell failures and is activated as the ambient plan around
        each cell execution.  An *enabled* plan disables the cache for
        the run — faulted values must never poison clean cache entries.
    max_retries:
        How many times a failed cell is re-executed before its error is
        kept (0 disables retrying).  The fault plan keys its decision on
        the attempt number, so retries deterministically escape injected
        transients.
    isolate_errors:
        When True, cells that still fail after retries are returned as
        structured error results; when False (default), ``run_cells``
        raises :class:`~repro.errors.CellExecutionError` naming them —
        after every completed sibling has been computed and cached.
    stats:
        Mutable accumulator shared across every ``run_cells`` call made
        with this config.
    """

    parallelism: int = 0
    cache_read: bool = False
    cache_write: bool = False
    cache_dir: str | Path | None = None
    fault_plan: FaultPlan | None = None
    max_retries: int = 1
    isolate_errors: bool = False
    stats: RunStats = field(default_factory=RunStats)

    @classmethod
    def from_cli(
        cls, jobs: int = 0, no_cache: bool = False,
        cache_dir: str | Path | None = None,
        fault_plan: FaultPlan | None = None,
        max_retries: int | None = None,
    ) -> "RunnerConfig":
        """The CLI mapping: caching on by default, ``--no-cache`` skips reads."""
        return cls(
            parallelism=jobs,
            cache_read=not no_cache,
            cache_write=True,
            cache_dir=cache_dir,
            fault_plan=fault_plan,
            max_retries=max_retries if max_retries is not None else 1,
        )


def _execute_cell(
    spec: CellSpec,
    fault_plan: FaultPlan | None = None,
    attempt: int = 0,
) -> CellResult:
    """Run one cell and time it (top-level so worker processes can load it).

    Exceptions from the cell function are captured into the result's
    ``error`` field rather than propagated, so one bad cell cannot abort
    a whole pooled run.  The fault plan (if any) is consulted for an
    injected failure and activated as the ambient plan so the cell's own
    simulation picks up launch/CTest faults.
    """
    start = time.perf_counter()
    value, error = None, None
    try:
        if fault_plan is not None and fault_plan.cell_fails(spec.key(), attempt):
            raise CellExecutionError(
                f"injected fault (attempt {attempt})"
            )
        with fault_context(fault_plan):
            value = spec.fn(spec.config, spec.seed)
    except Exception as exc:  # noqa: BLE001 - isolation is the point
        error = f"{spec.label or spec.experiment}: {type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - start
    return CellResult(
        experiment=spec.experiment,
        seed=spec.seed,
        label=spec.label,
        key=spec.key(),
        value=value,
        elapsed_s=elapsed,
        error=error,
    )


def run_cells(
    specs: Sequence[CellSpec], runner: RunnerConfig | None = None
) -> list[CellResult]:
    """Execute every cell, reusing cached results, in spec order.

    Cache reads and writes happen in the parent process only, so worker
    processes never contend on the cache directory; writes happen as each
    cell completes, so siblings of a failing cell are never lost.
    """
    if runner is None:
        runner = RunnerConfig()
    specs = list(specs)
    wall_start = time.perf_counter()
    stats = runner.stats
    plan = runner.fault_plan
    faulted = plan is not None and plan.enabled
    # Fault-injected values are resilience-drill output, not clean
    # results: never read them from or write them to the shared cache.
    cache = (
        CellCache(runner.cache_dir)
        if (not faulted and (runner.cache_read or runner.cache_write))
        else None
    )

    results: list[CellResult | None] = [None] * len(specs)
    misses: list[tuple[int, CellSpec]] = []
    for index, spec in enumerate(specs):
        key = spec.key()
        if cache is not None and runner.cache_read:
            hit, value, stored_elapsed = cache.get(key)
            if hit:
                results[index] = CellResult(
                    experiment=spec.experiment,
                    seed=spec.seed,
                    label=spec.label,
                    key=key,
                    value=value,
                    elapsed_s=stored_elapsed,
                    cached=True,
                )
                continue
        misses.append((index, spec))

    def finish(index: int, result: CellResult) -> None:
        results[index] = result
        if cache is not None and runner.cache_write and result.error is None:
            cache.put(result.key, result.value, result.elapsed_s)

    if misses and runner.parallelism >= 1:
        with ProcessPoolExecutor(max_workers=runner.parallelism) as pool:
            pending = {
                pool.submit(_execute_cell, spec, plan, 0): (index, spec, 0)
                for index, spec in misses
            }
            while pending:
                done, _ = wait_futures(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    index, spec, attempt = pending.pop(future)
                    result = future.result()
                    if result.error is not None and attempt < runner.max_retries:
                        stats.cell_retries += 1
                        retry = pool.submit(_execute_cell, spec, plan, attempt + 1)
                        pending[retry] = (index, spec, attempt + 1)
                    else:
                        finish(index, result)
    elif misses:
        for index, spec in misses:
            for attempt in range(runner.max_retries + 1):
                result = _execute_cell(spec, plan, attempt)
                if result.error is None or attempt == runner.max_retries:
                    break
                stats.cell_retries += 1
            finish(index, result)

    stats.parallelism = runner.parallelism
    stats.wall_seconds += time.perf_counter() - wall_start
    failed: list[CellResult] = []
    for result in results:
        stats.cells += 1
        if result.cached:
            stats.cache_hits += 1
            stats.saved_seconds += result.elapsed_s
        else:
            stats.computed_seconds += result.elapsed_s
        if result.error is not None:
            failed.append(result)
    stats.cell_errors += len(failed)

    if failed and not runner.isolate_errors:
        labels = ", ".join(r.label or r.experiment for r in failed)
        raise CellExecutionError(
            f"{len(failed)} of {len(specs)} cells failed after "
            f"{runner.max_retries} retries [{labels}]; first error: "
            f"{failed[0].error}"
        )
    return results
