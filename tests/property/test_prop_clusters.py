"""Property-based tests for the disjoint-set structure."""

from hypothesis import given, strategies as st

from repro.core.clusters import DisjointSet

items = st.integers(min_value=0, max_value=30)
unions = st.lists(st.tuples(items, items), max_size=60)


@given(unions)
def test_clusters_partition_items(pairs):
    ds = DisjointSet(range(31))
    for a, b in pairs:
        ds.union(a, b)
    clusters = ds.clusters()
    flat = [i for c in clusters for i in c]
    assert sorted(flat) == list(range(31))


@given(unions)
def test_union_is_reflexive_symmetric_transitive(pairs):
    ds = DisjointSet(range(31))
    for a, b in pairs:
        ds.union(a, b)
    for a, b in pairs:
        assert ds.same(a, b)
        assert ds.same(b, a)
    for item in range(31):
        assert ds.same(item, item)


@given(unions, unions)
def test_union_order_does_not_matter(first, second):
    ds1 = DisjointSet(range(31))
    for a, b in first + second:
        ds1.union(a, b)
    ds2 = DisjointSet(range(31))
    for a, b in second + first:
        ds2.union(a, b)
    sig1 = {frozenset(c) for c in ds1.clusters()}
    sig2 = {frozenset(c) for c in ds2.clusters()}
    assert sig1 == sig2


@given(unions)
def test_cluster_count_decreases_with_unions(pairs):
    ds = DisjointSet(range(31))
    previous = len(ds.clusters())
    for a, b in pairs:
        ds.union(a, b)
        current = len(ds.clusters())
        assert current <= previous
        previous = current
