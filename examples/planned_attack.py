#!/usr/bin/env python3
"""The full loop: infer the policy, plan the attack, execute, compare.

1. Infer the placement policy from cheap black-box probes
   (examples/policy_inference.py shows the details).
2. Feed the estimates to the analytic planner and ask for the cheapest
   schedule reaching a target footprint.
3. Execute the planned schedule and compare prediction vs. reality.

Run:  python examples/planned_attack.py
"""

from repro import units
from repro.analysis.policy_inference import (
    estimate_base_set_size,
    estimate_recruit_rate,
    fit_idle_policy,
)
from repro.core.attack.planner import AttackPlanner, PolicyModel
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env
from repro.experiments import idle_termination, launch_behavior


def infer_policy() -> PolicyModel:
    print("[1/3] inferring the placement policy black-box...")
    idle_curve = idle_termination.run(idle_termination.IdleTerminationConfig(seed=91))
    idle = fit_idle_policy(idle_curve.series, total_instances=800)
    cold = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(launches=2, seed=92)
    )
    base = estimate_base_set_size(cold.per_launch)
    hot = launch_behavior.run_launch_series(
        launch_behavior.LaunchSeriesConfig(interval=10 * units.MINUTE, seed=93)
    )
    rate = estimate_recruit_rate(
        hot.per_launch, instances_per_launch=800,
        interval_s=10 * units.MINUTE, idle_policy=idle,
    )
    print(f"  base={base} hosts, idle=[{idle.grace_s / 60:.1f}, "
          f"{idle.deadline_s / 60:.1f}] min, recruit rate={rate:.3f}")
    return PolicyModel(
        base_set_size=base,
        idle=idle,
        hot_window_s=30 * units.MINUTE,  # bracketed by the interval sweep
        recruit_rate=rate,
        helper_pool_cap=250,
        candidate_pool_size=225,
    )


def main() -> None:
    policy = infer_policy()
    planner = AttackPlanner(policy)

    print("[2/3] planning the cheapest schedule reaching 280 hosts...")
    prediction = planner.plan(target_hosts=280)
    s = prediction.schedule
    print(f"  plan: {s.n_services} services x {s.launches} launches x "
          f"{s.instances_per_service} instances @ {s.interval_s / 60:.0f} min")
    print(f"  predicted: {prediction.expected_hosts:.0f} hosts, "
          f"${prediction.cost_usd:.2f}, {prediction.duration_s / 60:.0f} min")

    print("[3/3] executing the planned schedule...")
    env = default_env("us-east1", seed=94)
    outcome = optimized_launch(
        env.attacker,
        n_services=s.n_services,
        launches=s.launches,
        instances_per_service=s.instances_per_service,
        interval_s=s.interval_s,
    )
    print(f"  measured:  {len(outcome.apparent_hosts)} hosts, "
          f"${outcome.cost_usd:.2f}")
    error = abs(len(outcome.apparent_hosts) - prediction.expected_hosts)
    print(f"  prediction error: {error:.0f} hosts "
          f"({100 * error / len(outcome.apparent_hosts):.1f}%)")


if __name__ == "__main__":
    main()
