"""The n-way covert-channel test primitive ``CTest`` (paper §4.3).

``CTest(i_1, ..., i_n) -> (b_1, ..., b_n)`` instructs all *n* instances to
simultaneously pressure a shared host resource and returns, per instance,
whether it observed contention above a threshold ``m``.  With each instance
contributing one unit of pressure, an instance tests positive only when at
least ``m`` pressurers (itself included) share its host — so ``m..2m-1``
positive instances in one test are *guaranteed* to share a single host.

The concrete channel here contends on the hardware random number generator,
chosen by the paper for its <1% background-contention rate.  A positive
verdict requires contention in at least ``required_rounds`` of
``total_rounds`` observations (the paper uses 30 of 60), which suppresses
both background false positives and scheduling false negatives.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.cloud.api import InstanceHandle
from repro.errors import VerificationError


@dataclass(frozen=True)
class CTestResult:
    """Outcome of one n-way covert-channel test."""

    handles: tuple[InstanceHandle, ...]
    positive: tuple[bool, ...]

    @property
    def positive_handles(self) -> tuple[InstanceHandle, ...]:
        """The instances that observed contention above the threshold."""
        return tuple(h for h, p in zip(self.handles, self.positive) if p)

    @property
    def n_positive(self) -> int:
        """Number of positive instances."""
        return sum(self.positive)


@dataclass
class ChannelStats:
    """Cost accounting for covert-channel usage."""

    n_tests: int = 0
    n_instance_slots: int = 0
    busy_seconds: float = 0.0
    batches: int = 0
    per_batch_tests: list[int] = field(default_factory=list)

    def record_batch(self, group_sizes: Sequence[int], seconds: float) -> None:
        """Record one (possibly parallel) batch of tests."""
        self.n_tests += len(group_sizes)
        self.n_instance_slots += sum(group_sizes)
        self.busy_seconds += seconds
        self.batches += 1
        self.per_batch_tests.append(len(group_sizes))


class CovertChannel(abc.ABC):
    """Abstract CTest provider."""

    def __init__(self) -> None:
        self.stats = ChannelStats()

    @abc.abstractmethod
    def ctest_batch(
        self,
        groups: Sequence[Sequence[InstanceHandle]],
        threshold_m: int | Sequence[int],
    ) -> list[CTestResult]:
        """Run several CTests *concurrently* and return one result each.

        ``threshold_m`` may be a single threshold for every group or one
        per group (the threshold is an analysis parameter of each test,
        paper §4.3).  Concurrent groups interfere if they share hosts; the
        caller is responsible for only batching groups that are guaranteed
        disjoint (e.g. different CPU models, or Gen 2 fingerprints, which
        cannot produce false negatives).
        """

    def ctest(
        self, handles: Sequence[InstanceHandle], threshold_m: int = 2
    ) -> CTestResult:
        """Run a single CTest over ``handles``."""
        return self.ctest_batch([handles], threshold_m)[0]


class RngCovertChannel(CovertChannel):
    """CTest over hardware-RNG contention (the paper's channel).

    Parameters
    ----------
    total_rounds / required_rounds:
        An instance is positive when at least ``required_rounds`` of its
        ``total_rounds`` observations show contention >= the threshold.
        The paper requires 30 of 60; with sub-1% background contention the
        resulting false-positive risk is negligible.
    seconds_per_test:
        Wall-clock duration of one test window (all rounds); concurrent
        groups in a batch share the window.
    """

    def __init__(
        self,
        total_rounds: int = 60,
        required_rounds: int = 30,
        seconds_per_test: float = 1.2,
    ) -> None:
        super().__init__()
        if not 0 < required_rounds <= total_rounds:
            raise VerificationError(
                f"required_rounds must be in (0, total_rounds], got "
                f"{required_rounds}/{total_rounds}"
            )
        self.total_rounds = total_rounds
        self.required_rounds = required_rounds
        self.seconds_per_test = seconds_per_test

    # Resource hooks; subclasses pick a different shared resource.
    @staticmethod
    def _start(sandbox) -> None:
        sandbox.start_rng_pressure()

    @staticmethod
    def _observe(sandbox) -> int:
        return sandbox.observe_rng_contention()

    @staticmethod
    def _stop(sandbox) -> None:
        sandbox.stop_rng_pressure()

    def ctest_batch(
        self,
        groups: Sequence[Sequence[InstanceHandle]],
        threshold_m: int | Sequence[int],
    ) -> list[CTestResult]:
        if isinstance(threshold_m, int):
            thresholds = [threshold_m] * len(groups)
        else:
            thresholds = list(threshold_m)
            if len(thresholds) != len(groups):
                raise VerificationError(
                    f"got {len(thresholds)} thresholds for {len(groups)} groups"
                )
        if any(t < 2 for t in thresholds):
            raise VerificationError(f"thresholds must be >= 2, got {thresholds}")
        flat: list[InstanceHandle] = [h for group in groups for h in group]
        if len({h.instance_id for h in flat}) != len(flat):
            raise VerificationError("an instance appears twice in one CTest batch")
        threshold_of = {
            h.instance_id: t for group, t in zip(groups, thresholds) for h in group
        }

        for handle in flat:
            handle.run(self._start)
        try:
            hits = {handle.instance_id: 0 for handle in flat}
            for _ in range(self.total_rounds):
                for handle in flat:
                    level = handle.run(self._observe)
                    if level >= threshold_of[handle.instance_id]:
                        hits[handle.instance_id] += 1
            # The test window occupies wall time *while* the pressure is
            # on — which is exactly what a platform-side abuse monitor
            # gets to observe.
            if flat:
                flat[0].run(lambda sandbox: sandbox.sleep(self.seconds_per_test))
        finally:
            for handle in flat:
                handle.run(self._stop)

        self.stats.record_batch([len(g) for g in groups], self.seconds_per_test)

        results = []
        for group in groups:
            positive = tuple(
                hits[h.instance_id] >= self.required_rounds for h in group
            )
            results.append(CTestResult(handles=tuple(group), positive=positive))
        return results


class MemoryBusCovertChannel(RngCovertChannel):
    """CTest over memory-bus contention (the prior-work channel).

    Varadarajan et al. verified VM co-location through the memory-bus
    contention channel of Wu et al.  It works, but ordinary tenants
    exercise the bus constantly, so background contention is common and a
    test must either integrate longer or accept false positives — one of
    the reasons the paper builds its methodology on the rarely-used RNG
    instead.  The default window matches the several-seconds-per-test
    figure the paper quotes for this channel.
    """

    def __init__(
        self,
        total_rounds: int = 60,
        required_rounds: int = 42,
        seconds_per_test: float = 4.0,
    ) -> None:
        super().__init__(
            total_rounds=total_rounds,
            required_rounds=required_rounds,
            seconds_per_test=seconds_per_test,
        )

    @staticmethod
    def _start(sandbox) -> None:
        sandbox.start_bus_pressure()

    @staticmethod
    def _observe(sandbox) -> int:
        return sandbox.observe_bus_contention()

    @staticmethod
    def _stop(sandbox) -> None:
        sandbox.stop_bus_pressure()
