"""Unit tests for the CPU model catalog."""

import pytest

from repro import units
from repro.hardware.cpu import CPUModel, DEFAULT_CPU_CATALOG, cpu_catalog


class TestCPUModel:
    def test_reported_frequency_equals_base(self):
        model = CPUModel("Intel Xeon CPU @ 2.00GHz", 2.0 * units.GHZ)
        assert model.reported_tsc_frequency_hz == 2.0e9

    @pytest.mark.parametrize(
        ("name", "expected"),
        [
            ("Intel Xeon CPU @ 2.00GHz", 2.0e9),
            ("Intel Xeon CPU @ 2.20GHz", 2.2e9),
            ("AMD EPYC 7B12 @ 2.25GHz", 2.25e9),
            ("weird model @ 3.1 GHz", 3.1e9),
            ("lowercase @ 2.5ghz", 2.5e9),
        ],
    )
    def test_parse_frequency_from_name(self, name, expected):
        assert CPUModel.parse_frequency_from_name(name) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "name", ["Mystery CPU", "Intel Xeon", "CPU 2.0", ""]
    )
    def test_parse_frequency_missing_returns_none(self, name):
        assert CPUModel.parse_frequency_from_name(name) is None

    def test_models_are_hashable_and_frozen(self):
        model = cpu_catalog()[0]
        assert model in {model}
        with pytest.raises(AttributeError):
            model.name = "other"


class TestCatalog:
    def test_catalog_nonempty(self):
        assert len(cpu_catalog()) >= 4

    def test_catalog_weights_positive(self):
        assert all(weight > 0 for _m, weight in DEFAULT_CPU_CATALOG)

    def test_catalog_names_unique(self):
        names = [m.name for m in cpu_catalog()]
        assert len(names) == len(set(names))

    def test_catalog_names_parse_to_their_base_frequency(self):
        """The reported-frequency method relies on the labeled frequency."""
        for model in cpu_catalog():
            parsed = CPUModel.parse_frequency_from_name(model.name)
            assert parsed == pytest.approx(model.base_frequency_hz)

    def test_catalog_has_frequency_diversity(self):
        """Gen 2 collisions stay low only with diverse nominal frequencies."""
        frequencies = {m.base_frequency_hz for m in cpu_catalog()}
        assert len(frequencies) >= 8
