"""Integration tests running every experiment driver at reduced scale.

These don't assert the paper's exact numbers (the benchmarks do that at
full scale); they assert each driver's qualitative result holds and its
output is well-formed.
"""


import pytest

from repro.experiments import (
    attack_cost,
    census,
    coverage,
    expiration,
    fingerprint_accuracy,
    frequency_noise,
    gen2_accuracy,
    helper_episodes,
    idle_termination,
    launch_behavior,
    verification_cost,
)


class TestFig4Accuracy:
    @pytest.fixture(scope="class")
    def result(self):
        config = fingerprint_accuracy.AccuracyConfig(
            regions=("us-east1",),
            repetitions=1,
            instances=200,
            p_boot_grid=(1e-3, 1e-1, 1.0, 1e3),
            ground_truth="covert",
        )
        return fingerprint_accuracy.run(config)

    def test_sweet_spot_near_perfect(self, result):
        assert result.point(1.0).fmi_mean > 0.99

    def test_fine_precision_hurts_recall(self, result):
        assert result.point(1e-3).recall_mean < result.point(1.0).recall_mean

    def test_coarse_precision_hurts_precision(self, result):
        assert result.point(1e3).precision_mean < result.point(1.0).precision_mean

    def test_run_fmis_recorded(self, result):
        assert len(result.run_fmis_at_1s) == 1


class TestGen2Accuracy:
    def test_recall_perfect_precision_imperfect(self):
        config = gen2_accuracy.Gen2AccuracyConfig(
            regions=("us-east1",), repetitions=1, instances=300, ground_truth="covert"
        )
        result = gen2_accuracy.run(config)
        assert result.recall_mean == 1.0
        assert result.precision_mean < 1.0
        assert result.hosts_per_fingerprint_mean > 1.0


class TestFig5Expiration:
    def test_linear_drift_and_day_scale_expiry(self):
        config = expiration.ExpirationConfig(
            regions=("us-east1",), n_launch=60, duration_days=2.0, cadence_hours=4.0
        )
        result = expiration.run(config)
        region = result.regions[0]
        assert region.n_histories >= 30
        assert region.min_abs_r > 0.999
        assert 0.05 < region.days_to_10pct_expired < 30
        cdf = region.cdf((1.0, 3.0, 7.0))
        assert all(a <= b for a, b in zip(cdf, cdf[1:]))


class TestFig6Idle:
    def test_grace_then_gradual_decay(self):
        result = idle_termination.run(
            idle_termination.IdleTerminationConfig(instances=150)
        )
        assert result.remaining_after(1.9) == 150
        assert 0 < result.remaining_after(7.0) < 150
        assert result.remaining_after(12.5) == 0

    def test_termination_times_within_documented_bound(self):
        result = idle_termination.run(
            idle_termination.IdleTerminationConfig(instances=100)
        )
        assert len(result.termination_times_min) == 100
        assert max(result.termination_times_min) <= 15.0


class TestLaunchBehavior:
    def test_exp1_distribution(self):
        result = launch_behavior.run_distribution(
            launch_behavior.DistributionConfig(instances=400, ground_truth="covert")
        )
        # 400 instances over 75 base hosts: 5-6 each.
        assert result.n_hosts == 75
        assert result.max_per_host - result.min_per_host <= 1

    def test_fig7_flat_cumulative(self):
        result = launch_behavior.run_launch_series(
            launch_behavior.LaunchSeriesConfig(launches=3, instances=150)
        )
        assert result.growth <= 3

    def test_fig8_steps_at_account_changes(self):
        result = launch_behavior.run_launch_series(
            launch_behavior.LaunchSeriesConfig(
                launches=4,
                instances=150,
                account_pattern=(1, 1, 2, 2),
            )
        )
        jumps = result.growth_at_account_changes()
        assert len(jumps) == 1
        assert jumps[0] > 30  # a new account's base hosts appear at once

    def test_fig9_short_interval_growth(self):
        result = launch_behavior.run_launch_series(
            launch_behavior.LaunchSeriesConfig(
                launches=4, instances=400, interval=600.0
            )
        )
        assert result.growth > 20

    def test_interval_sweep_ordering(self):
        results = launch_behavior.run_interval_sweep(
            launch_behavior.IntervalSweepConfig(
                intervals_minutes=(2.0, 10.0, 45.0), launches=3, instances=300
            )
        )
        assert results[45.0].growth <= results[2.0].growth < results[10.0].growth


class TestFig10Episodes:
    def test_overlapping_helper_sets(self):
        result = helper_episodes.run(
            helper_episodes.EpisodesConfig(
                episodes=3, launches_per_episode=3, instances=300
            )
        )
        assert len(result.per_episode_helpers) == 3
        assert result.cumulative_helpers[-1] > result.cumulative_helpers[0]
        assert result.overlapping


class TestCoverage:
    def test_optimized_cell_oracle(self):
        cell = coverage.run_cell(
            coverage.CoverageConfig(
                region="us-west1",
                victim_account="account-2",
                repetitions=1,
                ground_truth="oracle",
            )
        )
        assert cell.mean > 0.9

    def test_naive_cell_zero_in_east(self):
        cell = coverage.run_cell(
            coverage.CoverageConfig(
                region="us-east1",
                victim_account="account-2",
                strategy="naive",
                repetitions=1,
                ground_truth="oracle",
            )
        )
        assert cell.mean == 0.0


class TestCensus:
    def test_census_flattens_and_bounds(self):
        summary = census.run(
            census.CensusConfig(
                regions=("us-west1",),
                services_per_account=2,
                launches_per_service=2,
                instances_per_launch=400,
            )
        )
        region = summary.regions[0]
        assert region.total_hosts > 100
        assert 0 < region.attacker_share <= 1.1


class TestFrequencyNoise:
    def test_problematic_fraction_near_10pct(self):
        result = frequency_noise.run(
            frequency_noise.FrequencyNoiseConfig(regions=("us-east1",), instances=400)
        )
        assert result.n_hosts >= 70
        assert 0.7 < result.quiet_fraction < 1.0
        assert 0.02 < result.problematic_fraction < 0.25


class TestVerificationCost:
    def test_scalable_beats_pairwise(self):
        result = verification_cost.run(
            verification_cost.VerificationCostConfig(instances=200, pairwise_sample=20)
        )
        assert result.scalable_tests < result.pairwise_tests_modeled / 50
        assert result.scalable_usd < result.pairwise_usd_modeled / 50
        assert result.sie_eliminated == 0
        assert result.speedup > 10


class TestAttackCost:
    def test_cost_scale(self):
        result = attack_cost.run(
            attack_cost.AttackCostConfig(
                regions=("us-east1",), repetitions=1, n_services=2, launches=3,
                instances=200,
            )
        )
        cost = result.mean_cost_usd["us-east1"]
        assert 0.1 < cost < 30.0

    def test_ablation_monotone_in_services(self):
        results = attack_cost.run_ablation(
            attack_cost.AblationConfig(
                services_grid=(1, 3), launches_grid=(3,), instances=200
            )
        )
        cost1, hosts1 = results[(1, 3)]
        cost3, hosts3 = results[(3, 3)]
        assert cost3 > cost1
        assert hosts3 >= hosts1


class TestSurveillance:
    def test_sustained_coverage_and_costs(self):
        from repro.experiments import surveillance as sv

        result = sv.run(sv.SurveillanceConfig(duration_hours=2.0))
        assert len(result.series) == 2
        assert result.min_coverage > 0.8
        assert result.setup_cost_usd > 0
        assert result.maintenance_cost_usd > 0
        # Victim fleet breathes with the diurnal load.
        counts = [n for _h, n, _c in result.series]
        assert max(counts) > min(counts)
