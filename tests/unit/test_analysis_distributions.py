"""Unit tests for distribution helpers."""

import numpy as np
import pytest

from repro.analysis.distributions import cdf_at, empirical_cdf, summarize


class TestEmpiricalCdf:
    def test_sorted_output(self):
        x, f = empirical_cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert list(f) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_single_sample(self):
        x, f = empirical_cdf([5.0])
        assert list(f) == [1.0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_cdf_at_points(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert cdf_at(values, [0.5, 2.0, 10.0]) == [0.0, 0.5, 1.0]

    def test_cdf_monotone(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        points = np.linspace(-3, 3, 20)
        evaluated = cdf_at(values, points)
        assert all(a <= b for a, b in zip(evaluated, evaluated[1:]))


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == 2.5

    def test_single_value_std_zero(self):
        assert summarize([7.0]).std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])
