"""Obtaining the TSC frequency inside a sandbox (paper §4.2).

Two methods:

1. **Reported frequency** — from ``cpuid`` leaf 0x15 if enumerated, else the
   base frequency labeled in the CPU model name.  Slightly wrong by a
   constant per-host error, which makes the derived boot time drift (the
   fingerprint "expires").

2. **Measured frequency** — read the TSC twice around a known wall-clock
   interval and divide.  Immune to drift, but the wall-clock interval can
   only be measured through noisy system calls; on ~10% of hosts the noise
   reaches 10 kHz - a few MHz, producing false negatives.  (The paper
   therefore uses the reported frequency.)

A third, related frequency surface backs the DVFS covert channel: the
*achieved sustained-load frequency* of the guest's own spin loop, which
steps down with co-located sustained loads
(:func:`sustained_load_frequency_hz`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FingerprintError
from repro.hardware.channels import DvfsFrequencyResource
from repro.hardware.cpu import CPUModel
from repro.sandbox.base import Sandbox


def reported_tsc_frequency(sandbox: Sandbox) -> float:
    """Return the reported TSC frequency, in Hz.

    Prefers ``cpuid``'s TSC leaf; falls back to the frequency labeled in
    the model name (Cloud Run hosts do not enumerate the leaf).

    Raises
    ------
    FingerprintError
        If neither source yields a frequency.
    """
    from_leaf = sandbox.cpuid_tsc_frequency()
    if from_leaf is not None:
        return from_leaf
    model = sandbox.cpuid_model()
    from_name = CPUModel.parse_frequency_from_name(model)
    if from_name is None:
        raise FingerprintError(
            f"CPU model {model!r} does not expose a reported TSC frequency"
        )
    return from_name


@dataclass(frozen=True)
class FrequencyEstimate:
    """Result of measuring the TSC frequency in-sandbox.

    Attributes
    ----------
    mean_hz / std_hz:
        Sample mean and standard deviation across repetitions.
    samples_hz:
        The individual per-repetition estimates.
    """

    mean_hz: float
    std_hz: float
    samples_hz: tuple[float, ...]

    @property
    def repetitions(self) -> int:
        """Number of repetitions used."""
        return len(self.samples_hz)


def measure_tsc_frequency(
    sandbox: Sandbox, interval_s: float = 0.1, repetitions: int = 10
) -> FrequencyEstimate:
    """Measure the actual TSC frequency over wall-clock intervals.

    Each repetition reads ``(T_w, tsc)`` pairs ``interval_s`` apart and
    estimates ``f = delta_tsc / delta_T_w``.  Wall-clock reads go through
    the sandbox's system-call layer, so the estimate inherits the host's
    timing noise — the effect the paper quantifies in §4.2.
    """
    if repetitions < 2:
        raise FingerprintError(f"need at least 2 repetitions, got {repetitions}")
    samples = []
    for _ in range(repetitions):
        t1 = sandbox.wall_clock()
        tsc1 = sandbox.rdtsc()
        sandbox.sleep(interval_s)
        t2 = sandbox.wall_clock()
        tsc2 = sandbox.rdtsc()
        if t2 <= t1:
            continue  # pathological jitter; skip the repetition
        samples.append((tsc2 - tsc1) / (t2 - t1))
    if len(samples) < 2:
        raise FingerprintError("timing noise destroyed every frequency sample")
    array = np.asarray(samples)
    return FrequencyEstimate(
        mean_hz=float(array.mean()),
        std_hz=float(array.std(ddof=1)),
        samples_hz=tuple(float(s) for s in samples),
    )


def sustained_load_frequency_hz(resource: DvfsFrequencyResource, level):
    """Achieved spin-loop frequency at a DVFS contention level.

    The guest-visible measurement of the DVFS channel: a calibrated spin
    loop's achieved frequency under the package power budget, stepping
    down with each co-located sustained load.  Pure post-hoc map over the
    shared contention-level draw (scalar or array), delegating to
    :meth:`~repro.hardware.channels.DvfsFrequencyResource.frequency_of_level`.
    """
    return resource.frequency_of_level(level)


def frequency_threshold_hz(resource: DvfsFrequencyResource, threshold_m: int) -> float:
    """Frequency below which a DVFS round counts as contended at ``m``.

    Because the level-to-frequency map is monotone decreasing, a frequency
    trace dipping below this value is exactly a contention level of at
    least ``threshold_m`` — the equivalence that lets the DVFS channel run
    the unchanged CTest verdict machinery.
    """
    return resource.frequency_of_level(threshold_m)
