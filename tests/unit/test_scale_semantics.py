"""Regression tests for the autoscale/idle-path bugfix sweep.

Pins the semantics the background-traffic engine leans on:

* scale-in always idles the *most recently created* instances, so the
  ACTIVE set is a creation-ordered prefix of the alive list;
* ``orchestrator.scale_in`` emits a telemetry span with the idled count;
* ``connect`` packs connections at the service's configured per-instance
  concurrency instead of assuming one connection per instance;
* ``Autoscaler.drive`` samples demand on the nominal slot grid and
  accounts for evaluations skipped by cold-start overruns instead of
  silently drifting its cadence.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.cloud.autoscaler import Autoscaler
from repro.cloud.instance import InstanceState
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import ConstantLoad
from repro.experiments.base import default_env
from repro.faults import FaultPlan, FaultSpec
from repro.telemetry import Telemetry, telemetry_context

from tests.conftest import tiny_profile


def deploy(env, account="account-1", **config):
    config.setdefault("max_instances", 100)
    return env.orchestrator.deploy_service(
        account, ServiceConfig(name="svc", **config)
    )


class TestScaleInOrdering:
    def test_scale_in_idles_most_recent_instances(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        created = orch.connect(service, 10)
        kept = orch.scale_to(service, 4)
        assert [i.instance_id for i in kept] == [
            i.instance_id for i in created[:4]
        ]
        idled = [i for i in created if i.state is InstanceState.IDLE]
        assert [i.instance_id for i in idled] == [
            i.instance_id for i in created[4:]
        ]

    def test_scale_out_reactivates_oldest_idles_first(self, tiny_env):
        orch = tiny_env.orchestrator
        service = deploy(tiny_env)
        created = orch.connect(service, 10)
        orch.scale_to(service, 3)
        active = orch.scale_to(service, 7)
        # 3 stayed active, idles 3..6 were reused in creation order.
        assert [i.instance_id for i in active] == [
            i.instance_id for i in created[:7]
        ]

    @settings(max_examples=25, deadline=None)
    @given(targets=st.lists(st.integers(0, 12), min_size=1, max_size=8))
    def test_active_set_is_always_a_creation_prefix(self, targets):
        env = default_env(profile=tiny_profile(), seed=42)
        orch = env.orchestrator
        service = deploy(env)
        for target in targets:
            returned = orch.scale_to(service, target, sleep_startup=False)
            alive = orch.alive_instances(service)
            prefix = alive[:target]
            assert [i.instance_id for i in returned] == [
                i.instance_id for i in prefix
            ]
            assert all(i.state is InstanceState.ACTIVE for i in prefix)
            assert all(
                i.state is InstanceState.IDLE for i in alive[target:]
            )


class TestScaleInSpan:
    def test_scale_in_emits_span_and_counter(self, tiny_env_factory):
        telemetry = Telemetry()
        with telemetry_context(telemetry):
            env = tiny_env_factory()
            orch = env.orchestrator
            service = deploy(env)
            orch.connect(service, 9)
            orch.scale_to(service, 2)
        spans = [
            s for s in telemetry.records() if s.name == "orchestrator.scale_in"
        ]
        assert len(spans) == 1
        assert spans[0].attrs["service"] == service.qualified_name
        assert spans[0].attrs["idled"] == 7
        assert telemetry.metrics.counter("orchestrator.scale_ins") == 1


class TestConnectConcurrency:
    def test_connect_packs_at_configured_concurrency(self, tiny_env):
        service = deploy(tiny_env, concurrency=8)
        instances = tiny_env.orchestrator.connect(service, 100)
        assert len(instances) == 13  # ceil(100 / 8)
        assert all(i.state is InstanceState.ACTIVE for i in instances)

    def test_connect_exact_multiple(self, tiny_env):
        service = deploy(tiny_env, concurrency=4)
        assert len(tiny_env.orchestrator.connect(service, 16)) == 4


class TestAutoscalerCadence:
    def test_points_sit_on_the_nominal_slot_grid(self, tiny_env):
        service = deploy(tiny_env)
        autoscaler = Autoscaler(tiny_env.orchestrator, service, evaluation_period_s=15.0)
        trace = autoscaler.drive(ConstantLoad(3), duration_s=60.0)
        assert [p.elapsed_s for p in trace.points] == [0.0, 15.0, 30.0, 45.0, 60.0]

    def test_overruns_count_missed_evaluations(self, tiny_env_factory):
        # Every launch pays a 45 s penalty; the first evaluation creates
        # 20 instances, so it overruns the 15 s cadence by dozens of
        # slots.  Those slots must be accounted, not silently resampled.
        plan = FaultPlan(FaultSpec(slow_launch_rate=1.0, slow_launch_seconds=45.0))
        telemetry = Telemetry()
        with telemetry_context(telemetry):
            env = tiny_env_factory(fault_plan=plan)
            service = deploy(env)
            autoscaler = Autoscaler(env.orchestrator, service, evaluation_period_s=15.0)
            trace = autoscaler.drive(ConstantLoad(20), duration_s=300.0)
        missed = telemetry.metrics.counter("autoscaler.missed_evaluations")
        assert missed > 0
        # Every recorded point still sits on the nominal grid, and the
        # recorded plus missed evaluations cover the whole schedule.
        assert all(p.elapsed_s % 15.0 == 0.0 for p in trace.points)
        assert len(trace.points) + missed == 300.0 / 15.0 + 1
