"""Command-line interface: regenerate paper experiments from a shell.

Examples::

    python -m repro list
    python -m repro run exp1
    python -m repro run fig9 --scale full
    python -m repro run all --scale quick
    python -m repro run fig4 --scale full --jobs 4
    python -m repro run fig12 --no-cache
    python -m repro run exp1 --faults "launch=0.1,cell=0.3,seed=7" --max-retries 3

Completed simulation cells are cached under ``$REPRO_CACHE_DIR`` (default
``~/.cache/repro-runner``), so re-running a command reuses them; ``--jobs N``
fans the remaining cells out over N worker processes.

``--faults SPEC`` runs the experiment under a seeded deterministic fault
schedule (launch errors/slow launches, CTest noise and mid-test deaths,
cell failures — see :mod:`repro.faults`); ``--max-retries`` bounds the
per-cell retry budget.  Fault-injected runs never touch the cell cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.errors import FaultSpecError
from repro.experiments.registry import EXPERIMENTS, run_experiment
from repro.faults import FaultPlan
from repro.runner import RunnerConfig


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Everywhere All at Once: Co-Location Attacks "
            "on Public Cloud FaaS' (ASPLOS 2024) on a simulated substrate."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help="experiment id from 'repro list', or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=("quick", "full"),
        default="quick",
        help="quick: reduced repetitions (seconds); full: benchmark scale",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=0,
        metavar="N",
        help="run simulation cells in N worker processes (0 = serial in-process)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reading the cell cache "
        "(fresh results are still written back)",
    )
    run.add_argument(
        "--faults",
        metavar="SPEC",
        default=None,
        help="inject deterministic platform faults, e.g. "
        "'launch=0.1,slow=0.05,ctest=0.02,death=0.01,cell=0.3,seed=7' "
        "(disables the cell cache for the run)",
    )
    run.add_argument(
        "--max-retries",
        type=int,
        default=None,
        metavar="N",
        help="retry budget for failed cells (default 1)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "list":
        width = max(len(eid) for eid in EXPERIMENTS)
        for eid, (description, _runner) in sorted(EXPERIMENTS.items()):
            print(f"{eid:<{width}}  {description}")
        return 0

    if args.command == "run":
        if args.jobs < 0:
            print("--jobs must be >= 0", file=sys.stderr)
            return 2
        if args.max_retries is not None and args.max_retries < 0:
            print("--max-retries must be >= 0", file=sys.stderr)
            return 2
        fault_plan = None
        if args.faults:
            try:
                fault_plan = FaultPlan.from_spec(args.faults)
            except FaultSpecError as error:
                print(f"--faults: {error}", file=sys.stderr)
                return 2
        ids = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        for eid in ids:
            runner = RunnerConfig.from_cli(
                jobs=args.jobs,
                no_cache=args.no_cache,
                fault_plan=fault_plan,
                max_retries=args.max_retries,
            )
            try:
                report = run_experiment(eid, scale=args.scale, runner=runner)
            except KeyError as error:
                print(error.args[0], file=sys.stderr)
                return 2
            print(report)
            if fault_plan is not None:
                # Counters are parent-side: exhaustive with --jobs 0; with
                # workers, injections inside cells stay in the workers and
                # the [runner] retry/error counters tell the story.
                print(f"[faults] spec '{args.faults}': {fault_plan.counters.summary()}")
            print()
        return 0

    return 2  # pragma: no cover - argparse enforces valid commands


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
