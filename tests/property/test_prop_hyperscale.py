"""Property-based equivalence for the hyperscale batched paths.

Every path PR 8 batched gets a Hypothesis property pinning it to its
scalar reference on arbitrary inputs:

* sparse service counts == a dense int64 column under any interleaving of
  scalar increments/decrements/batched ``add_at`` and any gather;
* :class:`FootprintAccumulator` == per-launch set algebra on arbitrary
  fingerprint streams;
* ``host_coverage`` (index-mask math) == the per-handle set loop on
  arbitrary fleets with dead and rotated-out instances;
* the placement fast path == the heap path at degenerate capacities
  (hosts already full, loads exactly at the capacity-margin boundary).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.analysis.aggregation import FootprintAccumulator, census_reduce_scalar
from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.cloud.services import ServiceConfig
from repro.experiments.base import default_env, host_coverage
from repro.fleet import FleetStore, SparseServiceCounts

from tests.conftest import tiny_profile

# ----------------------------------------------------------------------
# SparseServiceCounts == dense column
# ----------------------------------------------------------------------

N_HOSTS = 24

sparse_ops = st.lists(
    st.one_of(
        st.tuples(st.just("inc"), st.integers(0, N_HOSTS - 1)),
        st.tuples(st.just("dec"), st.integers(0, N_HOSTS - 1)),
        st.tuples(st.just("set"), st.integers(0, N_HOSTS - 1)),
        st.tuples(
            st.just("add_at"),
            st.lists(st.integers(0, N_HOSTS - 1), max_size=40),
        ),
    ),
    max_size=30,
)


@given(ops=sparse_ops, gather=st.lists(st.integers(0, N_HOSTS - 1), max_size=30))
def test_sparse_counts_match_dense_column(ops, gather):
    sparse = SparseServiceCounts(N_HOSTS)
    dense = np.zeros(N_HOSTS, dtype=np.int64)
    for op, arg in ops:
        if op == "inc":
            sparse.inc(arg)
            dense[arg] += 1
        elif op == "dec":
            sparse.dec(arg)
            if dense[arg] > 0:
                dense[arg] -= 1
        elif op == "set":
            sparse[arg] = 7
            dense[arg] = 7
        else:
            idx = np.asarray(arg, dtype=np.int64)
            sparse.add_at(idx)
            np.add.at(dense, idx, 1)
    assert sparse.tolist() == dense.tolist()
    assert sparse.sum() == int(dense.sum())
    wanted = np.asarray(gather, dtype=np.int64)
    assert sparse[wanted].tolist() == dense[wanted].tolist()
    for i in range(N_HOSTS):
        assert sparse[i] == int(dense[i])
    # The memory contract: entries only for hosts ever touched.
    assert sparse.touched <= N_HOSTS


@given(ops=sparse_ops)
def test_sparse_counts_copy_and_restore_round_trip(ops):
    sparse = SparseServiceCounts(N_HOSTS)
    for op, arg in ops:
        if op == "add_at":
            sparse.add_at(np.asarray(arg, dtype=np.int64))
        elif op == "inc":
            sparse.inc(arg)
        elif op == "dec":
            sparse.dec(arg)
        else:
            sparse[arg] = 7
    frozen = sparse.copy()
    baseline = sparse.tolist()
    sparse.inc(0)
    sparse.add_at(np.arange(N_HOSTS, dtype=np.int64))
    assert frozen.tolist() == baseline  # copies are isolated
    sparse.restore_from(frozen)
    assert sparse.tolist() == baseline


# ----------------------------------------------------------------------
# FootprintAccumulator == set algebra
# ----------------------------------------------------------------------


@given(
    launches=st.lists(
        st.lists(st.integers(0, 80), max_size=60), max_size=15
    )
)
def test_accumulator_matches_set_reduction(launches):
    ref_per, ref_cum = census_reduce_scalar(launches)
    acc = FootprintAccumulator()
    got = [acc.add_launch(launch) for launch in launches]
    assert [g[0] for g in got] == ref_per
    assert [g[1] for g in got] == ref_cum


# ----------------------------------------------------------------------
# host_coverage == per-handle set loop
# ----------------------------------------------------------------------


def host_coverage_scalar(env, attacker_handles, victim_handles):
    """The pre-columnar reference: host-id set intersection per campaign."""
    orch = env.orchestrator
    attacker_hosts = {
        orch.true_host_of(h.instance_id) for h in attacker_handles if h.alive
    }
    victims = [h for h in victim_handles if h.alive]
    if not victims:
        return 0.0, len(attacker_hosts)
    hits = sum(
        1 for h in victims if orch.true_host_of(h.instance_id) in attacker_hosts
    )
    return hits / len(victims), len(attacker_hosts)


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_attacker=st.integers(0, 14),
    n_victim=st.integers(0, 14),
    kills=st.lists(st.integers(0, 27), max_size=8),
    rotate=st.booleans(),
)
def test_host_coverage_matches_scalar_loop(seed, n_attacker, n_victim, kills, rotate):
    env = default_env(profile=tiny_profile(), seed=seed)
    attacker, victim = env.clients["account-1"], env.clients["account-2"]
    handles_a = handles_v = []
    if n_attacker:
        attacker.deploy(ServiceConfig(name="atk"))
        handles_a = attacker.connect("atk", n_attacker)
    if n_victim:
        victim.deploy(ServiceConfig(name="vic"))
        handles_v = victim.connect("vic", n_victim)
    everyone = list(handles_a) + list(handles_v)
    now = env.orchestrator.clock.now()
    for k in kills:
        if everyone:
            inst = everyone[k % len(everyone)]._instance
            if inst.alive:
                inst.terminate(now)
    if rotate:
        # Rotated-out hosts keep serving existing instances; coverage
        # math must be independent of pool membership.
        env.datacenter._rotate_once()
    fast = host_coverage(env, handles_a, handles_v)
    slow = host_coverage_scalar(env, handles_a, handles_v)
    assert fast[1] == slow[1]
    assert abs(fast[0] - slow[0]) < 1e-12


# ----------------------------------------------------------------------
# Placement fast path == heap path at degenerate capacities
# ----------------------------------------------------------------------


def run_placement(seed, capacities, loads, count, slots, force_heap):
    store = FleetStore(
        [f"h{i:03d}" for i in range(len(capacities))],
        capacity_slots=np.asarray(capacities, dtype=np.float64),
    )
    store.load_slots[:] = np.asarray(loads, dtype=np.float64)
    policy = PlacementPolicy(np.random.default_rng(seed))
    if force_heap:
        policy._no_host_can_fill = lambda *_a, **_k: False
    request = PlacementRequest(
        count=count,
        slots_per_instance=slots,
        allowed=np.arange(len(capacities), dtype=np.int64),
        service_counts=store.service_counts("svc"),
    )
    try:
        chosen = policy.place(request, store)
    except Exception as exc:  # NoCapacityError parity matters too
        return ("raise", type(exc).__name__, store.load_slots.tolist())
    return ("ok", chosen.tolist(), store.load_slots.tolist())


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n_hosts=st.integers(1, 6),
    count=st.integers(33, 64),  # above _SMALL_BATCH so the lexsort path runs
    slots=st.sampled_from([0.5, 1.0, 2.0]),
    data=st.data(),
)
def test_fast_path_matches_heap_at_degenerate_capacities(
    seed, n_hosts, count, slots, data
):
    """Full hosts, zero-capacity hosts, and loads landing exactly on the
    ``(count + 1) * slots`` margin boundary: wherever the fast path
    accepts, it must equal the heap byte-for-byte; where capacity bites,
    both paths raise the same error with the same committed loads."""
    margin = (count + 1) * slots
    capacities = data.draw(
        st.lists(
            st.sampled_from([0.0, slots, margin - slots, margin, margin + slots, 1e6]),
            min_size=n_hosts,
            max_size=n_hosts,
        )
    )
    loads = [
        data.draw(st.sampled_from([0.0, cap / 2, max(0.0, cap - margin), cap]))
        for cap in capacities
    ]
    fast = run_placement(seed, capacities, loads, count, slots, force_heap=False)
    heap = run_placement(seed, capacities, loads, count, slots, force_heap=True)
    if fast[0] == "ok" and heap[0] == "ok":
        assert fast == heap
    else:
        # Capacity shortfalls must agree on the outcome type; committed
        # loads may differ only if one path never started placing.
        assert fast[0] == heap[0] == "raise"
        assert fast[1] == heap[1]
