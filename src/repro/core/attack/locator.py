"""Target Victim Locator: pinpointing an *uncontrolled* victim's host.

Everything up to here verifies co-location among attacker-controlled
instances — both sides of every covert-channel test run the attacker's
code.  The campaign's end goal is different: a victim service the
attacker can neither instrument nor instruct, only *probe* through its
public URL.  Prior serverless co-location work (the Shadow-Hunting-Attack
artifacts; "A Practical Guide to Serverless Cloud Co-Location Attacks")
closes that gap with a lock-and-probe protocol:

1. **Deduplicate.**  Collapse the attacker fleet to one *cluster* per
   physical server using the existing fingerprint-guided
   :class:`~repro.core.verification.ScalableVerifier` — probing per
   instance would waste a round on every co-resident duplicate.
2. **Lock subsets, probe the victim.**  A locked instance hammers the
   memory bus with an atomic-op loop; if the victim shares its host, the
   victim's request handling stretches measurably
   (:meth:`~repro.sandbox.base.Sandbox.serve_request`).  Binary search
   over the clusters — lock half, time the victim's public endpoint,
   keep whichever half produced the slow response — finds the
   co-resident cluster in O(log n_servers) lock/probe rounds, then the
   co-resident *instance* within it the same way.
3. **Threshold absolutely, confirm, retry.**  Latency is compared
   against an absolute threshold rather than a per-round differential
   one.  All modeled interference — scheduling jitter, fault-injected
   platform delays — is *additive*, so a locked co-resident can never
   probe fast (no false negatives), while a noisy slow probe can send
   the search down the wrong half.  Wrong descents are caught by a final
   single-instance confirmation measure and answered with a whole-search
   restart under a bounded :class:`~repro.faults.RetryPolicy`, which
   draws fresh fault decisions.  Instances that die mid-search simply
   drop out of their cluster (a reaped container stops pressuring); a
   search whose candidates all die reports a structured failure instead
   of raising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.cloud.api import InstanceHandle
from repro.core.verification import (
    ScalableVerifier,
    TaggedInstance,
    VerificationReport,
)
from repro.errors import InstanceGoneError
from repro.faults import DEFAULT_LOCATE_RETRY, RetryPolicy
from repro.sandbox.base import Sandbox
from repro.telemetry import current_telemetry


def probe_latency_threshold(processing_seconds: float) -> float:
    """The absolute locked-vs-unlocked latency decision boundary.

    An unlocked response takes at most ``processing * (1 + SERVE_JITTER)``
    and a single co-resident locker stretches it to at least
    ``processing * (1 + BUS_LOCK_SLOWDOWN)``; halfway up the slowdown
    sits cleanly between the two bands.  This *is* the absolute-threshold
    assumption documented in THREAT_MODEL.md: the attacker must know the
    victim's unloaded processing time (measurable from a few unlocked
    probes) and the platform's contention slowdown (calibratable on the
    attacker's own instances).
    """
    return processing_seconds * (1.0 + Sandbox.BUS_LOCK_SLOWDOWN / 2.0)


@dataclass(frozen=True)
class LocatorResult:
    """Outcome of one localization campaign.

    Attributes
    ----------
    located:
        The attacker instance sharing the victim's host, or ``None``.
    converged:
        Whether localization succeeded (``located`` is set iff true).
    failure:
        Structured reason when not converged: ``"no_colocation"`` (with
        every candidate locked the victim still probed fast — no attacker
        instance shares its host), ``"candidates_died"`` (every remaining
        candidate terminated mid-search), or ``"not_confirmed"`` (the
        final confirmation stayed below threshold even after the retry
        budget's full-search restarts).
    rounds:
        Lock/probe rounds across all attempts (binary-search steps plus
        the all-locked pre-check and final confirmation of each attempt).
    probes:
        Individual victim requests sent (several per round).
    attempts:
        Full searches run: 1 on a clean convergence, more when a noisy
        descent failed confirmation and the retry policy restarted.
    baseline_latency_s / locked_latency_s:
        Unlocked victim latency and the all-candidates-locked latency of
        the last attempt — the measured signal margin.
    initial_candidates:
        Deduplicated cluster count the search started from.
    dedup:
        The verifier's report when :meth:`TargetVictimLocator.locate`
        performed deduplication itself, else ``None``.
    """

    located: InstanceHandle | None
    converged: bool
    failure: str | None
    rounds: int
    probes: int
    attempts: int
    baseline_latency_s: float
    locked_latency_s: float
    initial_candidates: int
    dedup: VerificationReport | None = None


class _SearchTrace:
    """Mutable per-call counters threaded through one localization."""

    def __init__(self) -> None:
        self.rounds = 0
        self.probes = 0
        self.baseline = 0.0
        self.locked = 0.0


class TargetVictimLocator:
    """Locate the attacker instance co-resident with a probe-able victim.

    Parameters
    ----------
    probe:
        Zero-argument callable timing one request to the victim's public
        URL (e.g. ``lambda: client.probe("account-2/victim")``) and
        returning the observed latency in seconds.  The locator owns no
        client: the victim stays a black box behind this callable.
    latency_threshold_s:
        Absolute locked-vs-unlocked decision boundary; see
        :func:`probe_latency_threshold`.
    verifier:
        Dedup provider for :meth:`locate`.  Optional — callers that
        already hold clusters use :meth:`locate_clusters` directly.
    probes_per_measure:
        Requests per measurement; the median is compared against the
        threshold, so a majority of one measurement's probes must be
        noise-delayed before a verdict can flip (keep it odd).
    confirm_probes:
        Requests for the final single-instance confirmation measure —
        larger than ``probes_per_measure`` because a false confirmation
        ends the search where a false round merely detours it.
    retry_policy:
        Full-search restart budget after a failed confirmation.
    wait:
        Optional wall-time sleep (e.g. ``client.wait``) honoring the
        retry policy's backoff between restarts.
    """

    def __init__(
        self,
        probe: Callable[[], float],
        latency_threshold_s: float,
        verifier: ScalableVerifier | None = None,
        probes_per_measure: int = 3,
        confirm_probes: int = 5,
        retry_policy: RetryPolicy | None = None,
        wait: Callable[[float], None] | None = None,
    ) -> None:
        self.probe = probe
        self.latency_threshold_s = latency_threshold_s
        self.verifier = verifier
        self.probes_per_measure = probes_per_measure
        self.confirm_probes = confirm_probes
        self.retry_policy = (
            retry_policy if retry_policy is not None else DEFAULT_LOCATE_RETRY
        )
        self.wait = wait

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def locate(self, tagged: Sequence[TaggedInstance]) -> LocatorResult:
        """Deduplicate ``tagged`` attacker instances, then localize.

        Requires a ``verifier``; its clusters (one per verified server)
        become the search candidates, and its report rides along in the
        result for cost accounting.
        """
        if self.verifier is None:
            raise ValueError("locate() needs a verifier; or use locate_clusters()")
        report = self.verifier.verify(list(tagged))
        result = self.locate_clusters(report.clusters)
        return _with_dedup(result, report)

    def locate_clusters(
        self, clusters: Sequence[Sequence[InstanceHandle]]
    ) -> LocatorResult:
        """Localize the victim among pre-deduplicated candidate clusters.

        Each cluster should hold the instances of one physical server,
        but the search stays correct under dedup errors: a wrongly
        *merged* cluster is split again by the within-cluster phase, and
        a wrongly *split* server just occupies two candidate slots (one
        of which wins).  Every locked subset locks all live members of
        its clusters, so a representative dying mid-search never silences
        a server that still runs other attacker instances.
        """
        telemetry = current_telemetry()
        trace = _SearchTrace()
        candidates = [list(cluster) for cluster in clusters]
        with telemetry.span(
            "locate", candidates=len(candidates), threshold=self.latency_threshold_s
        ) as span:
            attempts = 0
            failure = "not_confirmed"
            located: InstanceHandle | None = None
            while attempts <= self.retry_policy.max_retries:
                if attempts > 0 and self.wait is not None:
                    self.wait(self.retry_policy.backoff(attempts - 1))
                attempts += 1
                located, failure = self._search_once(candidates, trace)
                if located is not None or failure != "not_confirmed":
                    break
                telemetry.count("locate.restarts")
            span.set(
                converged=located is not None,
                failure=None if located is not None else failure,
                rounds=trace.rounds,
                probes=trace.probes,
                attempts=attempts,
            )
        telemetry.count("locate.calls")
        telemetry.count("locate.rounds", trace.rounds)
        telemetry.count("locate.probes", trace.probes)
        return LocatorResult(
            located=located,
            converged=located is not None,
            failure=None if located is not None else failure,
            rounds=trace.rounds,
            probes=trace.probes,
            attempts=attempts,
            baseline_latency_s=trace.baseline,
            locked_latency_s=trace.locked,
            initial_candidates=len(candidates),
        )

    # ------------------------------------------------------------------
    # One full search attempt
    # ------------------------------------------------------------------
    def _search_once(
        self, clusters: list[list[InstanceHandle]], trace: _SearchTrace
    ) -> tuple[InstanceHandle | None, str]:
        candidates = _prune(clusters)
        if not candidates:
            return None, "candidates_died"

        # Unlocked baseline, then the all-locked pre-check.  Interference
        # is strictly additive, so a fast response with *every* candidate
        # locked is conclusive: no live candidate shares the victim's
        # host.  (A slow baseline, conversely, can only be noise.)
        trace.baseline = self._measure(trace)
        trace.locked = self._measure_locked(candidates, trace)
        trace.rounds += 1
        if trace.locked < self.latency_threshold_s:
            return None, "no_colocation"

        # Phase 1: binary search to the co-resident server's cluster.
        winner = self._binary_search(candidates, trace)
        if winner is None:
            return None, "candidates_died"

        # Phase 2: the same search within the cluster pins one instance
        # (and corrects dedup over-merges, where the "cluster" actually
        # spans servers and only some members sit with the victim).
        member = self._binary_search([[h] for h in winner], trace)
        if member is None:
            return None, "candidates_died"
        located = member[0]

        # Confirmation: this one instance locked must reproduce the slow
        # response.  A noisy descent lands on an innocent server and
        # fails here, triggering the caller's full-search restart.
        confirmed = self._measure_locked([member], trace, self.confirm_probes)
        trace.rounds += 1
        if confirmed >= self.latency_threshold_s and located.alive:
            return located, ""
        return None, "not_confirmed"

    def _binary_search(
        self, candidates: list[list[InstanceHandle]], trace: _SearchTrace
    ) -> list[InstanceHandle] | None:
        """Narrow ``candidates`` to the cluster the victim responds to."""
        telemetry = current_telemetry()
        while len(candidates) > 1:
            half = candidates[: len(candidates) // 2]
            with telemetry.span(
                "locate.round", candidates=len(candidates), locked=len(half)
            ) as span:
                latency = self._measure_locked(half, trace)
                hot = latency >= self.latency_threshold_s
                span.set(latency=round(latency, 6), hot=hot)
            trace.rounds += 1
            candidates = _prune(half if hot else candidates[len(half):])
            if not candidates:
                return None
        return candidates[0] if candidates else None

    # ------------------------------------------------------------------
    # Lock/probe primitives
    # ------------------------------------------------------------------
    @staticmethod
    def _start(sandbox: Sandbox) -> None:
        sandbox.start_bus_pressure()

    @staticmethod
    def _stop(sandbox: Sandbox) -> None:
        sandbox.stop_bus_pressure()

    def _measure(self, trace: _SearchTrace, n_probes: int | None = None) -> float:
        """Median latency over ``n_probes`` requests to the victim."""
        n = self.probes_per_measure if n_probes is None else n_probes
        samples = sorted(self.probe() for _ in range(n))
        trace.probes += n
        return samples[n // 2]

    def _measure_locked(
        self,
        clusters: Sequence[Sequence[InstanceHandle]],
        trace: _SearchTrace,
        n_probes: int | None = None,
    ) -> float:
        """Measure victim latency with every live member of ``clusters``
        locking its host's memory bus; always unlocks, even on error."""
        locked: list[InstanceHandle] = []
        for cluster in clusters:
            for handle in cluster:
                try:
                    handle.run(self._start)
                except InstanceGoneError:
                    continue  # died since the last prune; dropped next round
                locked.append(handle)
        try:
            return self._measure(trace, n_probes)
        finally:
            for handle in locked:
                try:
                    handle.run(self._stop)
                except InstanceGoneError:
                    pass  # termination already released its pressure


def _prune(clusters: Sequence[Sequence[InstanceHandle]]) -> list[list[InstanceHandle]]:
    """Drop terminated members, then emptied clusters."""
    live = [[h for h in cluster if h.alive] for cluster in clusters]
    return [cluster for cluster in live if cluster]


def _with_dedup(result: LocatorResult, report: VerificationReport) -> LocatorResult:
    return LocatorResult(
        located=result.located,
        converged=result.converged,
        failure=result.failure,
        rounds=result.rounds,
        probes=result.probes,
        attempts=result.attempts,
        baseline_latency_s=result.baseline_latency_s,
        locked_latency_s=result.locked_latency_s,
        initial_candidates=result.initial_candidates,
        dedup=report,
    )
