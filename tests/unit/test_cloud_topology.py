"""Unit tests for region profiles."""

import pytest

from repro.cloud.topology import REGION_PROFILES, RegionProfile, region_profile
from repro.errors import CloudError


class TestRegionProfiles:
    def test_three_paper_regions_present(self):
        for name in ("us-east1", "us-central1", "us-west1"):
            assert name in REGION_PROFILES

    def test_all_nine_us_regions_present(self):
        """Paper §5.1: all nine US datacenters behave similarly except
        us-central1, the only dynamic one."""
        us_regions = [name for name in REGION_PROFILES if name.startswith("us-")]
        assert len(us_regions) == 9
        dynamic = [
            name for name in us_regions if REGION_PROFILES[name].dynamic_placement
        ]
        assert dynamic == ["us-central1"]

    def test_uncalibrated_regions_are_valid(self):
        """Every profile must satisfy its own invariants (shards fit, etc.)
        and support at least two placement shards."""
        for name, profile in REGION_PROFILES.items():
            assert profile.n_shards >= 2, name

    def test_lookup(self):
        assert region_profile("us-east1").name == "us-east1"

    def test_unknown_region_rejected(self):
        with pytest.raises(CloudError):
            region_profile("mars-north1")

    def test_central1_is_largest(self):
        """Paper: us-central1 is by far the biggest datacenter (1702 seen)."""
        sizes = {name: REGION_PROFILES[name].n_hosts for name in REGION_PROFILES}
        assert sizes["us-central1"] > sizes["us-east1"] > sizes["us-west1"]

    def test_central1_is_dynamic(self):
        """Paper §5.1 'Other factors': only us-central1 places dynamically."""
        assert region_profile("us-central1").dynamic_placement
        assert not region_profile("us-east1").dynamic_placement
        assert not region_profile("us-west1").dynamic_placement

    def test_base_set_size_near_75(self):
        """Experiment 1: 800 instances land on ~75 hosts."""
        for name in ("us-east1", "us-central1", "us-west1"):
            assert region_profile(name).shard_size == 75

    def test_hot_window_is_30_minutes(self):
        assert region_profile("us-east1").hot_window == pytest.approx(1800.0)

    def test_idle_window_matches_fig6(self):
        profile = region_profile("us-east1")
        assert profile.idle_grace == pytest.approx(120.0)
        assert profile.idle_deadline == pytest.approx(720.0)

    def test_n_shards(self):
        profile = region_profile("us-east1")
        assert profile.n_shards == profile.active_hosts // profile.shard_size

    def test_validation_active_exceeds_total(self):
        with pytest.raises(CloudError):
            RegionProfile(name="bad", n_hosts=10, active_hosts=20)

    def test_validation_shard_exceeds_active(self):
        with pytest.raises(CloudError):
            RegionProfile(name="bad", n_hosts=100, active_hosts=50, shard_size=60)

    def test_evaluation_account_pins(self):
        """The calibrated base-host overlaps behind the paper's naive-
        strategy results: west shares a shard between accounts 1 and 2,
        central between accounts 1 and 3, east keeps all three apart."""
        west = region_profile("us-west1").plan.account_shards
        assert west["account-1"] == west["account-2"] != west["account-3"]
        central = region_profile("us-central1").plan.account_shards
        assert central["account-1"] == central["account-3"] != central["account-2"]
        east = region_profile("us-east1").plan.account_shards
        assert len({east[a] for a in east}) == 3
