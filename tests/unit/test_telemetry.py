"""Unit tests for the telemetry subsystem (spans, metrics, exports)."""

from __future__ import annotations

import io
import json

from repro.simtime.clock import SimClock
from repro.telemetry import (
    NULL_TELEMETRY,
    HistogramSummary,
    MetricSet,
    Telemetry,
    current_telemetry,
    format_metrics,
    metrics_snapshot,
    render_tree,
    span_lines,
    telemetry_context,
    write_jsonl,
)
from repro.telemetry.tracer import _NULL_SPAN


class TestHistogramSummary:
    def test_empty(self):
        hist = HistogramSummary()
        assert hist.count == 0
        assert hist.mean == 0.0
        assert hist.as_dict() == {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0}

    def test_observe_tracks_extremes_and_mean(self):
        hist = HistogramSummary()
        for value in (4.0, 1.0, 7.0):
            hist.observe(value)
        assert hist.count == 3
        assert hist.min == 1.0
        assert hist.max == 7.0
        assert hist.mean == 4.0

    def test_merge_matches_combined_stream(self):
        a, b, combined = HistogramSummary(), HistogramSummary(), HistogramSummary()
        for value in (1.0, 5.0):
            a.observe(value)
            combined.observe(value)
        for value in (0.5, 9.0, 2.0):
            b.observe(value)
            combined.observe(value)
        a.merge(b)
        assert a == combined

    def test_merge_with_empty_is_identity(self):
        hist = HistogramSummary()
        hist.observe(3.0)
        before = hist.as_dict()
        hist.merge(HistogramSummary())
        assert hist.as_dict() == before


class TestMetricSet:
    def test_counter_defaults_to_zero(self):
        assert MetricSet().counter("missing") == 0

    def test_inc_and_snapshot_since(self):
        ms = MetricSet()
        ms.inc("a")
        before = ms.snapshot()
        ms.inc("a", 2)
        ms.inc("b", 5)
        assert ms.since(before) == {"a": 2, "b": 5}
        assert ms.counter("a") == 3

    def test_since_omits_unchanged_counters(self):
        ms = MetricSet()
        ms.inc("steady", 4)
        before = ms.snapshot()
        ms.inc("moving")
        assert ms.since(before) == {"moving": 1}

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricSet(), MetricSet()
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.observe("h", 1.0)
        b.observe("h", 3.0)
        b.gauge("g", 7)
        a.merge(b)
        assert a.counter("x") == 3
        assert a.counter("y") == 3
        assert a.histograms["h"].count == 2
        assert a.gauges["g"] == 7

    def test_state_roundtrip(self):
        ms = MetricSet()
        ms.inc("c", 2)
        ms.gauge("g", 1.5)
        ms.observe("h", 4.0)
        rebuilt = MetricSet.from_state(ms.to_state())
        assert rebuilt.as_dict() == ms.as_dict()

    def test_as_dict_sorts_keys(self):
        ms = MetricSet()
        ms.inc("zeta")
        ms.inc("alpha")
        assert list(ms.as_dict()["counters"]) == ["alpha", "zeta"]


class TestSpans:
    def test_sim_span_timestamps_from_bound_clock(self):
        tm = Telemetry()
        clock = SimClock()
        tm.use_clock(clock)
        start = clock.now()
        with tm.span("work", label="x"):
            clock.sleep(10.0)
        (span,) = tm.records()
        assert span.kind == "sim"
        assert span.t0 == start
        assert span.t1 == start + 10.0
        assert span.attrs == {"label": "x"}

    def test_nesting_assigns_parents_in_open_order(self):
        tm = Telemetry()
        with tm.span("outer"):
            with tm.span("inner"):
                tm.event("marker")
        outer, inner, marker = tm.records()
        assert outer.parent_id is None
        assert inner.parent_id == outer.span_id
        assert marker.parent_id == inner.span_id
        assert [s.span_id for s in tm.records()] == [0, 1, 2]

    def test_event_is_zero_duration(self):
        tm = Telemetry()
        tm.use_clock(SimClock())
        tm.event("tick", n=1)
        (span,) = tm.records()
        assert span.kind == "event"
        assert span.t0 == span.t1

    def test_wall_span_measures_seconds_not_sim_time(self):
        tm = Telemetry()
        with tm.wall_span("cell"):
            pass
        (span,) = tm.records()
        assert span.kind == "wall"
        assert span.t0 is None and span.t1 is None
        assert span.wall_s is not None and span.wall_s >= 0.0

    def test_exception_marks_span_with_error(self):
        tm = Telemetry()
        try:
            with tm.span("risky"):
                raise ValueError("boom")
        except ValueError:
            pass
        (span,) = tm.records()
        assert span.attrs["error"] == "ValueError"

    def test_manual_close_pops_the_stack(self):
        tm = Telemetry()
        span = tm.span("manual")
        span.close()
        with tm.span("after") as after:
            pass
        assert after.parent_id is None

    def test_set_returns_span_and_overwrites(self):
        tm = Telemetry()
        with tm.span("s", a=1) as span:
            assert span.set(a=2, b=3) is span
        assert span.attrs == {"a": 2, "b": 3}


class TestSplice:
    def test_splice_remaps_ids_under_wrapper(self):
        child = Telemetry()
        child.use_clock(SimClock())
        with child.span("child-root"):
            child.event("child-leaf")
        child.count("c", 2)
        trace = child.snapshot_trace()

        parent = Telemetry()
        parent.count("c", 1)
        with parent.span("run"):
            parent.splice(trace, name="cell", label="L")
        run, wrapper, root, leaf = parent.records()
        assert wrapper.name == "cell"
        assert wrapper.parent_id == run.span_id
        assert root.parent_id == wrapper.span_id
        assert leaf.parent_id == root.span_id
        assert root.t0 is not None  # child sim timestamps preserved
        assert parent.metrics.counter("c") == 3

    def test_splice_none_is_a_noop(self):
        parent = Telemetry()
        parent.splice(None)
        assert parent.records() == []

    def test_two_splices_reproduce_serial_tree(self):
        def cell_trace(tag):
            tm = Telemetry()
            tm.use_clock(SimClock())
            with tm.span(f"work-{tag}"):
                tm.event("step")
            return tm.snapshot_trace()

        a = Telemetry()
        a.splice(cell_trace("x"), name="cell")
        a.splice(cell_trace("y"), name="cell")
        names = [s.name for s in a.records()]
        assert names == ["cell", "work-x", "step", "cell", "work-y", "step"]
        assert span_lines(a) == span_lines(a)  # stable


class TestNullTelemetry:
    def test_ambient_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY
        assert not NULL_TELEMETRY.enabled

    def test_null_operations_allocate_nothing(self):
        span = NULL_TELEMETRY.span("anything", x=1)
        assert span is _NULL_SPAN
        assert NULL_TELEMETRY.wall_span("w") is _NULL_SPAN
        assert span.set(y=2) is span
        with span:
            pass
        NULL_TELEMETRY.count("c")
        NULL_TELEMETRY.gauge("g", 1)
        NULL_TELEMETRY.observe("h", 1.0)
        NULL_TELEMETRY.event("e")
        NULL_TELEMETRY.splice({"spans": [], "metrics": {}})
        NULL_TELEMETRY.use_clock(SimClock())

    def test_context_activates_and_restores(self):
        tm = Telemetry()
        with telemetry_context(tm):
            assert current_telemetry() is tm
            with telemetry_context(NULL_TELEMETRY):
                assert current_telemetry() is NULL_TELEMETRY
            assert current_telemetry() is tm
        assert current_telemetry() is NULL_TELEMETRY


class TestExports:
    def _traced(self) -> Telemetry:
        tm = Telemetry()
        tm.use_clock(SimClock())
        with tm.span("root", region="tiny"):
            with tm.wall_span("cell", label="c0"):
                tm.event("mark", n=2)
        return tm

    def test_span_lines_are_canonical_json(self):
        tm = self._traced()
        lines = span_lines(tm)
        assert len(lines) == 3
        for line in lines:
            assert "\n" not in line
            record = json.loads(line)
            assert list(record) == sorted(record)

    def test_default_export_omits_wall_seconds(self):
        tm = self._traced()
        plain = [json.loads(line) for line in span_lines(tm)]
        assert all("wall_s" not in record for record in plain)
        walled = [
            json.loads(line) for line in span_lines(tm, include_wall=True)
        ]
        assert any("wall_s" in record for record in walled)

    def test_attrs_are_sanitized_deterministically(self):
        tm = Telemetry()
        with tm.span("s", items={2, 1}, mapping={"b": 1, "a": (2, 3)}):
            pass
        record = json.loads(span_lines(tm)[0])
        assert record["attrs"] == {
            "items": [1, 2],
            "mapping": {"a": [2, 3], "b": 1},
        }

    def test_write_jsonl_to_stream_and_path(self, tmp_path):
        tm = self._traced()
        stream = io.StringIO()
        write_jsonl(tm, stream)
        path = tmp_path / "trace.jsonl"
        write_jsonl(tm, path)
        assert stream.getvalue() == path.read_text(encoding="utf-8")
        assert stream.getvalue().endswith("\n")

    def test_write_jsonl_empty_trace_writes_nothing(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_jsonl(Telemetry(), path)
        assert path.read_text(encoding="utf-8") == ""

    def test_render_tree_indents_children(self):
        tm = self._traced()
        tree = render_tree(tm)
        lines = tree.splitlines()
        assert lines[0].startswith("root")
        assert lines[1].startswith("  cell")
        assert lines[2].startswith("    mark")

    def test_format_metrics_empty_and_populated(self):
        assert format_metrics(MetricSet()) == "(no metrics recorded)"
        ms = MetricSet()
        ms.inc("runs", 2)
        ms.gauge("jobs", 4)
        ms.observe("seconds", 1.5)
        text = format_metrics(ms)
        assert "runs" in text
        assert "jobs (gauge)" in text
        assert "seconds (hist)" in text

    def test_metrics_snapshot_is_plain_json(self):
        tm = self._traced()
        tm.count("a")
        snap = metrics_snapshot(tm)
        json.dumps(snap)  # must be JSON-able
        assert snap["counters"] == {"a": 1}
