"""Minimal ASCII chart rendering for terminal figure regeneration.

The benchmark harness prints tables; the CLI can additionally sketch the
figure shapes (decay curves, CDFs, step patterns) directly in the
terminal so the reproduction is visually checkable without matplotlib.
"""

from __future__ import annotations

import math
from typing import Sequence


def render_series(
    xs: Sequence[float],
    ys: Sequence[float],
    width: int = 60,
    height: int = 14,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
    log_x: bool = False,
) -> str:
    """Render one (x, y) series as an ASCII scatter chart.

    Parameters
    ----------
    xs / ys:
        The data series (equal lengths, at least two points).
    width / height:
        Plot area size in characters.
    title / x_label / y_label:
        Optional labels.
    log_x:
        Plot against log10(x) (for sweeps spanning decades, like Fig. 4).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have equal length")
    if len(xs) < 2:
        raise ValueError("need at least two points to plot")
    x_values = [math.log10(x) for x in xs] if log_x else list(map(float, xs))
    y_values = list(map(float, ys))

    x_min, x_max = min(x_values), max(x_values)
    y_min, y_max = min(y_values), max(y_values)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for x, y in zip(x_values, y_values):
        col = round((x - x_min) / x_span * (width - 1))
        row = round((y - y_min) / y_span * (height - 1))
        grid[height - 1 - row][col] = "*"

    lines = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.4g}"
    bottom_label = f"{y_min:.4g}"
    pad = max(len(top_label), len(bottom_label))
    for i, row_chars in enumerate(grid):
        if i == 0:
            prefix = top_label.rjust(pad)
        elif i == height - 1:
            prefix = bottom_label.rjust(pad)
        else:
            prefix = " " * pad
        lines.append(f"{prefix} |{''.join(row_chars)}")
    axis_left = f"{x_min:.4g}" if not log_x else f"1e{x_min:.0f}"
    axis_right = f"{x_max:.4g}" if not log_x else f"1e{x_max:.0f}"
    axis = axis_left + axis_right.rjust(width - len(axis_left))
    lines.append(" " * pad + " +" + "-" * width)
    lines.append(" " * pad + "  " + axis)
    if x_label or y_label:
        lines.append(" " * pad + f"  x: {x_label}   y: {y_label}".rstrip())
    return "\n".join(lines)


def render_cdf(
    values: Sequence[float], width: int = 60, height: int = 14, title: str = ""
) -> str:
    """Render the empirical CDF of ``values`` as an ASCII chart."""
    if not values:
        raise ValueError("cannot plot a CDF of zero samples")
    ordered = sorted(values)
    fractions = [(i + 1) / len(ordered) for i in range(len(ordered))]
    return render_series(
        ordered, fractions, width=width, height=height, title=title,
        x_label="value", y_label="CDF",
    )
