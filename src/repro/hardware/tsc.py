"""The invariant timestamp counter (TSC).

An invariant TSC resets to zero at host boot and increments at a fixed rate
regardless of frequency scaling (paper §2.4).  Crucially for the paper's
Gen 1 fingerprint, the *actual* tick rate deviates from the frequency
reported by ``cpuid``/the model name by a small constant amount, which the
Linux kernel corrects by refining the frequency against other hardware
clocks at boot time.

This module models a TSC with:

* an actual frequency ``f* = f_reported - epsilon`` fixed per host,
* a boot time at which the counter read zero,
* hardware-virtualization *TSC offsetting* support for Gen 2 guests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError


@dataclass(frozen=True)
class TimestampCounter:
    """An invariant TSC attached to one physical host.

    Attributes
    ----------
    boot_time:
        Host boot wall-clock time (seconds since epoch); the counter read
        zero at this instant.
    actual_frequency_hz:
        The true tick rate ``f*``.  Deviates from the reported frequency by
        a constant per-host error ``epsilon`` (paper §4.2).
    """

    boot_time: float
    actual_frequency_hz: float

    def __post_init__(self) -> None:
        if self.actual_frequency_hz <= 0:
            raise HardwareError(
                f"TSC frequency must be positive, got {self.actual_frequency_hz!r}"
            )

    def read(self, now: float) -> int:
        """Return the raw TSC value at wall-clock time ``now`` (``rdtsc``).

        Raises
        ------
        HardwareError
            If ``now`` precedes the host's boot time — reading a counter
            before the machine existed indicates a simulation bug.
        """
        if now < self.boot_time:
            raise HardwareError(
                f"TSC read at {now!r} before host boot at {self.boot_time!r}"
            )
        return int((now - self.boot_time) * self.actual_frequency_hz)

    def offset_for_guest(self, guest_boot_time: float) -> int:
        """TSC offset a hypervisor installs when booting a guest VM.

        With TSC offsetting (paper §4.5), the hypervisor records the host
        TSC value ``tsc0`` at guest boot and the guest subsequently reads
        ``tsc - tsc0``, creating the illusion that the TSC was zero when the
        guest booted.
        """
        return self.read(guest_boot_time)

    def refined_frequency_hz(self, precision_hz: float = 1e3) -> float:
        """The frequency the host kernel determines at boot time.

        Linux refines the TSC frequency against other hardware clocks but
        only to a precision of 1 kHz (paper §4.5), so co-located Gen 2
        guests all observe the same refined value while distinct hosts may
        collide on it.
        """
        if precision_hz <= 0:
            raise HardwareError(f"refinement precision must be positive: {precision_hz!r}")
        return round(self.actual_frequency_hz / precision_hz) * precision_hz

    def uptime(self, now: float) -> float:
        """True host uptime in seconds at wall-clock time ``now``."""
        if now < self.boot_time:
            raise HardwareError(
                f"uptime queried at {now!r} before host boot at {self.boot_time!r}"
            )
        return now - self.boot_time
