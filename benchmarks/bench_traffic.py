"""Background-traffic micro-benchmark: event-driven vs per-tick scalar.

Drives the same generated tenant population two ways on scaled copies of
the ``test-region1`` profile (1x/4x/16x fleet, up to 1000 tenants):

* ``scalar`` — the frozen pre-engine reference: one Python loop over
  evaluation ticks, each tick calling ``pattern.concurrency_at`` and the
  full ``Orchestrator.scale_to`` list path for *every* tenant, whether or
  not its target changed;
* ``vectorized`` — :class:`repro.cloud.traffic.BackgroundDriver`:
  schedules precomputed as matrices, per-phase batched events on the
  shared scheduler, columnar ACTIVE counts, orchestrator calls only for
  tenants whose target moved.

Setup (population generation, account registration, service deploys) is
identical work and excluded from the timed region; only the driving
itself is measured.

Run::

    PYTHONPATH=src python benchmarks/bench_traffic.py --out BENCH_traffic.json

Exit status is non-zero if the vectorized engine regresses at 1x scale or
misses the 5x speedup floor at 16x (1000 tenants).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time

from repro import units
from repro.cloud.accounts import Account
from repro.cloud.autoscaler import AutoscalePoint, AutoscaleTrace
from repro.cloud.datacenter import DataCenter
from repro.cloud.orchestrator import Orchestrator
from repro.cloud.services import CONTAINER_SIZES, ServiceConfig
from repro.cloud.topology import REGION_PROFILES
from repro.cloud.traffic import BackgroundDriver, TenantPopulation, TrafficConfig
from repro.simtime.clock import SimClock

SCALES = {"1x": 1, "4x": 4, "16x": 16}
TENANTS = {"1x": 60, "4x": 250, "16x": 1000}
DURATION_S = 10 * units.MINUTE
PERIOD_S = 15.0
REPEATS = 2


def scaled_profile(factor: int):
    base = REGION_PROFILES["test-region1"]
    return dataclasses.replace(
        base,
        name=f"bench-{factor}x",
        n_hosts=base.n_hosts * factor,
        active_hosts=base.active_hosts * factor,
        shard_size=base.shard_size * factor,
    )


def build_env(factor: int, seed: int = 0) -> Orchestrator:
    clock = SimClock()
    datacenter = DataCenter(scaled_profile(factor), clock, seed=seed)
    return Orchestrator(datacenter)


def traffic_config(n_tenants: int) -> TrafficConfig:
    return TrafficConfig(
        n_tenants=n_tenants, seed=7, duration_s=DURATION_S,
        evaluation_period_s=PERIOD_S,
    )


# ----------------------------------------------------------------------
# Frozen scalar reference (pre-engine idiom: Autoscaler.drive per tenant,
# collapsed to one interleaved tick loop so tenants share the clock)
# ----------------------------------------------------------------------
def scalar_drive(factor: int, population: TenantPopulation) -> float:
    """Per-tick scalar driving; returns the timed driving seconds.

    Every tick does exactly what one ``Autoscaler.drive`` evaluation did
    before the engine existed, for every tenant: a scalar
    ``concurrency_at`` sample, the full ``scale_to`` list path whether or
    not the target moved, and an :class:`AutoscalePoint` whose alive
    count is a ``len(alive_instances(...))`` list scan.  That scan is
    part of the baseline the same way the full-fleet dict rebuild is part
    of ``bench_fleet``'s.
    """
    orch = build_env(factor)
    config = population.config
    services = []
    for spec in population.specs:
        orch.register_account(Account(spec.account_id))
        services.append(
            orch.deploy_service(
                spec.account_id,
                ServiceConfig(
                    name=spec.service_name,
                    size=CONTAINER_SIZES[spec.size],
                    max_instances=config.max_instances,
                    concurrency=spec.concurrency,
                ),
            )
        )
    traces = [AutoscaleTrace() for _ in services]
    n_slots = int(math.floor(config.duration_s / PERIOD_S + 1e-9)) + 1
    start = time.perf_counter()
    for slot in range(n_slots):
        elapsed = slot * PERIOD_S
        for spec, pattern, service, trace in zip(
            population.specs, population.patterns, services, traces
        ):
            demand = pattern.concurrency_at(elapsed + spec.phase_s)
            target = min(
                -(-demand // spec.concurrency), config.max_instances
            )
            active = orch.scale_to(service, target, sleep_startup=False)
            trace.points.append(
                AutoscalePoint(
                    elapsed_s=elapsed,
                    demanded_concurrency=demand,
                    target_instances=target,
                    active_instances=len(active),
                    alive_instances=len(orch.alive_instances(service)),
                )
            )
        orch.clock.sleep(PERIOD_S)
    return time.perf_counter() - start


# ----------------------------------------------------------------------
# Event-driven engine
# ----------------------------------------------------------------------
def vectorized_drive(factor: int, population: TenantPopulation) -> float:
    orch = build_env(factor)
    driver = BackgroundDriver(orch, population)
    driver.start()  # deploys (setup parity with the scalar loop)
    start = time.perf_counter()
    orch.clock.sleep(population.config.duration_s + PERIOD_S)
    elapsed = time.perf_counter() - start
    driver.stop()
    return elapsed


def best_of(fn, factor, population):
    return min(fn(factor, population) for _ in range(REPEATS))


def run() -> dict:
    results: dict = {
        "duration_s": DURATION_S,
        "evaluation_period_s": PERIOD_S,
        "tenants": dict(TENANTS),
        "scales": {},
    }
    for label, factor in SCALES.items():
        population = TenantPopulation.generate(traffic_config(TENANTS[label]))
        scalar_t = best_of(scalar_drive, factor, population)
        vector_t = best_of(vectorized_drive, factor, population)
        scale = {
            "n_hosts": scaled_profile(factor).n_hosts,
            "n_tenants": TENANTS[label],
            "scalar_s": round(scalar_t, 6),
            "vectorized_s": round(vector_t, 6),
            "speedup": round(scalar_t / vector_t, 3),
        }
        results["scales"][label] = scale
        print(
            f"{label:>4} ({scale['n_hosts']} hosts, {scale['n_tenants']} tenants): "
            f"scalar {scalar_t:.3f}s, vectorized {vector_t:.3f}s, "
            f"{scale['speedup']}x"
        )
    return results


def check(results: dict) -> list[str]:
    failures = []
    at_16x = results["scales"]["16x"]["speedup"]
    if at_16x < 5.0:
        failures.append(f"16x traffic speedup {at_16x}x is below the 5x floor")
    at_1x = results["scales"]["1x"]["speedup"]
    if at_1x < 1.0:
        failures.append(f"vectorized engine regresses at 1x scale ({at_1x}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_traffic.json", help="output path")
    args = parser.parse_args(argv)
    results = run()
    failures = check(results)
    results["pass"] = not failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
