"""Scalable instance co-location verification (paper §4.3, Fig. 3).

Conventional pairwise covert-channel testing needs O(N^2) serialized tests
for N instances.  The paper's alternative is hierarchical group testing
guided by host fingerprints:

1. Group instances by fingerprint (likely co-located).
2. Verify each group with n-way CTests in chunks of at most ``2m - 1``
   instances: ``m .. 2m - 1`` positives are guaranteed to share one host.
   Groups whose chunks all verify are merged hierarchically through their
   representatives; inconsistent groups fall back to pairwise testing.
   Tests of groups that are *guaranteed* host-disjoint (different CPU
   models; any two distinct Gen 2 fingerprints) run concurrently.
3. Hunt false negatives: one representative per verified cluster, all
   tested at once; positives are refined pairwise and their clusters
   merged.  (Skipped for Gen 2 fingerprints, which cannot have false
   negatives.)

In the common case of accurate fingerprints, the total number of tests is
O(M) where M is the number of occupied hosts, and wall-clock time is the
number of *waves* (a handful) times the per-test duration.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.cloud.api import InstanceHandle
from repro.core.clusters import DisjointSet
from repro.core.covert import CovertChannel, CTestResult
from repro.errors import VerificationError
from repro.faults import DEFAULT_CTEST_RETRY, RetryPolicy
from repro.telemetry import current_telemetry


@dataclass(frozen=True)
class TaggedInstance:
    """An instance handle plus the attacker-side placement hints.

    Attributes
    ----------
    handle:
        The instance.
    fingerprint:
        Any hashable fingerprint (Gen 1 or Gen 2).
    model_key:
        A key such that instances with *different* keys are guaranteed to be
        on different hosts (the CPU model for Gen 1); used to batch tests
        safely.  ``None`` disables cross-group batching for this instance.
    """

    handle: InstanceHandle
    fingerprint: Hashable
    model_key: str | None = None


@dataclass
class VerificationReport:
    """Outcome of a verification run.

    Attributes
    ----------
    clusters:
        Verified co-location clusters (lists of handles); the union covers
        every input instance.
    n_tests / n_batches / busy_seconds:
        Covert-channel cost of this run (batched tests share wall time).
    fallback_groups:
        Fingerprint groups that degenerated to pairwise testing.
    merged_false_negatives:
        Cluster pairs merged by the step-3 false-negative hunt.
    """

    clusters: list[list[InstanceHandle]] = field(default_factory=list)
    n_tests: int = 0
    n_batches: int = 0
    busy_seconds: float = 0.0
    fallback_groups: int = 0
    merged_false_negatives: int = 0

    def cluster_index(self) -> dict[str, int]:
        """Map each instance id to its cluster's index."""
        return {
            handle.instance_id: idx
            for idx, cluster in enumerate(self.clusters)
            for handle in cluster
        }

    @property
    def n_hosts(self) -> int:
        """Number of verified distinct hosts (clusters)."""
        return len(self.clusters)


class _GroupTask:
    """Step-2 state machine for one fingerprint group.

    Phases: ``chunking`` (n-way chunk tests) -> either ``merging``
    (hierarchical representative tests) or ``fallback`` (pairwise within
    the group, with transitivity pruning) -> ``done``.
    """

    def __init__(self, members: list[InstanceHandle], model_key: str | None) -> None:
        self.members = members
        self.model_key = model_key
        self.clusters: list[list[InstanceHandle]] = []
        self.fully_colocated = True
        self.fell_back = False
        # Work queues are deques: both are consumed strictly from the
        # front, and a large group's pairwise fallback pops O(units^2)
        # entries — list.pop(0)'s O(n) shift would make that quadratic
        # again on top of the quadratic pair count.
        self.pending_chunks: deque[list[InstanceHandle]] = deque()
        self.merge_level: list[InstanceHandle] = []
        self.fallback_units: list[list[InstanceHandle]] = []
        self.fallback_ds: DisjointSet | None = None
        self.fallback_pairs: deque[tuple[int, int]] = deque()
        self.fallback_negatives: set[frozenset] = set()
        self.phase = "chunking"

    def done(self) -> bool:
        return self.phase == "done"

    def enter_fallback(self) -> None:
        """Degenerate to pairwise testing within the group.

        Pairs are tested between *representatives of already-verified
        units* (the chunk-phase clusters), not between raw members: two
        units on the same host merge after a single positive test, so the
        sweep costs ~C(units, 2) instead of C(members, 2), further pruned
        by transitivity.
        """
        self.fell_back = True
        self.phase = "fallback"
        self.fallback_units = [list(cluster) for cluster in self.clusters if cluster]
        self.clusters = []
        n = len(self.fallback_units)
        self.fallback_ds = DisjointSet(range(n))
        self.fallback_pairs = deque(
            (i, j) for i in range(n) for j in range(i + 1, n)
        )
        self.fallback_negatives = set()

    def record_fallback_negative(self, i: int, j: int) -> None:
        """Remember that the units' current clusters are on different hosts."""
        assert self.fallback_ds is not None
        self.fallback_negatives.add(
            frozenset((self.fallback_ds.find(i), self.fallback_ds.find(j)))
        )

    def merge_fallback_units(self, i: int, j: int) -> None:
        """Union two units, migrating negative knowledge to the new root.

        Host identity is an equivalence relation, so a cluster's negative
        verdicts extend to everything merged into it.
        """
        assert self.fallback_ds is not None
        old_i, old_j = self.fallback_ds.find(i), self.fallback_ds.find(j)
        self.fallback_ds.union(i, j)
        new_root = self.fallback_ds.find(i)
        migrated = set()
        for pair in self.fallback_negatives:
            others = pair - {old_i, old_j}
            if len(others) == len(pair):
                migrated.add(pair)
            elif others:
                migrated.add(frozenset((new_root, next(iter(others)))))
        self.fallback_negatives = migrated

    def next_fallback_pair(self) -> list[InstanceHandle] | None:
        """Next unit pair not settled by transitivity or negative memory."""
        assert self.fallback_ds is not None
        while self.fallback_pairs:
            i, j = self.fallback_pairs[0]
            root_i, root_j = self.fallback_ds.find(i), self.fallback_ds.find(j)
            settled = root_i == root_j or (
                frozenset((root_i, root_j)) in self.fallback_negatives
            )
            if settled:
                self.fallback_pairs.popleft()
                continue
            return [self.fallback_units[i][0], self.fallback_units[j][0]]
        return None

    def finish_fallback(self) -> None:
        assert self.fallback_ds is not None
        self.clusters = []
        for index_cluster in self.fallback_ds.clusters():
            block: list[InstanceHandle] = []
            for idx in index_cluster:
                block.extend(self.fallback_units[idx])
            self.clusters.append(block)
        self.phase = "done"


class ScalableVerifier:
    """Fingerprint-guided hierarchical co-location verifier.

    Parameters
    ----------
    channel:
        The covert-channel CTest provider.
    threshold_m:
        Contention threshold ``m``; chunks hold at most ``2m - 1``
        instances so a positive set within one chunk is a single host.
    assume_no_false_negatives:
        Set for Gen 2 fingerprints: skips step 3 and batches every group
        concurrently (distinct fingerprints guarantee distinct hosts).
    retry_policy:
        How often to re-run an *inconsistent* test (fewer positives than
        the threshold — physically impossible without noise).  The default
        is the historical single re-run; raise ``max_retries`` when the
        channel is noisy (e.g. under fault injection).  Re-runs are
        counted in ``channel.stats.retries``.
    """

    def __init__(
        self,
        channel: CovertChannel,
        threshold_m: int = 2,
        assume_no_false_negatives: bool = False,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if threshold_m < 2:
            raise VerificationError(f"threshold m must be >= 2, got {threshold_m}")
        self.channel = channel
        self.m = threshold_m
        self.assume_no_false_negatives = assume_no_false_negatives
        self.retry_policy = retry_policy if retry_policy is not None else DEFAULT_CTEST_RETRY

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------
    def verify(self, tagged: Sequence[TaggedInstance]) -> VerificationReport:
        """Produce verified co-location clusters for ``tagged`` instances.

        Safe to call repeatedly on one channel: per-call cost accounting
        is a snapshot/delta over the channel's counters, so sequential
        runs report their own cost while ``channel.stats`` keeps the
        cumulative totals.
        """
        telemetry = current_telemetry()
        report = VerificationReport()
        before = self.channel.stats.snapshot()

        with telemetry.span(
            "verify",
            instances=len(tagged),
            threshold_m=self.m,
            no_false_negatives=self.assume_no_false_negatives,
        ) as span:
            groups = self._group_by_fingerprint(tagged)
            span.set(groups=len(groups))
            clusters = self._verify_groups(groups, report)
            if not self.assume_no_false_negatives:
                clusters = self._merge_false_negatives(clusters, report)
            report.clusters = clusters

            delta = self.channel.stats.since(before)
            report.n_tests = int(delta.get("tests", 0))
            report.busy_seconds = float(delta.get("busy_seconds", 0.0))
            report.n_batches = int(delta.get("batches", 0))
            span.set(
                clusters=len(report.clusters),
                tests=report.n_tests,
                fallback_groups=report.fallback_groups,
                merged_false_negatives=report.merged_false_negatives,
            )
        telemetry.count("verify.calls")
        telemetry.count("verify.tests", report.n_tests)
        telemetry.count("verify.busy_seconds", report.busy_seconds)
        telemetry.count("verify.fallback_groups", report.fallback_groups)
        telemetry.count(
            "verify.merged_false_negatives", report.merged_false_negatives
        )
        return report

    # ------------------------------------------------------------------
    # Step 1: fingerprint grouping
    # ------------------------------------------------------------------
    @staticmethod
    def _group_by_fingerprint(
        tagged: Sequence[TaggedInstance],
    ) -> list[tuple[str | None, list[InstanceHandle]]]:
        members: dict[Hashable, list[InstanceHandle]] = {}
        model_keys: dict[Hashable, str | None] = {}
        for item in tagged:
            fp = item.fingerprint
            if fp not in members:
                members[fp] = []
                model_keys[fp] = item.model_key
            elif model_keys[fp] != item.model_key:
                # Mixed batching keys within one fingerprint group: no
                # single key can guarantee host-disjointness against other
                # groups, so cross-group batching is disabled for the
                # whole group rather than inheriting the first item's key.
                model_keys[fp] = None
            members[fp].append(item.handle)
        return [(model_keys[fp], handles) for fp, handles in members.items()]

    # ------------------------------------------------------------------
    # Step 2: intra-group verification, wave-batched across groups
    # ------------------------------------------------------------------
    def _verify_groups(
        self,
        groups: list[tuple[str | None, list[InstanceHandle]]],
        report: VerificationReport,
    ) -> list[list[InstanceHandle]]:
        tasks: list[_GroupTask] = []
        clusters: list[list[InstanceHandle]] = []
        for model_key, members in groups:
            if len(members) == 1:
                # Nothing to verify inside a singleton group; step 3 still
                # covers potential false negatives against other clusters.
                clusters.append(list(members))
                continue
            task = _GroupTask(members, model_key)
            task.pending_chunks = deque(_balanced_chunks(members, 2 * self.m - 1))
            tasks.append(task)

        telemetry = current_telemetry()
        wave = 0
        # Active-task scheduling: _next_test returns None exactly when a
        # task has finished, so tasks drop out of the wave scan as they
        # complete instead of being re-polled every wave — O(live groups)
        # per wave, not O(all groups), which matters when a 64x wave
        # carries tens of thousands of fingerprint groups.  Request order
        # within a wave is unchanged (task insertion order), so batch
        # planning and the RNG-free verdict sequence are identical.
        active = list(tasks)
        while active:
            requests: list[tuple[_GroupTask, list[InstanceHandle]]] = []
            next_active: list[_GroupTask] = []
            for task in active:
                test = self._next_test(task)
                if test is not None:
                    requests.append((task, test))
                    next_active.append(task)
            active = next_active
            if not requests:
                break
            with telemetry.span(
                "verify.wave", wave=wave, requests=len(requests)
            ) as span:
                batches = self._plan_batches(requests)
                span.set(batches=len(batches))
                for batch in batches:
                    results = self._run_batch([test for _task, test in batch])
                    for (task, _test), result in zip(batch, results):
                        self._feed_result(task, result)
            wave += 1

        for task in tasks:
            if task.fell_back:
                report.fallback_groups += 1
            clusters.extend(task.clusters)
        return clusters

    def _next_test(self, task: _GroupTask) -> list[InstanceHandle] | None:
        """Return the group's next pending test, advancing its phases."""
        if task.done():
            return None
        if task.phase == "chunking":
            if task.pending_chunks:
                return task.pending_chunks[0]
            # All chunks resolved: decide whether to merge or finish.
            if len(task.clusters) <= 1:
                task.phase = "done"
                return None
            if not task.fully_colocated:
                task.enter_fallback()
            else:
                task.phase = "merging"
                task.merge_level = [cluster[0] for cluster in task.clusters]
        if task.phase == "merging":
            if len(task.merge_level) <= 1:
                merged: list[InstanceHandle] = []
                for cluster in task.clusters:
                    merged.extend(cluster)
                task.clusters = [merged]
                task.phase = "done"
                return None
            return task.merge_level[: 2 * self.m - 1]
        if task.phase == "fallback":
            pair = task.next_fallback_pair()
            if pair is None:
                task.finish_fallback()
                return None
            return pair
        return None

    def _feed_result(self, task: _GroupTask, result: CTestResult) -> None:
        """Apply a finished test to the group's state machine."""
        if task.phase == "chunking":
            task.pending_chunks.popleft()
            positives = [h for h, p in zip(result.handles, result.positive) if p]
            negatives = [h for h, p in zip(result.handles, result.positive) if not p]
            if 0 < len(positives) < self._threshold_for(result.handles):
                # Inconsistent even after the channel-level retry; treat
                # the whole chunk as not co-located (conservative).
                negatives = list(result.handles)
                positives = []
            if positives:
                task.clusters.append(positives)
            task.clusters.extend([h] for h in negatives)
            if negatives:
                task.fully_colocated = False
        elif task.phase == "merging":
            if all(result.positive):
                # The tested representatives share one host; collapse them
                # onto the first and continue up the hierarchy.
                survivors = task.merge_level[len(result.handles):]
                task.merge_level = [result.handles[0]] + survivors
            else:
                task.enter_fallback()
        elif task.phase == "fallback":
            assert task.fallback_ds is not None
            i, j = task.fallback_pairs.popleft()
            if all(result.positive):
                task.merge_fallback_units(i, j)
            else:
                task.record_fallback_negative(i, j)

    def _plan_batches(
        self, requests: list[tuple[_GroupTask, list[InstanceHandle]]]
    ) -> list[list[tuple[_GroupTask, list[InstanceHandle]]]]:
        """Greedily pack group tests into concurrency-safe batches.

        Two tests may share a batch when their groups are guaranteed to be
        on different hosts: always true across groups under
        ``assume_no_false_negatives`` (Gen 2), and true for groups with
        different ``model_key`` otherwise (Gen 1).  A ``model_key=None``
        group carries no such guarantee against *anyone*, so it gets an
        exclusive batch (``keys is None`` below) that no other group may
        join — previously a keyed group could slip into it and concurrent
        tests could share a host, silently corrupting verdicts.
        """
        if self.assume_no_false_negatives:
            return [requests]
        batches: list[
            tuple[set[str] | None, list[tuple[_GroupTask, list[InstanceHandle]]]]
        ] = []
        # First-fit packing with a per-key resume index.  A batch that is
        # unacceptable for key k stays unacceptable (it either already
        # contains k or is a keyless exclusive batch), so each key's scan
        # can resume where the last one stopped instead of rescanning the
        # whole batch list — the sizing step stays O(requests) even for
        # the wide single-wave batches the vectorized round engine makes
        # worthwhile.  Placement decisions are identical to a full scan.
        scan_from: dict[str, int] = {}
        for task, test in requests:
            key = task.model_key
            if key is None:
                batches.append((None, [(task, test)]))
                continue
            index = scan_from.get(key, 0)
            placed = False
            while index < len(batches):
                keys, batch = batches[index]
                if keys is not None and key not in keys:
                    batch.append((task, test))
                    keys.add(key)
                    placed = True
                    break
                index += 1
            scan_from[key] = index + 1
            if not placed:
                batches.append(({key}, [(task, test)]))
        return [batch for _keys, batch in batches]

    def _threshold_for(self, chunk: Sequence[InstanceHandle]) -> int:
        """Per-test contention threshold.

        A test can only light up when at least ``threshold`` pressurers
        share a host, so tests smaller than ``m`` (pairs during fallback
        and refinement, small trailing chunks) drop to their own size —
        never below the physical minimum of 2 (paper §4.3 adjusts the
        threshold per test).
        """
        return max(2, min(self.m, len(chunk)))

    def _run_batch(
        self,
        chunks: list[list[InstanceHandle]],
        force_threshold: int | None = None,
    ) -> list[CTestResult]:
        def thresholds(batch: list[list[InstanceHandle]]) -> list[int]:
            if force_threshold is not None:
                return [force_threshold] * len(batch)
            return [self._threshold_for(chunk) for chunk in batch]

        results = self.channel.ctest_batch(chunks, thresholds(chunks))
        # Retry inconsistent results (fewer positives than the threshold is
        # physically impossible without noise), up to the retry policy's
        # budget; each pass only re-runs the still-inconsistent tests.
        limits = thresholds(chunks)
        telemetry = current_telemetry()
        for _attempt in range(self.retry_policy.max_retries):
            retried: list[int] = [
                i
                for i, res in enumerate(results)
                if 0 < res.n_positive < limits[i]
            ]
            if not retried:
                break
            self.channel.stats.retries += len(retried)
            before = self.channel.stats.snapshot()
            with telemetry.span(
                "verify.inconsistent_rerun", attempt=_attempt, tests=len(retried)
            ):
                fresh = self.channel.ctest_batch(
                    [chunks[i] for i in retried], [limits[i] for i in retried]
                )
            telemetry.count("verify.rerun_tests", len(retried))
            telemetry.count(
                "verify.rerun_busy_seconds",
                self.channel.stats.since(before).get("busy_seconds", 0.0),
            )
            for slot, res in zip(retried, fresh):
                results[slot] = res
        return results

    # ------------------------------------------------------------------
    # Step 3: false-negative hunt
    # ------------------------------------------------------------------
    def _merge_false_negatives(
        self,
        clusters: list[list[InstanceHandle]],
        report: VerificationReport,
    ) -> list[list[InstanceHandle]]:
        if len(clusters) <= 1:
            return clusters
        # The sweep uses m = 2 regardless of the step-2 threshold: a false
        # negative may involve just two co-located representatives.
        with current_telemetry().span(
            "verify.false_negative_hunt", clusters=len(clusters)
        ) as span:
            reps = [cluster[0] for cluster in clusters]
            result = self._run_batch([reps], force_threshold=2)[0]
            positives = [idx for idx, flag in enumerate(result.positive) if flag]
            span.set(positives=len(positives))
            if len(positives) < 2:
                return clusters

            # Refine: pairwise tests among the positive representatives
            # reveal which of their clusters actually share hosts.
            ds = DisjointSet(range(len(clusters)))
            for a in range(len(positives)):
                for b in range(a + 1, len(positives)):
                    i, j = positives[a], positives[b]
                    if ds.same(i, j):
                        continue
                    pair = self._run_batch([[reps[i], reps[j]]])[0]
                    if all(pair.positive):
                        ds.union(i, j)
                        report.merged_false_negatives += 1
            span.set(merged=report.merged_false_negatives)
            merged: list[list[InstanceHandle]] = []
            for index_cluster in ds.clusters():
                block: list[InstanceHandle] = []
                for idx in index_cluster:
                    block.extend(clusters[idx])
                merged.append(block)
            return merged


def _balanced_chunks(items: list, size: int) -> list[list]:
    """Split ``items`` into chunks of at most ``size``, avoiding singletons.

    A trailing single-instance chunk is useless to a contention test (one
    pressurer can never exceed the threshold), so the last two chunks are
    rebalanced, e.g. 10 items at size 3 become ``3 + 3 + 2 + 2``.
    """
    if size < 2:
        raise VerificationError(f"chunk size must be >= 2, got {size}")
    chunks = [items[i : i + size] for i in range(0, len(items), size)]
    if len(chunks) >= 2 and len(chunks[-1]) == 1:
        chunks[-1].insert(0, chunks[-2].pop())
    return chunks


def tag_instances(
    pairs: Sequence[tuple[InstanceHandle, Hashable]],
    model_key_fn: Callable[[Hashable], str | None] | None = None,
) -> list[TaggedInstance]:
    """Build :class:`TaggedInstance` records from ``(handle, fingerprint)``
    pairs, deriving the batching key via ``model_key_fn``."""
    tagged = []
    for handle, fingerprint in pairs:
        key = model_key_fn(fingerprint) if model_key_fn is not None else None
        tagged.append(TaggedInstance(handle=handle, fingerprint=fingerprint, model_key=key))
    return tagged
