"""Read-only and per-host facades over the fleet store.

:class:`FleetView` is what observers (experiments, analysis, defenses) use:
cached id tuples for the serving pool and shards, membership masks, and
column reads — no mutation surface.  :class:`HostHandle` is the narrow
per-host mutator the orchestrator goes through on launch, idle-reap, and
kill paths.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.fleet.store import BoolColumn, FleetStore, IndexArray


class HostHandle:
    """Mutable access to one host's scalar columns.

    Handles are cheap, stateless cursors: they hold only the store and the
    host index, so the orchestrator can create one per bookkeeping
    operation without allocation pressure.
    """

    __slots__ = ("_store", "index")

    def __init__(self, store: FleetStore, index: int) -> None:
        self._store = store
        self.index = index

    @property
    def host_id(self) -> str:
        return self._store.host_id(self.index)

    @property
    def load_slots(self) -> float:
        return float(self._store.load_slots[self.index])

    @property
    def capacity_slots(self) -> float:
        return float(self._store.capacity_slots[self.index])

    @property
    def in_pool(self) -> bool:
        return bool(self._store.in_pool[self.index])

    @property
    def shard(self) -> int:
        """Shard index, or -1 when the host is outside every shard."""
        return int(self._store.shard_index[self.index])

    @property
    def free_slots(self) -> float:
        return float(
            self._store.capacity_slots[self.index] - self._store.load_slots[self.index]
        )

    def add_load(self, slots: float) -> None:
        """Commit capacity slots (instance launch)."""
        self._store.add_load(self.index, slots)

    def release_load(self, slots: float) -> None:
        """Release capacity slots, clamping at zero (instance termination)."""
        self._store.release_load(self.index, slots)

    def service_count(self, service_key: str) -> int:
        counts = self._store.peek_service_counts(service_key)
        return counts.get(self.index) if counts is not None else 0

    def inc_service(self, service_key: str) -> None:
        """Count one more instance of a service on this host."""
        self._store.service_counts(service_key).inc(self.index)

    def dec_service(self, service_key: str) -> None:
        """Count one fewer instance of a service; never goes negative."""
        counts = self._store.peek_service_counts(service_key)
        if counts is not None:
            counts.dec(self.index)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HostHandle({self.host_id!r})"


class FleetView:
    """Read-only fleet queries with cached id materializations.

    The view is safe to hand to any layer: it exposes no mutation surface,
    and its id tuples are rebuilt lazily only when the store's pool version
    moves (so hot loops calling :meth:`serving_pool_ids` between rotations
    pay a tuple reuse, not a rebuild).
    """

    def __init__(self, store: FleetStore) -> None:
        self._store = store
        self._pool_ids: tuple[str, ...] = ()
        self._pool_ids_version = -1
        self._shard_ids: dict[int, tuple[str, ...]] = {}

    @property
    def store(self) -> FleetStore:
        """The underlying store (for index-level read access)."""
        return self._store

    @property
    def n_hosts(self) -> int:
        return self._store.n_hosts

    @property
    def ids(self) -> tuple[str, ...]:
        return self._store.ids

    def serving_pool_ids(self) -> tuple[str, ...]:
        """Current serving-pool host ids in pool order (cached tuple)."""
        store = self._store
        if self._pool_ids_version != store.pool_version:
            self._pool_ids = store.ids_of(store.pool_order)
            self._pool_ids_version = store.pool_version
        return self._pool_ids

    def serving_pool_indices(self) -> IndexArray:
        """Current serving-pool indices in pool order.  Treat as read-only."""
        return self._store.pool_order

    def pool_mask(self) -> BoolColumn:
        """Boolean serving-pool membership over the fleet (a copy)."""
        return self._store.in_pool.copy()

    def shard_ids(self, shard: int) -> tuple[str, ...]:
        """One shard's host ids in assignment order (cached tuple).

        Shards are pinned at initial pool assignment, so the cache never
        invalidates.
        """
        cached = self._shard_ids.get(shard)
        if cached is None:
            cached = self._store.ids_of(self._store.shard_members(shard))
            self._shard_ids[shard] = cached
        return cached

    def load_of(self, host_id: str) -> float:
        return float(self._store.load_slots[self._store.index_of(host_id)])

    def mask_for_ids(self, host_ids: Iterable[str]) -> BoolColumn:
        return self._store.mask_for_ids(host_ids)

    def problematic_mask(self) -> BoolColumn:
        """Hosts whose syscall timing defeats frequency estimation (copy)."""
        return self._store.problematic_timing.copy()
