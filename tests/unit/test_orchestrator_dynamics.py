"""Unit tests for orchestrator behaviors beyond the basics: dynamic
placement scatter, helper recruitment integration, startup slowdown, and
per-service bookkeeping."""


from repro.cloud.services import ServiceConfig
from repro.experiments.base import default_env

from tests.conftest import tiny_profile


def deploy_and_connect(env, n, name="svc", account="account-1"):
    client = env.clients[account]
    service_name = client.deploy(ServiceConfig(name=name, max_instances=max(100, n)))
    handles = client.connect(service_name, n)
    return client, service_name, handles


class TestDynamicScatter:
    def make_env(self, dynamism):
        profile = tiny_profile(
            dynamic_placement=True,
            default_dynamism=dynamism,
            plan=tiny_profile().plan,
        )
        return default_env(profile=profile, seed=9)

    def test_zero_dynamism_stays_on_base(self):
        env = default_env(profile=tiny_profile(), seed=9)
        _c, _s, handles = deploy_and_connect(env, 40, account="account-2")
        base = set(env.datacenter.shard_hosts(1))
        hosts = {env.orchestrator.true_host_of(h.instance_id) for h in handles}
        assert hosts <= base

    def test_dynamism_scatters_a_fraction(self):
        profile = tiny_profile(dynamic_placement=True, default_dynamism=0.5)
        env = default_env(profile=profile, seed=9)
        # Unpinned account -> default dynamism applies.
        from repro.cloud.accounts import Account
        from repro.cloud.api import FaaSClient

        env.orchestrator.register_account(Account("stranger"))
        client = FaaSClient(env.orchestrator, "stranger")
        name = client.deploy(ServiceConfig(name="dyn", max_instances=100))
        handles = client.connect(name, 60)
        shard = env.datacenter.shard_for_account("stranger")
        base = set(env.datacenter.shard_hosts(shard))
        hosts = [env.orchestrator.true_host_of(h.instance_id) for h in handles]
        scattered = sum(1 for h in hosts if h not in base)
        assert 10 < scattered < 50  # ~50% of 60

    def test_pinned_dynamism_overrides_default(self):
        profile = tiny_profile(
            dynamic_placement=True,
            default_dynamism=0.9,
            plan=type(tiny_profile().plan)(
                account_shards={"account-1": 0},
                account_dynamism={"account-1": 0.0},
            ),
        )
        env = default_env(profile=profile, seed=9)
        _c, _s, handles = deploy_and_connect(env, 30)
        base = set(env.datacenter.shard_hosts(0))
        hosts = {env.orchestrator.true_host_of(h.instance_id) for h in handles}
        assert hosts <= base


class TestStartupLatency:
    def test_more_instances_take_longer(self, tiny_env_factory):
        def startup_time(n):
            env = tiny_env_factory()
            client = env.clients["account-1"]
            name = client.deploy(ServiceConfig(name="s", max_instances=1000))
            t0 = client.now()
            client.connect(name, n)
            return client.now() - t0

        assert startup_time(50) < startup_time(150)

    def test_slowdown_near_instance_cap(self, tiny_env_factory):
        """Paper §4.4.1: instance creation slows as the count nears 1000."""

        def per_instance_time(n):
            env = tiny_env_factory()
            # Give hosts enough capacity for large fleets.
            env.datacenter.fleet.capacity_slots[:] = 10_000.0
            client = env.clients["account-1"]
            name = client.deploy(ServiceConfig(name="s", max_instances=1000))
            t0 = client.now()
            client.connect(name, n)
            return (client.now() - t0) / n

        assert per_instance_time(900) > per_instance_time(300)


class TestServiceBookkeeping:
    def test_host_counts_decrease_on_termination(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 20)
        orch = tiny_env.orchestrator
        service = client._service(name)
        counts = orch.fleet.service_counts(service.qualified_name)
        assert counts.sum() == 20
        client.kill(name)
        assert counts.sum() == 0

    def test_load_slots_released_on_termination(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 20)
        orch = tiny_env.orchestrator
        host_id = orch.true_host_of(handles[0].instance_id)
        assert orch.host_load_slots(host_id) > 0
        client.kill(name)
        assert orch.host_load_slots(host_id) == 0.0

    def test_relaunch_balances_counting_survivors(self, tiny_env):
        """After partial reaping, a relaunch tops existing hosts up evenly
        instead of stacking everything on the survivors' hosts."""
        client, name, first = deploy_and_connect(tiny_env, 20)
        client.disconnect(name)
        profile = tiny_env.datacenter.profile
        midpoint = (profile.idle_grace + profile.idle_deadline) / 2
        client.wait(midpoint)
        survivors = [h for h in first if h.alive]
        assert 0 < len(survivors) < 20
        second = client.connect(name, 20)
        orch = tiny_env.orchestrator
        from collections import Counter

        counts = Counter(orch.true_host_of(h.instance_id) for h in second)
        assert max(counts.values()) - min(counts.values()) <= 2


class TestIdleReapLifecycle:
    """Stale idle-reap events must be cancelled, not left to no-op: a long
    campaign of connect/disconnect cycles would otherwise pile dead events
    into the scheduler queue forever."""

    def test_disconnect_schedules_one_reap_per_idle_instance(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 10)
        orch = tiny_env.orchestrator
        assert orch.scheduler.pending() == 0
        client.disconnect(name)
        assert orch.scheduler.pending() == 10
        assert len(orch._idle_reaps) == 10

    def test_reconnect_cancels_reaps_of_reused_instances(self, tiny_env):
        client, name, handles = deploy_and_connect(tiny_env, 10)
        orch = tiny_env.orchestrator
        client.disconnect(name)
        client.connect(name, 10)  # reuses the still-warm idle instances
        reused = sum(1 for h in handles if h.alive)
        assert orch.scheduler.pending() == 10 - reused
        assert len(orch._idle_reaps) == 10 - reused

    def test_kill_cancels_pending_reaps(self, tiny_env):
        client, name, _handles = deploy_and_connect(tiny_env, 10)
        orch = tiny_env.orchestrator
        client.disconnect(name)
        client.kill(name)
        assert orch.scheduler.pending() == 0
        assert orch._idle_reaps == {}

    def test_fired_reaps_clear_their_registry_entries(self, tiny_env):
        client, name, _handles = deploy_and_connect(tiny_env, 10)
        orch = tiny_env.orchestrator
        client.disconnect(name)
        profile = tiny_env.datacenter.profile
        client.wait(profile.idle_deadline + 1.0)
        assert orch.scheduler.pending() == 0
        assert orch._idle_reaps == {}

    def test_churn_does_not_grow_scheduler_queue(self, tiny_env):
        client, name, _handles = deploy_and_connect(tiny_env, 8)
        orch = tiny_env.orchestrator
        for _ in range(30):
            client.disconnect(name)
            client.connect(name, 8)
        # Cancelled reaps from every cycle must not accumulate: the queue
        # holds at most the live reaps plus a bounded dead remainder.
        assert orch.scheduler.pending() <= 8
        assert len(orch.scheduler._queue) <= 8 + 64
