"""A simple event scheduler driven by :class:`~repro.simtime.clock.SimClock`.

The FaaS orchestrator uses this to schedule deferred work such as idle
instance termination: events registered for time ``t`` fire as soon as the
clock advances to or past ``t``, in timestamp order.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

from repro.simtime.clock import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """An event queued for execution at a future simulated time.

    Events are ordered by ``(when, sequence)`` so that events scheduled for
    the same instant fire in registration order.
    """

    when: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Prevent this event from firing (no-op if it already fired)."""
        self.cancelled = True


class EventScheduler:
    """Fires callbacks as simulated time passes.

    The scheduler attaches itself to the clock's tick hooks, so any
    ``clock.sleep(...)`` automatically drains the events that became due.

    Examples
    --------
    >>> clock = SimClock()
    >>> sched = EventScheduler(clock)
    >>> fired = []
    >>> _ = sched.call_at(clock.now() + 10.0, lambda: fired.append("a"))
    >>> clock.sleep(5.0); fired
    []
    >>> clock.sleep(5.0); fired
    ['a']
    """

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._queue: list[ScheduledEvent] = []
        self._counter = itertools.count()
        clock.add_tick_hook(self._on_tick)

    def call_at(self, when: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run at absolute simulated time ``when``.

        Events scheduled in the past fire on the next clock advancement.
        Returns the event so callers may :meth:`~ScheduledEvent.cancel` it.
        """
        event = ScheduledEvent(when=float(when), sequence=next(self._counter), action=action)
        heapq.heappush(self._queue, event)
        return event

    def call_after(self, delay: float, action: Callable[[], None]) -> ScheduledEvent:
        """Schedule ``action`` to run ``delay`` seconds from now."""
        return self.call_at(self._clock.now() + delay, action)

    def pending(self) -> int:
        """Return the number of events still waiting to fire."""
        return sum(1 for event in self._queue if not event.cancelled)

    def _on_tick(self, now: float) -> None:
        while self._queue and self._queue[0].when <= now:
            event = heapq.heappop(self._queue)
            if not event.cancelled:
                event.action()

    def detach(self) -> None:
        """Stop observing the clock (used when tearing down a simulation)."""
        self._clock.remove_tick_hook(self._on_tick)
