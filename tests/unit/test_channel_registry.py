"""The covert-channel kind registry: descriptors, resources, factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.covert import (
    COVERT_CHANNEL_CLASSES,
    DvfsFingerprintChannel,
    LlcOccupancyChannel,
    MemoryBusCovertChannel,
    RngCovertChannel,
    covert_channel_for,
)
from repro.errors import VerificationError
from repro.hardware.channels import (
    ChannelKind,
    DvfsFrequencyResource,
    LlcOccupancyResource,
    channel_kind,
    register_channel_kind,
    registered_channel_kinds,
    unregister_channel_kind,
)
from repro.hardware.rng_resource import ContentionResource, RngContentionResource
from tests.conftest import make_host


class TestRegistry:
    def test_builtin_kinds_registered_in_order(self):
        assert registered_channel_kinds() == ("rng", "bus", "llc", "dvfs")

    def test_unknown_kind_error_names_registered_kinds(self):
        with pytest.raises(ValueError) as excinfo:
            channel_kind("cache")
        message = str(excinfo.value)
        assert "unknown covert-channel resource kind: 'cache'" in message
        for name in registered_channel_kinds():
            assert name in message

    def test_host_channel_resource_unknown_kind_names_registered_kinds(self):
        host = make_host()
        with pytest.raises(
            ValueError,
            match=r"unknown covert-channel resource kind: 'cache'; "
            r"registered kinds: .*llc",
        ):
            host.channel_resource("cache")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_channel_kind(
                ChannelKind(
                    name="rng",
                    description="imposter",
                    background_rate=0.5,
                    drop_rate=0.5,
                )
            )

    def test_builtin_kinds_cannot_be_unregistered(self):
        with pytest.raises(ValueError, match="built-in"):
            unregister_channel_kind("rng")

    def test_register_unregister_roundtrip(self):
        kind = ChannelKind(
            name="test-scratch",
            description="scratch kind for this test",
            background_rate=0.01,
            drop_rate=0.01,
        )
        register_channel_kind(kind)
        try:
            assert channel_kind("test-scratch") is kind
            assert "test-scratch" in registered_channel_kinds()
        finally:
            unregister_channel_kind("test-scratch")
        assert "test-scratch" not in registered_channel_kinds()

    def test_legacy_alias_still_importable(self):
        assert RngContentionResource is ContentionResource


class TestBuildResource:
    def test_neutral_multiplier_is_bit_exact(self):
        kind = channel_kind("llc")
        resource = kind.build_resource(1.0)
        assert isinstance(resource, LlcOccupancyResource)
        assert resource.background_rate == kind.background_rate
        assert resource.drop_rate == kind.drop_rate

    def test_multiplier_scales_background_rate_only(self):
        kind = channel_kind("dvfs")
        resource = kind.build_resource(2.0)
        assert resource.background_rate == pytest.approx(0.12)
        assert resource.drop_rate == kind.drop_rate

    def test_multiplier_capped_below_one(self):
        resource = channel_kind("bus").build_resource(100.0)
        assert resource.background_rate == 0.95

    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_nonpositive_multiplier_rejected(self, bad):
        with pytest.raises(ValueError, match="must be > 0"):
            channel_kind("rng").build_resource(bad)


class TestResources:
    def test_saturation_clamps_observed_level(self):
        resource = ContentionResource(
            background_rate=0.0, drop_rate=0.0, saturation=3
        )
        for i in range(10):
            resource.start_pressure(f"i{i}")
        rng = np.random.default_rng(0)
        assert resource.observe("i0", rng) == 3

    def test_saturation_validation(self):
        with pytest.raises(ValueError, match="saturation"):
            ContentionResource(saturation=0)

    def test_llc_defaults_saturate(self):
        assert LlcOccupancyResource().saturation == 8

    def test_dvfs_frequency_map_is_monotone_with_floor(self):
        resource = DvfsFrequencyResource()
        levels = np.arange(0, 40)
        freqs = resource.frequency_of_level(levels)
        assert np.all(np.diff(freqs) <= 0)
        assert freqs[-1] == pytest.approx(
            resource.base_frequency_hz * resource.floor_fraction
        )
        scalar = resource.frequency_of_level(1)
        assert isinstance(scalar, float)
        assert scalar == pytest.approx(
            resource.base_frequency_hz * (1.0 - resource.step_fraction)
        )

    @pytest.mark.parametrize(
        "kwargs",
        [dict(step_fraction=0.0), dict(step_fraction=1.5),
         dict(floor_fraction=0.0), dict(floor_fraction=1.5)],
    )
    def test_dvfs_parameter_validation(self, kwargs):
        with pytest.raises(ValueError):
            DvfsFrequencyResource(**kwargs)


class TestCovertChannelFactory:
    @pytest.mark.parametrize(
        "kind,cls",
        [
            ("rng", RngCovertChannel),
            ("bus", MemoryBusCovertChannel),
            ("llc", LlcOccupancyChannel),
            ("dvfs", DvfsFingerprintChannel),
        ],
    )
    def test_factory_maps_kinds_to_classes(self, kind, cls):
        channel = covert_channel_for(kind)
        assert type(channel) is cls
        assert channel.kind == kind

    def test_factory_forwards_kwargs(self):
        channel = covert_channel_for("llc", total_rounds=10, required_rounds=5)
        assert channel.total_rounds == 10
        assert channel.required_rounds == 5

    def test_factory_unknown_kind_names_known(self):
        with pytest.raises(VerificationError, match="known kinds: .*dvfs"):
            covert_channel_for("cache")

    def test_classes_map_complete(self):
        assert set(COVERT_CHANNEL_CLASSES) == {"rng", "bus", "llc", "dvfs"}
