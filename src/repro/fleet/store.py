"""The columnar fleet store.

All per-host scalar state lives here as NumPy columns indexed by a dense
host index (0..n_hosts-1).  Host ids are resolved to indices once at the
boundary; everything inside the cloud layers is index math.

Mutation rights (enforced by convention, documented in ``docs/API.md``):

* the :class:`~repro.cloud.datacenter.DataCenter` owns pool membership,
  pool ordering, and shard assignment (``set_pool``/``rotate``/
  ``assign_shards``);
* the :class:`~repro.cloud.orchestrator.Orchestrator` owns load slots and
  per-service instance counts (through :class:`~repro.fleet.view.HostHandle`
  or the ``add_load``/``release_load``/``service_counts`` methods);
* everyone else reads, preferably through
  :class:`~repro.fleet.view.FleetView`.

Determinism contract: the store never iterates sets or dicts in a way that
depends on hash order — pool and rotation state are *ordered* index arrays,
so every RNG draw over them is PYTHONHASHSEED-independent.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np
from numpy.typing import NDArray

from repro.errors import CloudError

FloatColumn = NDArray[np.float64]
BoolColumn = NDArray[np.bool_]
IndexArray = NDArray[np.int64]


@dataclass(frozen=True)
class FleetSnapshot:
    """An immutable copy of every mutable fleet column.

    Produced by :meth:`FleetStore.snapshot` and consumed by
    :meth:`FleetStore.restore`; tests use the pair instead of deep-copying
    host dicts.
    """

    load_slots: FloatColumn
    capacity_slots: FloatColumn
    in_pool: BoolColumn
    shard_index: NDArray[np.int32]
    pool_order: IndexArray
    rotated_order: IndexArray
    pool_version: int
    service_counts: dict[str, NDArray[np.int64]]


class FleetStore:
    """Columnar per-host scalar state with a stable id <-> index mapping.

    Parameters
    ----------
    host_ids:
        Host identifiers in fleet order; the position of an id *is* its
        index for the lifetime of the store.
    capacity_slots:
        Per-host capacity in Small-instance slots (scalar broadcasts).
    problematic_timing:
        Per-host noisy-timing flags (paper §4.2); defaults to all-False.
    """

    def __init__(
        self,
        host_ids: Sequence[str],
        capacity_slots: float | Sequence[float] = 160.0,
        problematic_timing: Sequence[bool] | None = None,
    ) -> None:
        self._ids: tuple[str, ...] = tuple(host_ids)
        n = len(self._ids)
        self._index: dict[str, int] = {h: i for i, h in enumerate(self._ids)}
        if len(self._index) != n:
            raise CloudError("duplicate host ids in fleet")
        self.capacity_slots: FloatColumn = np.broadcast_to(
            np.asarray(capacity_slots, dtype=np.float64), (n,)
        ).copy()
        self.load_slots: FloatColumn = np.zeros(n, dtype=np.float64)
        self.in_pool: BoolColumn = np.zeros(n, dtype=bool)
        self.shard_index: NDArray[np.int32] = np.full(n, -1, dtype=np.int32)
        self.problematic_timing: BoolColumn
        if problematic_timing is None:
            self.problematic_timing = np.zeros(n, dtype=bool)
        else:
            self.problematic_timing = np.asarray(problematic_timing, dtype=bool).copy()
            if self.problematic_timing.shape != (n,):
                raise CloudError("problematic_timing length does not match fleet")
        self._all_indices: IndexArray = np.arange(n, dtype=np.int64)
        self._pool_order: IndexArray = np.empty(0, dtype=np.int64)
        self._rotated_order: IndexArray = np.empty(0, dtype=np.int64)
        self._shard_orders: list[IndexArray] = []
        self._pool_version = 0
        self._service_counts: dict[str, NDArray[np.int64]] = {}

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def n_hosts(self) -> int:
        return len(self._ids)

    @property
    def ids(self) -> tuple[str, ...]:
        """All host ids in index order."""
        return self._ids

    @property
    def all_indices(self) -> IndexArray:
        """Every host index, ascending.  Treat as read-only."""
        return self._all_indices

    def index_of(self, host_id: str) -> int:
        """Dense index of a host id."""
        try:
            return self._index[host_id]
        except KeyError:
            raise CloudError(f"unknown host {host_id!r}") from None

    def host_id(self, index: int) -> str:
        """Host id at a dense index."""
        return self._ids[index]

    def indices_of(self, host_ids: Iterable[str]) -> IndexArray:
        """Resolve host ids to an index array, preserving order."""
        index = self._index
        try:
            return np.fromiter(
                (index[h] for h in host_ids), dtype=np.int64
            )
        except KeyError as exc:  # pragma: no cover - caller bug
            raise CloudError(f"unknown host {exc.args[0]!r}") from None

    def ids_of(self, indices: IndexArray) -> tuple[str, ...]:
        """Host ids for an index array, preserving order."""
        ids = self._ids
        return tuple(ids[int(i)] for i in indices)

    def mask_for_ids(self, host_ids: Iterable[str]) -> BoolColumn:
        """Boolean membership mask over the fleet for a set of host ids."""
        mask = np.zeros(self.n_hosts, dtype=bool)
        mask[self.indices_of(host_ids)] = True
        return mask

    def mask_for_indices(self, indices: IndexArray) -> BoolColumn:
        """Boolean membership mask over the fleet for an index array."""
        mask = np.zeros(self.n_hosts, dtype=bool)
        mask[indices] = True
        return mask

    # ------------------------------------------------------------------
    # Serving pool and rotation
    # ------------------------------------------------------------------
    @property
    def pool_order(self) -> IndexArray:
        """Serving-pool host indices in pool order.  Treat as read-only."""
        return self._pool_order

    @property
    def rotated_order(self) -> IndexArray:
        """Rotated-out host indices in rotation order.  Treat as read-only."""
        return self._rotated_order

    @property
    def pool_version(self) -> int:
        """Bumped on every pool-membership change (cache invalidation)."""
        return self._pool_version

    def set_pool(self, pool_indices: IndexArray) -> None:
        """Install the initial serving pool (in the given draw order).

        Hosts not in the pool become the rotated-out set in ascending index
        order — the same order as the pre-columnar list comprehension over
        fleet order.
        """
        pool = np.asarray(pool_indices, dtype=np.int64).copy()
        self.in_pool[:] = False
        self.in_pool[pool] = True
        self._pool_order = pool
        self._rotated_order = self._all_indices[~self.in_pool].copy()
        self._pool_version += 1

    def rotate(self, out_positions: IndexArray, in_positions: IndexArray) -> None:
        """Swap pool members at ``out_positions`` with rotated-out hosts at
        ``in_positions`` (positions into the respective *order* arrays).

        Order semantics match the historical list implementation exactly:
        survivors keep their relative order, swapped-in hosts append in
        draw order, and the displaced hosts append to the rotated-out set
        in draw order.
        """
        pool, rotated = self._pool_order, self._rotated_order
        out_ids = pool[out_positions]
        in_ids = rotated[in_positions]
        keep_pool = np.ones(len(pool), dtype=bool)
        keep_pool[out_positions] = False
        keep_rot = np.ones(len(rotated), dtype=bool)
        keep_rot[in_positions] = False
        self._pool_order = np.concatenate([pool[keep_pool], in_ids])
        self._rotated_order = np.concatenate([rotated[keep_rot], out_ids])
        self.in_pool[out_ids] = False
        self.in_pool[in_ids] = True
        self._pool_version += 1

    # ------------------------------------------------------------------
    # Shards
    # ------------------------------------------------------------------
    def assign_shards(self, shard_size: int, n_shards: int) -> None:
        """Pin shard membership to the current pool order.

        Shard *i* is the ``i``-th ``shard_size``-slice of the pool; the
        assignment is permanent (hosts keep their shard when they rotate
        out, reproducing Observations 3-4).  The assignment-time ordering
        inside each shard is preserved — it determines the order RNG
        tiebreaks are drawn in during placement.
        """
        self.shard_index[:] = -1
        self._shard_orders = []
        for i in range(n_shards):
            members = self._pool_order[i * shard_size : (i + 1) * shard_size].copy()
            self.shard_index[members] = i
            self._shard_orders.append(members)

    @property
    def n_shards(self) -> int:
        return len(self._shard_orders)

    def shard_members(self, shard: int) -> IndexArray:
        """Indices of one shard's hosts, in pool-assignment order.

        Treat as read-only.
        """
        if not 0 <= shard < len(self._shard_orders):
            raise CloudError(
                f"shard {shard} out of range (fleet has {len(self._shard_orders)})"
            )
        return self._shard_orders[shard]

    # ------------------------------------------------------------------
    # Load slots
    # ------------------------------------------------------------------
    def add_load(self, index: int, slots: float) -> None:
        """Commit capacity slots on one host."""
        self.load_slots[index] += slots

    def release_load(self, index: int, slots: float) -> None:
        """Release capacity slots on one host, clamping at zero."""
        remaining = self.load_slots[index] - slots
        self.load_slots[index] = remaining if remaining > 0.0 else 0.0

    # ------------------------------------------------------------------
    # Per-service instance counts
    # ------------------------------------------------------------------
    def service_counts(self, service_key: str) -> NDArray[np.int64]:
        """The per-host instance-count column for one service.

        Allocated lazily (zeros) on first access; the orchestrator mutates
        it through :class:`~repro.fleet.view.HostHandle`.
        """
        counts = self._service_counts.get(service_key)
        if counts is None:
            counts = np.zeros(self.n_hosts, dtype=np.int64)
            self._service_counts[service_key] = counts
        return counts

    def peek_service_counts(self, service_key: str) -> NDArray[np.int64] | None:
        """The count column if it exists, else ``None`` (no allocation)."""
        return self._service_counts.get(service_key)

    # ------------------------------------------------------------------
    # Snapshot / restore
    # ------------------------------------------------------------------
    def snapshot(self) -> FleetSnapshot:
        """Copy every mutable column into an immutable snapshot."""
        return FleetSnapshot(
            load_slots=self.load_slots.copy(),
            capacity_slots=self.capacity_slots.copy(),
            in_pool=self.in_pool.copy(),
            shard_index=self.shard_index.copy(),
            pool_order=self._pool_order.copy(),
            rotated_order=self._rotated_order.copy(),
            pool_version=self._pool_version,
            service_counts={
                key: counts.copy() for key, counts in self._service_counts.items()
            },
        )

    def restore(self, snap: FleetSnapshot) -> None:
        """Restore every mutable column from a snapshot.

        Service-count columns created after the snapshot are dropped;
        columns present in the snapshot are restored in place where
        possible so existing references stay valid.
        """
        self.load_slots[:] = snap.load_slots
        self.capacity_slots[:] = snap.capacity_slots
        self.in_pool[:] = snap.in_pool
        self.shard_index[:] = snap.shard_index
        self._pool_order = snap.pool_order.copy()
        self._rotated_order = snap.rotated_order.copy()
        self._pool_version = snap.pool_version
        for key in list(self._service_counts):
            if key not in snap.service_counts:
                del self._service_counts[key]
        for key, counts in snap.service_counts.items():
            existing = self._service_counts.get(key)
            if existing is None:
                self._service_counts[key] = counts.copy()
            else:
                existing[:] = counts
