"""Unit tests for the memory-bus covert channel (prior-work baseline)."""


from repro.cloud.services import ServiceConfig
from repro.core.covert import MemoryBusCovertChannel, RngCovertChannel


def launch(env, n, name="svc"):
    client = env.attacker
    service = client.deploy(ServiceConfig(name=name))
    handles = client.connect(service, n)
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    return handles, truth


def split_by_host(handles, truth):
    by_host: dict = {}
    for h in handles:
        by_host.setdefault(truth[h.instance_id], []).append(h)
    return by_host


class TestMemoryBusChannel:
    def test_colocated_pair_positive(self, tiny_env):
        handles, truth = launch(tiny_env, 20)
        pair = next(
            hs for hs in split_by_host(handles, truth).values() if len(hs) >= 2
        )[:2]
        result = MemoryBusCovertChannel().ctest(pair, threshold_m=2)
        assert all(result.positive)

    def test_separated_pair_negative(self, tiny_env):
        handles, truth = launch(tiny_env, 10)
        hosts = list(split_by_host(handles, truth).values())
        pair = [hosts[0][0], hosts[1][0]]
        result = MemoryBusCovertChannel().ctest(pair, threshold_m=2)
        assert not any(result.positive)

    def test_slower_than_rng_channel(self):
        assert (
            MemoryBusCovertChannel().seconds_per_test
            > RngCovertChannel().seconds_per_test
        )

    def test_background_noisier_than_rng(self, tiny_env):
        """The bus sees far more spurious contention than the RNG: a lone
        instance pressuring each resource observes elevated levels much
        more often on the bus."""
        handles, truth = launch(tiny_env, 10)
        reps = [members[0] for members in split_by_host(handles, truth).values()]
        lone = reps[0]

        def elevated_fraction(start, observe, stop):
            lone.run(start)
            try:
                readings = [lone.run(observe) for _ in range(400)]
            finally:
                lone.run(stop)
            return sum(1 for level in readings if level >= 2) / len(readings)

        rng_rate = elevated_fraction(
            lambda s: s.start_rng_pressure(),
            lambda s: s.observe_rng_contention(),
            lambda s: s.stop_rng_pressure(),
        )
        bus_rate = elevated_fraction(
            lambda s: s.start_bus_pressure(),
            lambda s: s.observe_bus_contention(),
            lambda s: s.stop_bus_pressure(),
        )
        assert rng_rate < 0.03
        assert bus_rate > 5 * max(rng_rate, 0.005)

    def test_both_channels_agree_on_verdicts(self, tiny_env):
        """Despite the noise, the bus channel's longer integration keeps
        pairwise verdicts correct."""
        handles, truth = launch(tiny_env, 20)
        by_host = split_by_host(handles, truth)
        colocated = next(hs for hs in by_host.values() if len(hs) >= 2)[:2]
        hosts = list(by_host.values())
        separated = [hosts[0][0], hosts[1][0]]
        bus = MemoryBusCovertChannel()
        assert all(bus.ctest(colocated, threshold_m=2).positive)
        assert not any(bus.ctest(separated, threshold_m=2).positive)
