"""Unit tests for the columnar per-service state counts.

Covers the :class:`~repro.fleet.ServiceStateStore` in isolation and its
consistency with the orchestrator's per-instance lists: the store is the
hot-path read the background-traffic engine trusts instead of rebuilding
Python lists, so every instance lifecycle transition must keep the two
views equal.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import units
from repro.cloud.instance import InstanceState
from repro.cloud.services import ServiceConfig
from repro.fleet import ServiceStateStore


class TestServiceStateStore:
    def test_ensure_registers_once(self):
        store = ServiceStateStore()
        index = store.ensure("a/svc")
        assert store.ensure("a/svc") == index
        assert store.n_services == 1
        assert store.index_of("a/svc") == index
        assert store.key_of(index) == "a/svc"

    def test_index_of_unknown_key_raises(self):
        with pytest.raises(KeyError):
            ServiceStateStore().index_of("nobody/svc")

    def test_columns_grow_past_initial_capacity(self):
        store = ServiceStateStore()
        for i in range(200):
            store.on_created(store.ensure(f"acct-{i}/svc"), count=i)
        assert store.n_services == 200
        assert store.active_count(store.index_of("acct-150/svc")) == 150

    def test_transition_arithmetic(self):
        store = ServiceStateStore()
        index = store.ensure("a/svc")
        store.on_created(index, count=3)
        assert (store.active_count(index), store.idle_count(index)) == (3, 0)
        store.on_idled(index)
        store.on_idled(index)
        assert (store.active_count(index), store.idle_count(index)) == (1, 2)
        store.on_activated(index)
        assert (store.active_count(index), store.idle_count(index)) == (2, 1)
        store.on_terminated(index, was_active=True)
        store.on_terminated(index, was_active=False)
        assert (store.active_count(index), store.idle_count(index)) == (1, 0)
        assert store.alive_count(index) == 1

    def test_active_for_is_a_fancy_index(self):
        store = ServiceStateStore()
        for i, count in enumerate((4, 0, 9)):
            store.on_created(store.ensure(f"acct-{i}/svc"), count=count)
        out = store.active_for(np.asarray([2, 0], dtype=np.int64))
        assert out.tolist() == [9, 4]

    def test_totals_span_all_services(self):
        store = ServiceStateStore()
        a = store.ensure("a/svc")
        b = store.ensure("b/svc")
        store.on_created(a, count=2)
        store.on_created(b, count=3)
        store.on_idled(b)
        assert store.totals() == (4, 1)


def assert_counts_match(orch, service):
    """The columnar counts must equal a brute-force instance-list scan."""
    state = orch.service_state
    index = state.index_of(service.qualified_name)
    alive = orch.alive_instances(service)
    active = sum(1 for i in alive if i.state is InstanceState.ACTIVE)
    idle = sum(1 for i in alive if i.state is InstanceState.IDLE)
    assert state.active_count(index) == active
    assert state.idle_count(index) == idle
    assert state.alive_count(index) == len(alive)


class TestOrchestratorConsistency:
    def test_counts_through_full_lifecycle(self, tiny_env):
        orch = tiny_env.orchestrator
        service = orch.deploy_service(
            "account-1", ServiceConfig(name="svc", max_instances=100)
        )
        assert_counts_match(orch, service)

        orch.connect(service, 12)
        assert_counts_match(orch, service)

        orch.scale_to(service, 5)  # scale in: 7 instances idle out
        assert_counts_match(orch, service)

        orch.scale_to(service, 9)  # reuse idles, no new creations needed
        assert_counts_match(orch, service)

        orch.disconnect(service)
        assert_counts_match(orch, service)

        # Let the idle reaper terminate everything.
        tiny_env.clock.sleep(2 * units.HOUR)
        assert_counts_match(orch, service)
        assert orch.service_state.alive_count(
            orch.service_state.index_of(service.qualified_name)
        ) == 0

    def test_counts_after_kill_service(self, tiny_env):
        orch = tiny_env.orchestrator
        service = orch.deploy_service(
            "account-1", ServiceConfig(name="svc", max_instances=50)
        )
        orch.connect(service, 10)
        orch.scale_to(service, 4)
        orch.kill_service(service)
        assert_counts_match(orch, service)
        assert orch.alive_count(service) == 0

    def test_counts_with_partial_reaps(self, tiny_env):
        orch = tiny_env.orchestrator
        service = orch.deploy_service(
            "account-1", ServiceConfig(name="svc", max_instances=50)
        )
        orch.connect(service, 8)
        orch.scale_to(service, 2)
        profile = orch.datacenter.profile
        # Sleep into the reap window: some idles are gone, some remain.
        orch.clock.sleep((profile.idle_grace + profile.idle_deadline) / 2)
        assert_counts_match(orch, service)
