"""End-to-end integration: the full attack pipeline on a small region.

These tests walk the paper's complete flow — deploy, fingerprint, verify
co-location through the covert channel, attack, measure coverage — and
cross-check every black-box conclusion against the simulator's oracle.
"""


from repro import units
from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import naive_launch, optimized_launch
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.verification import ScalableVerifier, TaggedInstance


class TestGen1Pipeline:
    def test_fingerprint_verify_pipeline(self, tiny_env):
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="pipeline"))
        handles = client.connect(service, 50)

        pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
        tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
        report = ScalableVerifier(RngCovertChannel()).verify(tagged)

        truth = {
            h.instance_id: tiny_env.orchestrator.true_host_of(h.instance_id)
            for h in handles
        }
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.fmi == 1.0

    def test_fingerprints_track_hosts_across_launches(self, tiny_env):
        """The decisive advantage over pairwise testing: fingerprints
        recognize the same host in a *later* launch."""
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="track"))
        h1 = client.connect(service, 10)
        fp1 = {fp for _h, fp in fingerprint_gen1_instances(h1, p_boot=1.0)}
        client.disconnect(service)
        client.wait(45 * units.MINUTE)  # all instances reaped, service cold
        h2 = client.connect(service, 10)
        fp2 = {fp for _h, fp in fingerprint_gen1_instances(h2, p_boot=1.0)}
        # Same account -> same base hosts -> same fingerprints.
        assert fp1 & fp2

    def test_full_campaign_gen1(self, tiny_env):
        campaign = ColocationCampaign(
            attacker=tiny_env.attacker,
            victim=tiny_env.victim("account-2"),
            strategy=lambda c: optimized_launch(
                c, n_services=2, launches=4, instances_per_service=16,
                interval_s=10 * units.MINUTE,
            ),
        )
        result = campaign.run(n_victim_instances=10)
        # The tiny region has 20 active hosts; a primed attacker reaches
        # most of them, so coverage must be substantial.
        assert result.coverage >= 0.5
        assert result.attacker_cost_usd > 0


class TestGen2Pipeline:
    def test_gen2_verification_with_collisions(self, tiny_env):
        """Gen 2 fingerprints collide across hosts; the verifier must
        still produce exact clusters."""
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="g2", generation="gen2"))
        handles = client.connect(service, 50)
        pairs = fingerprint_gen2_instances(handles)
        tagged = [TaggedInstance(h, fp) for h, fp in pairs]
        report = ScalableVerifier(
            RngCovertChannel(), assume_no_false_negatives=True
        ).verify(tagged)
        truth = {
            h.instance_id: tiny_env.orchestrator.true_host_of(h.instance_id)
            for h in handles
        }
        confusion = pair_confusion(report.cluster_index(), truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_gen2_fingerprints_never_false_negative(self, tiny_env):
        client = tiny_env.attacker
        service = client.deploy(ServiceConfig(name="g2b", generation="gen2"))
        handles = client.connect(service, 30)
        pairs = fingerprint_gen2_instances(handles)
        orch = tiny_env.orchestrator
        by_host: dict = {}
        for handle, fp in pairs:
            by_host.setdefault(orch.true_host_of(handle.instance_id), set()).add(fp)
        assert all(len(fps) == 1 for fps in by_host.values())

    def test_gen1_and_gen2_share_hosts(self, tiny_env):
        """Paper §5.1 'Other factors': Gen 2 instances can share hosts
        with Gen 1 instances."""
        client = tiny_env.attacker
        s1 = client.deploy(ServiceConfig(name="mix1", generation="gen1"))
        s2 = client.deploy(ServiceConfig(name="mix2", generation="gen2"))
        h1 = client.connect(s1, 10)
        h2 = client.connect(s2, 10)
        orch = tiny_env.orchestrator
        hosts1 = {orch.true_host_of(h.instance_id) for h in h1}
        hosts2 = {orch.true_host_of(h.instance_id) for h in h2}
        assert hosts1 & hosts2


class TestStrategiesCompared:
    def test_optimized_beats_naive_for_cross_account(self, tiny_env_factory):
        def coverage(strategy):
            env = tiny_env_factory(seed=11)
            campaign = ColocationCampaign(
                attacker=env.attacker,
                victim=env.victim("account-2"),
                strategy=strategy,
            )
            return campaign.run(n_victim_instances=10).coverage

        naive_cov = coverage(
            lambda c: naive_launch(c, n_services=2, instances_per_service=16)
        )
        optimized_cov = coverage(
            lambda c: optimized_launch(
                c, n_services=2, launches=4, instances_per_service=16,
                interval_s=10 * units.MINUTE,
            )
        )
        assert naive_cov == 0.0
        assert optimized_cov > 0.3
