"""Unit tests for the uncontrolled-victim probe surface.

Three layers are pinned here: the sandbox physics (``serve_request``
latency bands under memory-bus locking), the platform routing
(``Orchestrator.probe_service`` / ``FaaSClient.probe``), and the
probe-noise fault site that perturbs the whole stack under ``--faults``.
"""

import pytest

from repro.cloud.services import ServiceConfig
from repro.core.attack.locator import probe_latency_threshold
from repro.errors import CloudError, FaultSpecError
from repro.faults import FaultPlan, FaultSpec
from repro.sandbox.base import Sandbox


def _one_instance(env, client, name="svc"):
    client.deploy(ServiceConfig(name=name))
    return client.connect(name, 1)[0]


class TestServeRequest:
    """Latency physics: jitter band unlocked, clean separation when locked."""

    def test_unlocked_band(self, tiny_env):
        handle = _one_instance(tiny_env, tiny_env.attacker)
        p = 0.05
        for _ in range(50):
            latency = handle.run(lambda sb: sb.serve_request(p))
            assert p <= latency <= p * (1.0 + Sandbox.SERVE_JITTER)

    def test_one_locker_band(self, tiny_env):
        victim = _one_instance(tiny_env, tiny_env.victim(), "vic")
        # Lock the victim's own bus from inside: same host by construction.
        victim.run(lambda sb: sb.start_bus_pressure())
        p = 0.05
        low = p * (1.0 + Sandbox.BUS_LOCK_SLOWDOWN)
        high = low * (1.0 + Sandbox.SERVE_JITTER)
        for _ in range(50):
            latency = victim.run(lambda sb: sb.serve_request(p))
            assert low <= latency <= high
        victim.run(lambda sb: sb.stop_bus_pressure())

    def test_threshold_separates_the_bands(self):
        """The absolute threshold sits strictly between the unlocked
        maximum and the one-locker minimum, so a single clean probe is
        decisive in either direction."""
        p = 0.05
        threshold = probe_latency_threshold(p)
        unlocked_max = p * (1.0 + Sandbox.SERVE_JITTER)
        locked_min = p * (1.0 + Sandbox.BUS_LOCK_SLOWDOWN)
        assert unlocked_max < threshold < locked_min

    def test_lockers_stack_additively(self, tiny_env):
        victim = _one_instance(tiny_env, tiny_env.victim(), "vic")
        p = 0.05
        victim.run(lambda sb: sb.start_bus_pressure())
        one = victim.run(lambda sb: sb.serve_request(p))
        assert one >= p * (1.0 + Sandbox.BUS_LOCK_SLOWDOWN)


class TestProbeApi:
    def test_probe_is_cross_account(self, tiny_env):
        """An attacker can time another tenant's service with no ownership
        — the service was never deployed through the attacker's client."""
        _one_instance(tiny_env, tiny_env.victim(), "vic")
        latency = tiny_env.attacker.probe("account-2/vic")
        p = 0.05
        assert p <= latency <= p * (1.0 + Sandbox.SERVE_JITTER)

    def test_probe_advances_wall_clock_by_latency(self, tiny_env):
        _one_instance(tiny_env, tiny_env.victim(), "vic")
        before = tiny_env.clock.now()
        latency = tiny_env.attacker.probe("account-2/vic")
        # abs tolerance: the clock sits at ~1.7e9 s, so adding a 50 ms
        # latency costs a few ULPs of float precision.
        assert tiny_env.clock.now() - before == pytest.approx(latency, abs=1e-6)

    def test_probe_unknown_url_raises(self, tiny_env):
        with pytest.raises(CloudError, match="no service at"):
            tiny_env.attacker.probe("account-2/ghost")

    def test_probe_scales_from_zero(self, tiny_env):
        """Probing a deployed-but-idle service cold-starts one instance,
        like any request to a scale-to-zero platform would."""
        victim = tiny_env.victim()
        victim.deploy(ServiceConfig(name="cold"))
        latency = tiny_env.attacker.probe("account-2/cold")
        assert latency >= 0.05
        service = tiny_env.orchestrator.services["account-2/cold"]
        assert len(tiny_env.orchestrator.alive_instances(service)) == 1

    def test_probe_observes_cross_instance_bus_lock(self, tiny_env):
        """The end-to-end signal: an attacker instance co-resident with
        the victim stretches the victim's probe latency measurably."""
        victim = _one_instance(tiny_env, tiny_env.victim(), "vic")
        threshold = probe_latency_threshold(0.05)
        quiet = tiny_env.attacker.probe("account-2/vic")
        assert quiet < threshold
        victim.run(lambda sb: sb.start_bus_pressure())
        loud = tiny_env.attacker.probe("account-2/vic")
        assert loud >= threshold


class TestDeadLockerCleanup:
    def test_terminate_releases_bus_pressure(self, tiny_env):
        """A locker that dies mid-lock must not pin its host's bus: the
        orchestrator releases hardware pressure on termination, so the
        locator's mid-search-death handling sees a quiet bus again."""
        handle = _one_instance(tiny_env, tiny_env.attacker)
        host_id = handle._instance.host_id
        host = tiny_env.datacenter.host(host_id)
        handle.run(lambda sb: sb.start_bus_pressure())
        handle.run(lambda sb: sb.start_rng_pressure())
        assert host.memory_bus.pressurer_count == 1
        assert host.rng_resource.pressurer_count == 1
        tiny_env.orchestrator._terminate(handle._instance, tiny_env.clock.now())
        assert not handle.alive
        assert host.memory_bus.pressurer_count == 0
        assert host.rng_resource.pressurer_count == 0


class TestProbeNoiseFaultSite:
    def test_parse_aliases(self):
        spec = FaultSpec.parse("probe=0.2,probe_seconds=0.5,seed=9")
        assert spec.probe_noise_rate == 0.2
        assert spec.probe_noise_seconds == 0.5
        assert spec.enabled

    def test_rate_validation(self):
        with pytest.raises(FaultSpecError):
            FaultSpec(probe_noise_rate=1.5)
        with pytest.raises(FaultSpecError):
            FaultSpec(probe_noise_seconds=-0.1)

    def test_probe_delay_is_deterministic_per_token(self):
        plan_a = FaultPlan(FaultSpec(probe_noise_rate=0.5, seed=3))
        plan_b = FaultPlan(FaultSpec(probe_noise_rate=0.5, seed=3))
        tokens = [f"account-2/vic#p{i}" for i in range(64)]
        delays_a = [plan_a.probe_delay_seconds(t) for t in tokens]
        delays_b = [plan_b.probe_delay_seconds(t) for t in tokens]
        assert delays_a == delays_b
        assert set(delays_a) == {0.0, plan_a.spec.probe_noise_seconds}

    def test_counter_and_summary(self):
        plan = FaultPlan(FaultSpec(probe_noise_rate=1.0, seed=1))
        assert plan.probe_delay_seconds("t#p0") > 0.0
        assert plan.counters.probe_noise == 1
        assert plan.counters.total_injected == 1
        assert "probe-noise 1" in plan.counters.summary()

    def test_zero_rate_never_fires(self):
        plan = FaultPlan(FaultSpec(launch_error_rate=0.1, seed=1))
        for i in range(32):
            assert plan.probe_delay_seconds(f"t#p{i}") == 0.0
        assert plan.counters.probe_noise == 0

    def test_noise_injected_end_to_end(self, tiny_env_factory):
        """At rate 1.0 every probe carries the delay; the sequence-number
        token means consecutive probes draw independently (all fire here,
        and the latency floor shifts by exactly the noise delta)."""
        plan = FaultPlan(FaultSpec(probe_noise_rate=1.0, probe_noise_seconds=0.25, seed=5))
        env = tiny_env_factory(seed=5, fault_plan=plan)
        env.victim().deploy(ServiceConfig(name="vic"))
        env.victim().connect("vic", 1)
        for _ in range(3):
            latency = env.attacker.probe("account-2/vic")
            assert latency >= 0.25 + 0.05
        assert plan.counters.probe_noise == 3
