"""Unit tests for the emulated system-call layer."""

import numpy as np
import pytest

from repro.hardware.noise import problematic_noise_model
from repro.sandbox.syscalls import SyscallLayer
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def make_layer(host=None, seed=1):
    host = host or make_host()
    clock = SimClock()
    return SyscallLayer(host, clock, np.random.default_rng(seed)), clock


class TestClockGettime:
    def test_tracks_true_time(self):
        layer, clock = make_layer()
        assert layer.clock_gettime() == pytest.approx(clock.now(), abs=0.05)

    def test_counts_calls(self):
        layer, _clock = make_layer()
        for _ in range(5):
            layer.clock_gettime()
        assert layer.call_count == 5

    def test_sandbox_offset_constant_across_calls(self):
        layer, _clock = make_layer()
        offset = layer.sandbox_offset
        readings = [layer.clock_gettime() for _ in range(50)]
        for reading in readings:
            assert reading == pytest.approx(_clock_now(layer) + offset, abs=1e-3)

    def test_quiet_host_calls_differ_by_nanoseconds(self):
        layer, _clock = make_layer()
        readings = [layer.clock_gettime() for _ in range(100)]
        spread = max(readings) - min(readings)
        assert spread < 5e-6

    def test_problematic_host_calls_differ_by_microseconds(self):
        host = make_host()
        host.syscall_noise = problematic_noise_model()
        layer, _clock = make_layer(host)
        readings = [layer.clock_gettime() for _ in range(200)]
        spread = max(readings) - min(readings)
        assert spread > 1e-6


def _clock_now(layer):
    return layer._clock.now()


class TestNanosleep:
    def test_sleeps_at_least_requested(self):
        layer, clock = make_layer()
        t0 = clock.now()
        layer.nanosleep(2.0)
        assert clock.now() >= t0 + 2.0

    def test_overshoot_is_small(self):
        layer, clock = make_layer()
        t0 = clock.now()
        layer.nanosleep(1.0)
        assert clock.now() - t0 < 1.01

    def test_negative_duration_clamped(self):
        layer, clock = make_layer()
        t0 = clock.now()
        layer.nanosleep(-5.0)
        assert clock.now() >= t0
