"""Attack coverage vs. background utilization (live-region extension).

Every paper experiment ran against a quiet region; this driver measures
what tenant load does to the attacker.  Each cell brings up a region with
a :class:`~repro.cloud.traffic.TrafficConfig` population autoscaling in
the background, lets it reach steady state, then runs the optimized
co-location attack against a victim and oracle-scores coverage exactly
like the coverage matrix (:func:`~repro.experiments.base.host_coverage`).
Sweeping the tenant count maps out coverage as a function of serving-pool
utilization: contended capacity on the victim's shard blocks attacker
placements there, so coverage degrades as the region fills.

The sweep runs on the small ``test-region1`` profile so that realistic
tenant counts (hundreds, not hundreds of thousands) span the utilization
range where capacity effects bite.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.cloud.services import ServiceConfig
from repro.cloud.traffic import TrafficConfig
from repro.errors import NoCapacityError
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env, host_coverage
from repro.runner import CellSpec, EnvSpec, RunnerConfig, run_cells
from repro.telemetry import current_telemetry


@dataclass(frozen=True)
class BackgroundLoadConfig:
    """One coverage-vs-utilization sweep."""

    region: str = "test-region1"
    #: Spans quiet (~0%), loaded (~40%/~80%), and saturated (~90%/~97%)
    #: serving-pool utilization on ``test-region1``'s 6400-slot pool.
    tenant_counts: tuple[int, ...] = (0, 450, 900, 1000, 1100)
    mean_concurrency: float = 4.0
    #: Background steady-state time before the attack begins.
    warmup_s: float = 10 * units.MINUTE
    n_services: int = 3
    launches: int = 3
    instances_per_service: int = 16
    interval_s: float = 10 * units.MINUTE
    n_victim_instances: int = 30
    repetitions: int = 2
    base_seed: int = 900


@dataclass
class LoadPoint:
    """Aggregated outcomes of all repetitions at one tenant count."""

    n_tenants: int
    utilization: list[float] = field(default_factory=list)
    coverage: list[float] = field(default_factory=list)
    attacker_hosts: list[int] = field(default_factory=list)
    background_instances: list[int] = field(default_factory=list)
    rejected: int = 0
    attack_failures: int = 0

    @property
    def mean_utilization(self) -> float:
        return float(np.mean(self.utilization)) if self.utilization else 0.0

    @property
    def mean_coverage(self) -> float:
        return float(np.mean(self.coverage)) if self.coverage else 0.0

    @property
    def mean_attacker_hosts(self) -> float:
        return float(np.mean(self.attacker_hosts)) if self.attacker_hosts else 0.0

    @property
    def mean_background_instances(self) -> float:
        return (
            float(np.mean(self.background_instances))
            if self.background_instances
            else 0.0
        )


@dataclass
class BackgroundLoadSummary:
    """Sweep result: one :class:`LoadPoint` per tenant count."""

    points: list[LoadPoint] = field(default_factory=list)


def _pool_utilization(env) -> float:
    """Committed fraction of serving-pool capacity (works traffic-off)."""
    fleet = env.datacenter.fleet
    pool = fleet.pool_order
    capacity = float(fleet.capacity_slots[pool].sum())
    if capacity <= 0.0:
        return 0.0
    return float(fleet.load_slots[pool].sum()) / capacity


def _cell_traffic(params: dict, seed: int) -> TrafficConfig | None:
    """The cell's background population (``None`` for a quiet region).

    Shared by the cell body and the declared
    :class:`~repro.runner.EnvSpec` so the warm-world identity always
    matches what the cell actually builds.
    """
    n_tenants = params["n_tenants"]
    if not n_tenants:
        return None
    # Keep traffic flowing through warmup plus the whole attack window.
    attack_budget = (params["launches"] + 1) * params["interval_s"]
    return TrafficConfig(
        n_tenants=n_tenants,
        seed=seed + 1_000_003,
        duration_s=params["warmup_s"] + attack_budget,
        mean_concurrency=params["mean_concurrency"],
    )


def _load_cell(params: dict, seed: int) -> dict:
    """One live-region attack; returns raw oracle-scored metrics."""
    traffic = _cell_traffic(params, seed)
    env = default_env(region=params["region"], seed=seed, background=traffic)
    env.clock.sleep(params["warmup_s"])
    utilization = _pool_utilization(env)

    # At high utilization the attack itself can be capacity-blocked: the
    # placement policy runs out of hosts with free slots on the attacker's
    # shard.  That is a *measurement*, not a cell failure — a full region
    # defeats the attack — so score it as zero coverage.
    attack_failed = False
    cost_usd = 0.0
    coverage = 0.0
    attacker_hosts = 0
    try:
        outcome = optimized_launch(
            env.attacker,
            n_services=params["n_services"],
            launches=params["launches"],
            instances_per_service=params["instances_per_service"],
            interval_s=params["interval_s"],
        )
        cost_usd = outcome.cost_usd
        victim = env.victim("account-2")
        victim.deploy(ServiceConfig(name="victim"))
        victim_handles = victim.connect("victim", params["n_victim_instances"])
        coverage, attacker_hosts = host_coverage(env, outcome.handles, victim_handles)
    except NoCapacityError:
        attack_failed = True

    background_instances = 0
    rejected = 0
    if env.background is not None:
        background_instances = env.background.background_instances()
        rejected = env.background.stats.rejected
        env.background.stop()
    return {
        "utilization": utilization,
        "coverage": coverage,
        "attacker_hosts": attacker_hosts,
        "background_instances": background_instances,
        "rejected": rejected,
        "attack_failed": attack_failed,
        "cost_usd": cost_usd,
    }


def _cell_params(config: BackgroundLoadConfig, n_tenants: int) -> dict:
    return {
        "region": config.region,
        "n_tenants": n_tenants,
        "mean_concurrency": config.mean_concurrency,
        "warmup_s": config.warmup_s,
        "n_services": config.n_services,
        "launches": config.launches,
        "instances_per_service": config.instances_per_service,
        "interval_s": config.interval_s,
        "n_victim_instances": config.n_victim_instances,
    }


def run(
    config: BackgroundLoadConfig = BackgroundLoadConfig(),
    runner: RunnerConfig | None = None,
) -> BackgroundLoadSummary:
    """Run the tenant-count sweep; every repetition is an independent cell."""
    specs = [
        CellSpec(
            experiment="background-load",
            fn=_load_cell,
            config=params,
            seed=config.base_seed + rep,
            label=f"tenants-{n_tenants}/rep{rep}",
            # Worlds are distinct per (tenant count, rep) within one
            # sweep, but re-running the sweep in-process (benchmarks, a
            # second figure family) forks the warmed populations instead
            # of regenerating them.
            env=EnvSpec(
                region=config.region,
                seed=config.base_seed + rep,
                background=_cell_traffic(params, config.base_seed + rep),
            ),
        )
        for n_tenants in config.tenant_counts
        for params in (_cell_params(config, n_tenants),)
        for rep in range(config.repetitions)
    ]
    with current_telemetry().span(
        "background_load.sweep",
        cells=len(specs),
        tenants=list(config.tenant_counts),
    ):
        results = run_cells(specs, runner)

    summary = BackgroundLoadSummary()
    cursor = 0
    for n_tenants in config.tenant_counts:
        point = LoadPoint(n_tenants=n_tenants)
        for result in results[cursor : cursor + config.repetitions]:
            value = result.value
            point.utilization.append(value["utilization"])
            point.coverage.append(value["coverage"])
            point.attacker_hosts.append(value["attacker_hosts"])
            point.background_instances.append(value["background_instances"])
            point.rejected += value["rejected"]
            point.attack_failures += int(value["attack_failed"])
        cursor += config.repetitions
        summary.points.append(point)
    return summary
