"""CTest round-engine micro-benchmark: scalar loop vs vectorized engine.

Times one full ``ctest_batch`` window — pressure start, all observation
rounds, pressure stop, verdicts — over synthetic fleets at
1x/4x/16x/64x/256x of an 800-instance campaign wave with the paper's
60-round test window, comparing the scalar per-round loop (one probe
round-trip per instance per round) against the batched ``observe_rounds``
engine (one observation call per host per window).

The two engines are byte-identical by contract (see the identity suites
in ``tests/unit/test_ctest_vectorized.py`` and ``tests/scale``); this
benchmark checks the point of the fast path — that it actually is fast —
and re-asserts verdict equality up to 16x as a sanity belt.  The scalar
loop is timed once (not best-of-3) at 64x and skipped at 256x
(a ~200k-instance wave), where the tier reports the vectorized engine
alone.

Run::

    PYTHONPATH=src python benchmarks/bench_ctest.py --out BENCH_ctest.json

Exit status is non-zero if the vectorized engine is less than 5x faster
than the loop at 16x or 64x scale, or regresses at 1x.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.cloud.api import InstanceHandle
from repro.cloud.instance import ContainerInstance
from repro.core.covert import RngCovertChannel
from repro.hardware.cpu import cpu_catalog
from repro.hardware.host import PhysicalHost
from repro.hardware.tsc import TimestampCounter
from repro.sandbox.gvisor import GVisorSandbox
from repro.simtime.clock import SimClock

PAPER_WAVE_INSTANCES = 800  # one campaign wave's worth of CTest subjects
SCALES = {"1x": 1, "4x": 4, "16x": 16, "64x": 64, "256x": 256}

INSTANCES_PER_HOST = 8
GROUP_SIZE = 5
THRESHOLD_M = 3
TOTAL_ROUNDS = 60
REPEATS = 3
FAST_REPEAT_MAX_FACTOR = 16  # best-of-3 below, single timing above
IDENTITY_MAX_FACTOR = 16  # beyond this, tests/scale owns the identity proof
LOOP_BASELINE_MAX_FACTOR = 64  # the scalar loop is minutes-slow at 256x


def build_groups(n_instances: int, seed: int) -> list[list[InstanceHandle]]:
    """A synthetic placed fleet: real hosts, sandboxes, and handles, built
    directly (no orchestrator) so the benchmark times only the engines.

    Sequential slicing into fixed-size groups deliberately straddles host
    boundaries, so each batch mixes fully co-located groups with split
    ones — both verdict outcomes stay exercised.
    """
    clock = SimClock()
    cpu = cpu_catalog()[0]
    handles: list[InstanceHandle] = []
    n_hosts = -(-n_instances // INSTANCES_PER_HOST)
    for host_index in range(n_hosts):
        host = PhysicalHost(
            host_id=f"bench-{host_index:05d}",
            cpu=cpu,
            tsc=TimestampCounter(
                boot_time=0.0,
                actual_frequency_hz=cpu.reported_tsc_frequency_hz,
            ),
        )
        on_host = min(
            INSTANCES_PER_HOST, n_instances - host_index * INSTANCES_PER_HOST
        )
        for slot in range(on_host):
            serial = host_index * INSTANCES_PER_HOST + slot
            instance_id = f"i{serial:06d}"
            sandbox = GVisorSandbox(
                host=host,
                clock=clock,
                rng=np.random.default_rng(seed * 1_000_003 + serial),
                sandbox_id=instance_id,
            )
            instance = ContainerInstance(
                instance_id=instance_id,
                service=None,
                host_id=host.host_id,
                sandbox=sandbox,
                created_at=clock.now(),
            )
            handles.append(InstanceHandle(instance))
    return [
        handles[i : i + GROUP_SIZE] for i in range(0, len(handles), GROUP_SIZE)
    ]


def run_engine(vectorized: bool, n_instances: int, seed: int = 0):
    groups = build_groups(n_instances, seed)
    channel = RngCovertChannel(total_rounds=TOTAL_ROUNDS, vectorized=vectorized)
    results = channel.ctest_batch(groups, THRESHOLD_M)
    return [result.positive for result in results]


def best_of(vectorized: bool, n_instances: int, repeats: int = REPEATS) -> float:
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        run_engine(vectorized, n_instances)
        timings.append(time.perf_counter() - start)
    return min(timings)


def run() -> dict:
    results: dict = {
        "paper_wave_instances": PAPER_WAVE_INSTANCES,
        "workload": {
            "instances_per_host": INSTANCES_PER_HOST,
            "group_size": GROUP_SIZE,
            "threshold_m": THRESHOLD_M,
            "total_rounds": TOTAL_ROUNDS,
        },
        "scales": {},
    }
    for label, factor in SCALES.items():
        n_instances = PAPER_WAVE_INSTANCES * factor
        repeats = REPEATS if factor <= FAST_REPEAT_MAX_FACTOR else 1
        if factor <= IDENTITY_MAX_FACTOR:
            if run_engine(False, n_instances) != run_engine(True, n_instances):
                raise AssertionError(
                    f"engine verdicts diverged at {label} — identity broken"
                )
        vector_t = best_of(True, n_instances, repeats)
        scale = {
            "n_instances": n_instances,
            "repeats": repeats,
            "vectorized_s": round(vector_t, 6),
        }
        if factor <= LOOP_BASELINE_MAX_FACTOR:
            loop_t = best_of(False, n_instances, repeats)
            scale["loop_s"] = round(loop_t, 6)
            scale["speedup"] = round(loop_t / vector_t, 3)
            summary = (
                f"loop {loop_t:.3f}s, vectorized {vector_t:.3f}s, "
                f"{scale['speedup']}x"
            )
        else:
            summary = f"vectorized {vector_t:.3f}s (loop baseline skipped)"
        results["scales"][label] = scale
        print(
            f"{label:>4} ({n_instances} instances, {TOTAL_ROUNDS} rounds): "
            + summary
        )
    return results


def check(results: dict) -> list[str]:
    failures = []
    for label in ("16x", "64x"):
        speedup = results["scales"][label]["speedup"]
        if speedup < 5.0:
            failures.append(
                f"{label} vectorized speedup {speedup}x is below the 5x floor"
            )
    at_1x = results["scales"]["1x"]["speedup"]
    if at_1x < 1.0:
        failures.append(f"vectorized engine regresses at 1x scale ({at_1x}x)")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_ctest.json", help="output path")
    args = parser.parse_args(argv)
    results = run()
    failures = check(results)
    results["pass"] = not failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
