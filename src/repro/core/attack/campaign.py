"""End-to-end co-location campaigns: attacker strategy vs. victim service.

A campaign (paper §5.2) proceeds in three acts:

1. the attacker runs a launching strategy, ending with a fleet of connected
   instances;
2. the victim deploys a service and scales it to N instances (simulating
   the attacker invoking the victim's public interface);
3. co-location between the two fleets is verified through the covert
   channel, and the *victim instance coverage* — the fraction of victim
   instances sharing a host with at least one attacker instance — is
   computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.analysis.metrics import victim_instance_coverage
from repro.cloud.api import FaaSClient, InstanceHandle
from repro.cloud.services import SMALL, ContainerSize, ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import (
    Gen1Fingerprint,
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.attack.strategies import LaunchOutcome
from repro.core.verification import ScalableVerifier, TaggedInstance, VerificationReport
from repro.telemetry import current_telemetry


@dataclass
class CoverageResult:
    """Outcome of one co-location campaign.

    Attributes
    ----------
    coverage:
        Victim instance coverage in [0, 1].
    attacker_hosts / victim_hosts:
        Verified host (cluster) counts occupied by each party.
    shared_hosts:
        Hosts holding instances of both parties.
    attacker_cost_usd:
        The attacker's bill for the strategy phase.
    verification:
        The verification report (test counts, wall time).
    """

    coverage: float
    attacker_hosts: int
    victim_hosts: int
    shared_hosts: int
    attacker_cost_usd: float
    verification: VerificationReport


class ColocationCampaign:
    """Drives one attacker-vs-victim co-location experiment.

    Parameters
    ----------
    attacker / victim:
        FaaS clients for the two accounts (same region).
    strategy:
        Callable running the attacker's launching strategy, e.g.
        ``lambda client: optimized_launch(client)``.
    generation:
        Execution environment for *both* parties ("gen1"/"gen2").
    p_boot:
        Gen 1 rounding precision used for fingerprint grouping.
    """

    def __init__(
        self,
        attacker: FaaSClient,
        victim: FaaSClient,
        strategy: Callable[[FaaSClient], LaunchOutcome],
        generation: str = "gen1",
        p_boot: float = 1.0,
    ) -> None:
        if attacker.region != victim.region:
            raise ValueError(
                f"attacker ({attacker.region}) and victim ({victim.region}) "
                "must target the same region"
            )
        self.attacker = attacker
        self.victim = victim
        self.strategy = strategy
        self.generation = generation
        self.p_boot = p_boot

    def run(
        self,
        n_victim_instances: int = 100,
        victim_size: ContainerSize = SMALL,
        victim_service_name: str = "victim",
        channel: RngCovertChannel | None = None,
    ) -> CoverageResult:
        """Execute the campaign and measure victim instance coverage."""
        telemetry = current_telemetry()
        with telemetry.span(
            "campaign", generation=self.generation, victims=n_victim_instances
        ) as campaign_span:
            with telemetry.span("campaign.attacker_launch") as span:
                outcome = self.strategy(self.attacker)
                span.set(
                    instances=len(outcome.handles),
                    cost_usd=round(outcome.cost_usd, 6),
                )

            with telemetry.span(
                "campaign.victim_scale", target=n_victim_instances
            ) as span:
                victim_service = self.victim.deploy(
                    ServiceConfig(
                        name=victim_service_name,
                        size=victim_size,
                        generation=self.generation,
                        max_instances=max(100, n_victim_instances),
                    )
                )
                victim_handles = self.victim.connect(
                    victim_service, n_victim_instances
                )
                span.set(connected=len(victim_handles))

            with telemetry.span("campaign.verification") as span:
                report = self._verify(outcome.handles, victim_handles, channel)
                span.set(clusters=len(report.clusters), tests=report.n_tests)

            cluster_of = report.cluster_index()
            attacker_ids = [h.instance_id for h in outcome.handles if h.alive]
            victim_ids = [h.instance_id for h in victim_handles]
            coverage = victim_instance_coverage(victim_ids, attacker_ids, cluster_of)

            attacker_clusters = {
                cluster_of[i] for i in attacker_ids if i in cluster_of
            }
            victim_clusters = {cluster_of[i] for i in victim_ids if i in cluster_of}
            campaign_span.set(
                coverage=round(coverage, 6),
                shared_hosts=len(attacker_clusters & victim_clusters),
            )
            telemetry.count("campaign.runs")
            telemetry.observe("campaign.coverage", coverage)
            return CoverageResult(
                coverage=coverage,
                attacker_hosts=len(attacker_clusters),
                victim_hosts=len(victim_clusters),
                shared_hosts=len(attacker_clusters & victim_clusters),
                attacker_cost_usd=outcome.cost_usd,
                verification=report,
            )

    def _verify(
        self,
        attacker_handles: list[InstanceHandle],
        victim_handles: list[InstanceHandle],
        channel: RngCovertChannel | None,
    ) -> VerificationReport:
        combined = [h for h in attacker_handles if h.alive] + list(victim_handles)
        with current_telemetry().span(
            "campaign.fingerprint",
            generation=self.generation,
            instances=len(combined),
        ) as span:
            if self.generation == "gen2":
                tagged_pairs = fingerprint_gen2_instances(combined)
                tagged = [
                    TaggedInstance(handle=h, fingerprint=fp)
                    for h, fp in tagged_pairs
                ]
                verifier = ScalableVerifier(
                    channel or RngCovertChannel(), assume_no_false_negatives=True
                )
            else:
                tagged_pairs = fingerprint_gen1_instances(
                    combined, p_boot=self.p_boot
                )
                tagged = [
                    TaggedInstance(handle=h, fingerprint=fp, model_key=fp.cpu_model)
                    for h, fp in tagged_pairs
                    if isinstance(fp, Gen1Fingerprint)
                ]
                verifier = ScalableVerifier(channel or RngCovertChannel())
            span.set(tagged=len(tagged))
        return verifier.verify(tagged)
