"""Unit tests for the black-box FaaS client API."""

import pytest

from repro.cloud.api import FaaSClient
from repro.cloud.services import ServiceConfig
from repro.errors import CloudError, InstanceGoneError


class TestFaaSClient:
    def test_requires_registered_account(self, tiny_env):
        with pytest.raises(CloudError):
            FaaSClient(tiny_env.orchestrator, "ghost-account")

    def test_region_property(self, tiny_env):
        assert tiny_env.attacker.region == "tiny"

    def test_deploy_and_connect(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(name, 5)
        assert len(handles) == 5
        assert all(h.alive for h in handles)

    def test_unknown_service_rejected(self, tiny_env):
        with pytest.raises(CloudError):
            tiny_env.attacker.connect("nope", 1)

    def test_services_are_per_client(self, tiny_env):
        tiny_env.attacker.deploy(ServiceConfig(name="mine"))
        with pytest.raises(CloudError):
            tiny_env.victim("account-2").connect("mine", 1)

    def test_service_names_listing(self, tiny_env):
        client = tiny_env.attacker
        client.deploy(ServiceConfig(name="b"))
        client.deploy(ServiceConfig(name="a"))
        assert client.service_names() == ["a", "b"]

    def test_wait_advances_time(self, tiny_env):
        t0 = tiny_env.attacker.now()
        tiny_env.attacker.wait(30.0)
        assert tiny_env.attacker.now() == t0 + 30.0

    def test_handles_do_not_expose_host(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handle = client.connect(name, 1)[0]
        assert not hasattr(handle, "host_id")

    def test_run_probe_inside_instance(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handle = client.connect(name, 1)[0]
        model = handle.run(lambda sandbox: sandbox.cpuid_model())
        assert "@" in model

    def test_run_on_dead_instance_raises(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handle = client.connect(name, 1)[0]
        client.kill(name)
        assert not handle.alive
        with pytest.raises(InstanceGoneError):
            handle.run(lambda sandbox: sandbox.rdtsc())

    def test_generation_surface(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc2", generation="gen2"))
        handle = client.connect(name, 1)[0]
        assert handle.generation == "gen2"

    def test_cost_and_reset(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        client.connect(name, 5)
        client.wait(100.0)
        client.disconnect(name)
        assert client.cost_usd > 0
        client.reset_billing()
        assert client.cost_usd == 0.0

    def test_sigterm_reporter(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handle = client.connect(name, 1)[0]
        seen = []
        handle.on_sigterm(seen.append)
        client.kill(name)
        assert len(seen) == 1
