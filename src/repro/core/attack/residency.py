"""Keeping attacker instances resident over long periods.

A primed fleet solves co-location *now*, but Cloud Run reaps idle
instances within ~12 minutes (Fig. 6), and keeping them actively connected
bills every second.  The cheap way to hold ground is a *keep-alive loop*:
let instances idle (free) and reconnect each service briefly before the
idle grace period can expire, paying only for the refresh blips.

This is the attacker-side counterpart of the victim's own longevity: a
victim under steady traffic keeps its hosts for hours, so an attacker who
wants to monitor it all day must stay resident just as long.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.api import FaaSClient, InstanceHandle


@dataclass
class ResidencyReport:
    """What a keep-alive campaign achieved.

    Attributes
    ----------
    duration_s:
        How long residency was maintained.
    refreshes:
        Keep-alive rounds performed.
    survival_by_round:
        Fraction of the original fleet still alive after each refresh.
    cost_usd:
        Billing for the maintenance period (excluding the initial launch).
    """

    duration_s: float = 0.0
    refreshes: int = 0
    survival_by_round: list[float] = field(default_factory=list)
    cost_usd: float = 0.0

    @property
    def final_survival(self) -> float:
        return self.survival_by_round[-1] if self.survival_by_round else 0.0

    @property
    def cost_per_hour_usd(self) -> float:
        hours = self.duration_s / units.HOUR
        return self.cost_usd / hours if hours > 0 else 0.0


class ResidencyMaintainer:
    """Keeps a set of services' instances alive via periodic reconnects.

    Parameters
    ----------
    client:
        The attacker's FaaS client.
    service_names:
        Services whose fleets to keep alive.
    instances_per_service:
        Connection count used on each refresh.
    refresh_period_s:
        Time between refreshes.  Must undercut the platform's idle grace
        period or instances start dying between refreshes; the default
        matches Cloud Run's ~2-minute grace with some margin.
    hold_s:
        How long each refresh stays connected (the billable blip).
    """

    def __init__(
        self,
        client: FaaSClient,
        service_names: list[str],
        instances_per_service: int,
        refresh_period_s: float = 100.0,
        hold_s: float = 1.0,
    ) -> None:
        if refresh_period_s <= 0:
            raise ValueError(f"refresh period must be positive: {refresh_period_s!r}")
        if not service_names:
            raise ValueError("need at least one service to maintain")
        self.client = client
        self.service_names = list(service_names)
        self.instances_per_service = instances_per_service
        self.refresh_period_s = refresh_period_s
        self.hold_s = hold_s

    def maintain(self, duration_s: float) -> ResidencyReport:
        """Run the keep-alive loop for ``duration_s``.

        The services are released (disconnected) between refreshes so idle
        time stays free; each refresh re-pins the surviving instances and
        replaces any that were reaped.
        """
        report = ResidencyReport()
        cost0 = self.client.cost_usd
        baseline: list[InstanceHandle] = []
        start = self.client.now()
        elapsed = 0.0
        while elapsed < duration_s:
            handles: list[InstanceHandle] = []
            for name in self.service_names:
                handles.extend(
                    self.client.connect(name, self.instances_per_service)
                )
                self.client.wait(self.hold_s)
                self.client.disconnect(name)
            if not baseline:
                baseline = handles
            report.refreshes += 1
            alive = sum(1 for h in baseline if h.alive)
            report.survival_by_round.append(alive / len(baseline))
            remaining = start + report.refreshes * self.refresh_period_s
            self.client.wait(max(0.0, remaining - self.client.now()))
            elapsed = self.client.now() - start
        report.duration_s = elapsed
        report.cost_usd = self.client.cost_usd - cost0
        return report
