"""Physical hosts and fleet construction.

A :class:`PhysicalHost` bundles the hardware a sandboxed attacker can touch:
the CPU identification surface, the invariant TSC, and the shared RNG.  The
:func:`build_fleet` factory draws a datacenter's worth of hosts with
realistic diversity:

* boot times spread over weeks, with a fraction booted in *maintenance
  waves* (many hosts rebooted within the same hour) — this is what makes
  very coarse boot-time rounding collide distinct hosts (Fig. 4, right end);
* a constant per-host reported-vs-actual TSC frequency error (drift);
* ~10% "problematic" hosts whose syscall timing is too noisy for the
  measured-frequency method (paper §4.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro import units
from repro.hardware.channels import channel_kind
from repro.hardware.cpu import CPUModel, DEFAULT_CPU_CATALOG
from repro.hardware.noise import (
    SyscallNoiseModel,
    TscErrorModel,
    problematic_noise_model,
    quiet_noise_model,
)
from repro.hardware.cpu_activity import CpuActivityMeter
from repro.hardware.rng_resource import ContentionResource, RngContentionResource
from repro.hardware.tsc import TimestampCounter


@dataclass
class PhysicalHost:
    """One physical machine in a FaaS datacenter.

    Attributes
    ----------
    host_id:
        Stable identifier; used only by the simulator and the ground-truth
        bookkeeping, never visible to sandboxed guests.
    cpu:
        The CPU model exposed through ``cpuid``.
    tsc:
        The host's invariant timestamp counter.
    rng_resource:
        The shared hardware RNG contention domain (the paper's covert
        channel: background contention under 1%).
    memory_bus:
        The shared memory-bus contention domain (the prior-work channel of
        Wu et al./Varadarajan et al.): same semantics, but ordinary tenant
        traffic makes background contention far more common, which is why
        the paper prefers the RNG.
    syscall_noise:
        Jitter model applied to sandboxed wall-clock reads on this host.
    problematic_timing:
        True for hosts whose timing noise defeats measured-frequency
        estimation.
    capacity_slots:
        How many Small-sized container instances the host can hold; larger
        containers consume proportionally more slots.
    channel_noise:
        Per-channel-kind background-noise multipliers (a
        :class:`~repro.cloud.platform.PlatformProfile` knob).  Kinds absent
        from the mapping keep their registry-default rates; an empty
        mapping (the default) leaves every eagerly-built resource object
        untouched, preserving byte-identity.
    """

    host_id: str
    cpu: CPUModel
    tsc: TimestampCounter
    rng_resource: ContentionResource = field(default_factory=RngContentionResource)
    memory_bus: ContentionResource = field(
        default_factory=lambda: RngContentionResource(
            background_rate=0.18, drop_rate=0.05
        )
    )
    cpu_activity: CpuActivityMeter = field(default_factory=CpuActivityMeter)
    syscall_noise: SyscallNoiseModel = field(default_factory=quiet_noise_model)
    problematic_timing: bool = False
    capacity_slots: float = 160.0
    channel_noise: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Platform noise on the two eagerly-built channels replaces the
        # field object *before* anything registers pressure, so the field
        # and the channel table always name the same resource.  With no
        # multiplier (or exactly 1.0) the default-factory objects survive
        # untouched — byte-identical to the pre-registry host.
        for kind_name in ("rng", "bus"):
            multiplier = float(self.channel_noise.get(kind_name, 1.0))
            if multiplier != 1.0:
                resource = channel_kind(kind_name).build_resource(multiplier)
                if kind_name == "rng":
                    self.rng_resource = resource
                else:
                    self.memory_bus = resource
        #: kind name -> shared contention domain.  Seeded with the two
        #: eager field resources; other registered kinds are built lazily
        #: on first use (so merely *registering* a kind never perturbs any
        #: existing resource or RNG stream).
        self._channels: dict[str, ContentionResource] = {
            "rng": self.rng_resource,
            "bus": self.memory_bus,
        }

    @property
    def boot_time(self) -> float:
        """Wall-clock boot time of this host."""
        return self.tsc.boot_time

    def channel_resource(self, kind: str) -> ContentionResource:
        """The shared contention domain for one covert-channel kind.

        Kinds come from the :mod:`repro.hardware.channels` registry
        (``"rng"``, ``"bus"``, ``"llc"``, ``"dvfs"``, plus anything
        registered later); the batched CTest engine resolves its per-host
        observation target through this single lookup, so a new channel
        kind needs only a registry entry.  Unknown kinds raise a
        ``ValueError`` naming the registered kinds.
        """
        resource = self._channels.get(kind)
        if resource is None:
            descriptor = channel_kind(kind)
            resource = descriptor.build_resource(
                float(self.channel_noise.get(kind, 1.0))
            )
            self._channels[kind] = resource
        return resource

    def release_pressure(self, instance_id: str) -> None:
        """Unregister an instance from every instantiated channel domain.

        Termination-time cleanup: a destroyed container's guest loops stop
        executing, so whatever hardware pressure it still held is released
        with it.  Only channels this host has actually served are touched
        (lazily-built kinds that never came up have no pressurers).
        """
        for resource in self._channels.values():
            resource.stop_pressure(instance_id)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PhysicalHost({self.host_id!r}, cpu={self.cpu.name!r})"


@dataclass(frozen=True)
class HostFleetConfig:
    """Knobs for synthesizing a datacenter host fleet.

    Attributes
    ----------
    n_hosts:
        Fleet size.
    boot_window_days:
        Hosts booted between ``now - boot_window_days`` and ``now - 1`` day.
    maintenance_wave_fraction:
        Fraction of hosts booted during one of ``n_maintenance_waves``
        fleet-wide reboot waves (within +-30 minutes of the wave).
    n_maintenance_waves:
        Number of reboot waves inside the boot window.
    problematic_fraction:
        Fraction of hosts with unusable measured-frequency timing (~10%).
    tsc_error:
        Distribution of the per-host reported-frequency error.
    capacity_slots:
        Per-host capacity in Small-instance slots.
    cpu_catalog:
        ``(model, weight)`` pairs to draw CPU models from.
    channel_noise:
        ``(kind, multiplier)`` pairs applied to every host's channel
        background rates (see :attr:`PhysicalHost.channel_noise`); a tuple
        so the config stays frozen/hashable.  Empty means registry
        defaults everywhere.
    """

    n_hosts: int
    boot_window_days: float = 60.0
    maintenance_wave_fraction: float = 0.65
    n_maintenance_waves: int = 5
    problematic_fraction: float = 0.10
    tsc_error: TscErrorModel = field(default_factory=TscErrorModel)
    capacity_slots: float = 160.0
    cpu_catalog: tuple[tuple[CPUModel, float], ...] = DEFAULT_CPU_CATALOG
    channel_noise: tuple[tuple[str, float], ...] = ()


def _sample_boot_times(
    config: HostFleetConfig, now: float, rng: np.random.Generator
) -> np.ndarray:
    """Draw boot times mixing uniform background with maintenance waves."""
    window = config.boot_window_days * units.DAY
    earliest = now - window
    latest = now - 1.0 * units.DAY
    wave_times = rng.uniform(earliest, latest, size=config.n_maintenance_waves)

    boots = np.empty(config.n_hosts)
    in_wave = rng.random(config.n_hosts) < config.maintenance_wave_fraction
    n_wave = int(in_wave.sum())
    # Wave members boot within +-30 minutes of their wave's start.
    chosen_waves = rng.choice(wave_times, size=n_wave)
    boots[in_wave] = chosen_waves + rng.uniform(
        -30 * units.MINUTE, 30 * units.MINUTE, size=n_wave
    )
    boots[~in_wave] = rng.uniform(earliest, latest, size=config.n_hosts - n_wave)
    return np.clip(boots, earliest - units.HOUR, latest)


def build_fleet(
    config: HostFleetConfig,
    now: float,
    rng: np.random.Generator,
    id_prefix: str = "host",
) -> list[PhysicalHost]:
    """Synthesize a fleet of :class:`PhysicalHost` objects.

    Parameters
    ----------
    config:
        Fleet composition knobs.
    now:
        Current simulated time; boot times are drawn in the past relative
        to it.
    rng:
        Source of randomness (seed it for reproducibility).
    id_prefix:
        Prefix for generated host identifiers.
    """
    models = [model for model, _ in config.cpu_catalog]
    weights = np.array([weight for _, weight in config.cpu_catalog], dtype=float)
    weights /= weights.sum()
    model_idx = rng.choice(len(models), size=config.n_hosts, p=weights)
    boot_times = _sample_boot_times(config, now, rng)
    channel_noise = dict(config.channel_noise)

    hosts: list[PhysicalHost] = []
    for i in range(config.n_hosts):
        cpu = models[int(model_idx[i])]
        epsilon = config.tsc_error.sample_epsilon(rng)
        actual_freq = cpu.reported_tsc_frequency_hz - epsilon
        problematic = bool(rng.random() < config.problematic_fraction)
        hosts.append(
            PhysicalHost(
                host_id=f"{id_prefix}-{i:05d}",
                cpu=cpu,
                tsc=TimestampCounter(
                    boot_time=float(boot_times[i]), actual_frequency_hz=actual_freq
                ),
                syscall_noise=(
                    problematic_noise_model() if problematic else quiet_noise_model()
                ),
                problematic_timing=problematic,
                capacity_slots=config.capacity_slots,
                channel_noise=channel_noise,
            )
        )
    return hosts
