"""Batched attacker-side aggregation for hyperscale campaigns.

A census campaign at 64x fleet scale fingerprints ~1M instances across
hundreds of launches and reduces them to two curves: unique apparent hosts
per launch, and the cumulative unique count (paper Fig. 12).  The scalar
reference builds a Python set per launch and unions it into a campaign-wide
``seen`` set — O(instances) hash-set churn that dominates analysis time once
fingerprinting itself is cheap.

:class:`FootprintAccumulator` replaces the set algebra with an interning
table plus a NumPy seen-mask: each distinct fingerprint is assigned a dense
integer code once, a launch becomes an ``int64`` code array, and both
reductions (``len(footprint)`` and ``len(seen)``) are ``np.unique`` /
boolean-mask counts.  Outputs are pure counts, so they are independent of
``PYTHONHASHSEED`` and of fingerprint insertion order; the scalar set
reference (:func:`census_reduce_scalar`) is kept for the twin-world and
Hypothesis equivalence suites that pin the two paths equal.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

import numpy as np
from numpy.typing import NDArray


class FootprintAccumulator:
    """Cumulative-unique reduction over a stream of launch footprints.

    Equivalent to::

        seen = set()
        footprint = set(launch)
        seen |= footprint
        per_launch, cumulative = len(footprint), len(seen)

    but with the per-launch reduction done on interned ``int64`` codes and
    the campaign-wide state a boolean seen-mask that grows geometrically
    with *distinct fingerprints observed* — O(occupied hosts), never
    O(instances fingerprinted).
    """

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}
        self._seen: NDArray[np.bool_] = np.zeros(256, dtype=bool)
        self._n_seen = 0

    @property
    def unique_count(self) -> int:
        """Distinct fingerprints observed so far."""
        return self._n_seen

    def _intern(self, fingerprints: Sequence[Hashable]) -> NDArray[np.int64]:
        """Map fingerprints to dense codes, assigning new ones in order."""
        codes = self._codes
        out = np.empty(len(fingerprints), dtype=np.int64)
        n = len(codes)
        for i, fp in enumerate(fingerprints):
            code = codes.get(fp)
            if code is None:
                code = n
                codes[fp] = code
                n += 1
            out[i] = code
        return out

    def add_launch(self, fingerprints: Iterable[Hashable]) -> tuple[int, int]:
        """Fold one launch in; returns ``(per_launch_unique, cumulative)``.

        The interning dict makes code assignment injective, so
        ``np.unique(codes).size == len(set(fingerprints))`` exactly, and
        marking codes in the seen-mask reproduces the set union count.
        """
        batch = list(fingerprints)
        if not batch:
            return 0, self._n_seen
        unique_codes = np.unique(self._intern(batch))
        top = int(unique_codes[-1])
        if top >= self._seen.size:
            grown = np.zeros(max(self._seen.size * 2, top + 1), dtype=bool)
            grown[: self._seen.size] = self._seen
            self._seen = grown
        newly = ~self._seen[unique_codes]
        self._seen[unique_codes[newly]] = True
        self._n_seen += int(newly.sum())
        return int(unique_codes.size), self._n_seen


def census_reduce_scalar(
    launches: Iterable[Iterable[Hashable]],
) -> tuple[list[int], list[int]]:
    """The historical set-based census reduction (scalar reference).

    Returns ``(per_launch, cumulative_unique)`` for a sequence of launch
    footprints.  The equivalence suites pin
    :class:`FootprintAccumulator` to this byte-for-byte.
    """
    seen: set[Hashable] = set()
    per_launch: list[int] = []
    cumulative: list[int] = []
    for launch in launches:
        footprint = set(launch)
        seen |= footprint
        per_launch.append(len(footprint))
        cumulative.append(len(seen))
    return per_launch, cumulative
