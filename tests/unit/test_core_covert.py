"""Unit tests for the RNG covert channel (CTest primitive)."""

import pytest

from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.errors import VerificationError


def launch(env, n, name="svc", account="account-1"):
    client = env.clients[account]
    service = client.deploy(ServiceConfig(name=name))
    return client.connect(service, n), env.orchestrator


def split_by_host(handles, orch):
    by_host = {}
    for h in handles:
        by_host.setdefault(orch.true_host_of(h.instance_id), []).append(h)
    return by_host


class TestRngCovertChannel:
    def test_colocated_pair_tests_positive(self, tiny_env):
        handles, orch = launch(tiny_env, 20)
        by_host = split_by_host(handles, orch)
        pair = next(hs for hs in by_host.values() if len(hs) >= 2)[:2]
        result = RngCovertChannel().ctest(pair, threshold_m=2)
        assert all(result.positive)

    def test_separated_pair_tests_negative(self, tiny_env):
        handles, orch = launch(tiny_env, 10)
        by_host = split_by_host(handles, orch)
        hosts = list(by_host.values())
        assert len(hosts) >= 2
        pair = [hosts[0][0], hosts[1][0]]
        result = RngCovertChannel().ctest(pair, threshold_m=2)
        assert not any(result.positive)

    def test_singleton_never_positive(self, tiny_env):
        handles, _orch = launch(tiny_env, 1)
        result = RngCovertChannel().ctest(handles, threshold_m=2)
        assert result.positive == (False,)

    def test_nway_mixed_result(self, tiny_env):
        handles, orch = launch(tiny_env, 20)
        by_host = split_by_host(handles, orch)
        hosts = sorted(by_host.values(), key=len, reverse=True)
        colocated = hosts[0][:2]
        loner = hosts[1][0]
        result = RngCovertChannel().ctest(colocated + [loner], threshold_m=2)
        assert result.positive[:2] == (True, True)
        assert result.positive[2] is False

    def test_threshold_m3_needs_three(self, tiny_env):
        handles, orch = launch(tiny_env, 30)
        by_host = split_by_host(handles, orch)
        trio_host = next(hs for hs in by_host.values() if len(hs) >= 3)
        pair_result = RngCovertChannel().ctest(trio_host[:2], threshold_m=3)
        assert not any(pair_result.positive)
        trio_result = RngCovertChannel().ctest(trio_host[:3], threshold_m=3)
        assert all(trio_result.positive)

    def test_pressure_released_after_test(self, tiny_env):
        handles, orch = launch(tiny_env, 5)
        RngCovertChannel().ctest(handles[:3], threshold_m=2)
        host_ids = {orch.true_host_of(h.instance_id) for h in handles[:3]}
        for host_id in host_ids:
            assert tiny_env.datacenter.host(host_id).rng_resource.pressurer_count == 0

    def test_batch_of_disjoint_groups(self, tiny_env):
        handles, orch = launch(tiny_env, 20)
        by_host = split_by_host(handles, orch)
        hosts = [hs for hs in by_host.values() if len(hs) >= 2]
        assert len(hosts) >= 2
        results = RngCovertChannel().ctest_batch(
            [hosts[0][:2], hosts[1][:2]], threshold_m=2
        )
        assert all(all(r.positive) for r in results)

    def test_duplicate_instance_in_batch_rejected(self, tiny_env):
        handles, _orch = launch(tiny_env, 3)
        channel = RngCovertChannel()
        with pytest.raises(VerificationError):
            channel.ctest_batch([[handles[0]], [handles[0]]], threshold_m=2)

    def test_threshold_below_two_rejected(self, tiny_env):
        handles, _orch = launch(tiny_env, 2)
        with pytest.raises(VerificationError):
            RngCovertChannel().ctest(handles, threshold_m=1)

    def test_invalid_round_config_rejected(self):
        with pytest.raises(VerificationError):
            RngCovertChannel(total_rounds=10, required_rounds=11)

    def test_per_group_thresholds_in_one_batch(self, tiny_env):
        """The threshold is per test: a pair at m=2 and a trio at m=3 can
        share one batch window and each is judged by its own bar."""
        handles, orch = launch(tiny_env, 30)
        by_host = split_by_host(handles, orch)
        hosts = sorted(by_host.values(), key=len, reverse=True)
        trio = hosts[0][:3]
        pair = hosts[1][:2]
        results = RngCovertChannel().ctest_batch([trio, pair], [3, 2])
        assert all(results[0].positive)
        assert all(results[1].positive)

    def test_pair_at_threshold_three_cannot_light_up(self, tiny_env):
        handles, orch = launch(tiny_env, 20)
        by_host = split_by_host(handles, orch)
        pair = next(hs for hs in by_host.values() if len(hs) >= 2)[:2]
        result = RngCovertChannel().ctest(pair, threshold_m=3)
        assert not any(result.positive)

    def test_threshold_count_mismatch_rejected(self, tiny_env):
        handles, _orch = launch(tiny_env, 4)
        with pytest.raises(VerificationError):
            RngCovertChannel().ctest_batch([handles[:2], handles[2:]], [2])

    def test_stats_accumulate(self, tiny_env):
        handles, _orch = launch(tiny_env, 4)
        channel = RngCovertChannel()
        channel.ctest(handles[:2], threshold_m=2)
        channel.ctest(handles[2:], threshold_m=2)
        assert channel.stats.n_tests == 2
        assert channel.stats.busy_seconds == pytest.approx(2 * channel.seconds_per_test)

    def test_batch_shares_wall_time(self, tiny_env):
        handles, orch = launch(tiny_env, 20)
        by_host = split_by_host(handles, orch)
        groups = [hs[:2] for hs in by_host.values() if len(hs) >= 2][:2]
        channel = RngCovertChannel()
        channel.ctest_batch(groups, threshold_m=2)
        assert channel.stats.busy_seconds == pytest.approx(channel.seconds_per_test)
        assert channel.stats.n_tests == len(groups)
