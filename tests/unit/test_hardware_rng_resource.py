"""Unit tests for the RNG contention resource."""

import pytest

from repro.hardware.rng_resource import RngContentionResource


def noiseless() -> RngContentionResource:
    return RngContentionResource(background_rate=0.0, drop_rate=0.0)


class TestRngContentionResource:
    def test_single_pressurer_observes_only_itself(self, rng):
        res = noiseless()
        res.start_pressure("a")
        assert res.observe("a", rng) == 1

    def test_two_colocated_pressurers_observe_two(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("b")
        assert res.observe("a", rng) == 2
        assert res.observe("b", rng) == 2

    def test_n_pressurers_observe_n(self, rng):
        res = noiseless()
        for i in range(5):
            res.start_pressure(f"i{i}")
        assert res.observe("i0", rng) == 5

    def test_observe_without_pressure_rejected(self, rng):
        res = noiseless()
        with pytest.raises(ValueError):
            res.observe("ghost", rng)

    def test_stop_pressure_removes_contribution(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("b")
        res.stop_pressure("b")
        assert res.observe("a", rng) == 1

    def test_stop_unknown_is_noop(self):
        noiseless().stop_pressure("ghost")

    def test_double_start_counts_once(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("a")
        assert res.pressurer_count == 1

    def test_background_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            RngContentionResource(background_rate=1.5)
        with pytest.raises(ValueError):
            RngContentionResource(drop_rate=-0.1)

    def test_background_contention_is_rare(self, rng):
        """Paper: the chance of background RNG contention is under 1%."""
        res = RngContentionResource()
        res.start_pressure("solo")
        observations = [res.observe("solo", rng) for _ in range(5000)]
        elevated = sum(1 for level in observations if level >= 2)
        assert elevated / len(observations) < 0.02

    def test_drops_occasionally_hide_partners(self, rng):
        res = RngContentionResource(background_rate=0.0, drop_rate=0.5)
        res.start_pressure("a")
        res.start_pressure("b")
        observations = [res.observe("a", rng) for _ in range(500)]
        assert min(observations) == 1 and max(observations) == 2
