"""Figure 10: helper-host footprints across six services (Observation 6).

Paper: the cumulative helper footprint expands after every episode (each
service recruits hosts the previous ones did not), while the per-episode
increase stays below the episode's own helper count (the sets overlap).
"""

from repro.experiments import helper_episodes as he
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = he.EpisodesConfig()


def test_fig10_helper_episodes(benchmark, emit):
    result = run_once(benchmark, lambda: he.run(CONFIG))

    emit(
        format_series(
            "Figure 10 — helper hosts per episode (one service per episode)",
            ("episode", "helpers", "cumulative_helpers", "newly_added"),
            [
                (i + 1, per, cum, add)
                for i, (per, cum, add) in enumerate(
                    zip(
                        result.per_episode_helpers,
                        result.cumulative_helpers,
                        result.cumulative_growth_per_episode,
                    )
                )
            ],
        )
    )

    assert len(result.per_episode_helpers) == 6
    # Every episode recruits a substantial helper set.
    assert all(count > 100 for count in result.per_episode_helpers)
    # The cumulative footprint grows after each episode...
    cum = result.cumulative_helpers
    assert all(b > a for a, b in zip(cum, cum[1:]))
    # ...but by less than the episode's own helper count: sets overlap.
    assert result.overlapping
