"""Simulated host hardware.

This package models the pieces of physical-host hardware that the paper's
fingerprinting techniques touch: the CPU identification surface (``cpuid``),
the invariant timestamp counter (``rdtsc``/``rdtscp``), and the shared
hardware random number generator used as a covert channel.
"""

from repro.hardware.channels import (
    ChannelKind,
    DvfsFrequencyResource,
    LlcOccupancyResource,
    channel_kind,
    register_channel_kind,
    registered_channel_kinds,
    unregister_channel_kind,
)
from repro.hardware.cpu import CPUModel, DEFAULT_CPU_CATALOG, cpu_catalog
from repro.hardware.host import HostFleetConfig, PhysicalHost, build_fleet
from repro.hardware.noise import (
    SyscallNoiseModel,
    TscErrorModel,
    problematic_noise_model,
    quiet_noise_model,
)
from repro.hardware.rng_resource import ContentionResource, RngContentionResource
from repro.hardware.tsc import TimestampCounter

__all__ = [
    "CPUModel",
    "DEFAULT_CPU_CATALOG",
    "cpu_catalog",
    "ChannelKind",
    "channel_kind",
    "register_channel_kind",
    "registered_channel_kinds",
    "unregister_channel_kind",
    "HostFleetConfig",
    "PhysicalHost",
    "build_fleet",
    "SyscallNoiseModel",
    "TscErrorModel",
    "problematic_noise_model",
    "quiet_noise_model",
    "ContentionResource",
    "RngContentionResource",
    "LlcOccupancyResource",
    "DvfsFrequencyResource",
    "TimestampCounter",
]
