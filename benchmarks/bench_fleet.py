"""Fleet-store micro-benchmark: columnar store vs the pre-refactor dicts.

Measures the three hot fleet-state paths at 1x/4x/16x/64x/256x the paper
fleet scale (us-east1, 520 hosts; 64x ~ a 33k-host hyperscale region,
256x ~ 133k hosts):

* ``placement`` — batch placement onto a small base-host set, including
  the per-call full-fleet ``{host_id: capacity}`` dict rebuild the old
  orchestrator performed on every launch;
* ``rotation`` — serving-pool rotation steps;
* ``census`` — merging per-launch host observations and scoring victim
  coverage (set membership vs index masks).

The dict baseline below is a frozen, faithful port of the pre-columnar
implementation (heap placement over host-id dicts, list-based pool
rotation, set-based census); it exists only for comparison and is not
used by the simulator.  Its list-rebuild rotation is quadratic in fleet
size, so the baselines are timed once (not best-of-3) at 64x and skipped
entirely at 256x, where the tier instead reports columnar timings plus a
tracemalloc memory ceiling for 5,000 sparse per-service count columns.

Run::

    PYTHONPATH=src python benchmarks/bench_fleet.py --out BENCH_fleet.json

Exit status is non-zero if the columnar store regresses at 1x scale,
fails the 3x placement+census speedup floor at 16x or 64x, or the 256x
service-count memory ceiling is breached.
"""

from __future__ import annotations

import argparse
import heapq
import json
import sys
import time
import tracemalloc

import numpy as np

from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.fleet import FleetStore

PAPER_FLEET_HOSTS = 520  # us-east1
PAPER_ACTIVE_FRACTION = 300 / 520
SCALES = {"1x": 1, "4x": 4, "16x": 16, "64x": 64, "256x": 256}

ALLOWED_SIZE = 15  # one shard's worth of base hosts
PLACEMENT_CALLS = 60
PLACEMENT_COUNT = 40
ROTATION_STEPS = 120
ROTATION_FRACTION = 0.03
CENSUS_LAUNCHES = 40
CENSUS_VICTIMS = 100
REPEATS = 3
FAST_REPEAT_MAX_FACTOR = 16  # best-of-3 below, single timing above
DICT_BASELINE_MAX_FACTOR = 64  # the dict rotation is quadratic; cap it

# 256x memory-ceiling tier: sparse per-service counts must stay O(hosts
# touched), never O(hosts x services).
MEMORY_GATE_FACTOR = 256
MEMORY_SERVICES = 5_000
MEMORY_TOUCHED_PER_SERVICE = 24
MEMORY_BUDGET_BYTES = 64 * 1024 * 1024


# ----------------------------------------------------------------------
# Frozen pre-refactor baseline (host-id dicts, lists, sets)
# ----------------------------------------------------------------------
class DictPlacementPolicy:
    """The pre-columnar placement policy, verbatim."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng

    def place(self, count, slots, allowed_host_ids, service_counts,
              load_slots, capacity_slots):
        heap = [
            (service_counts.get(h, 0), float(self._rng.random()), h)
            for h in allowed_host_ids
        ]
        heapq.heapify(heap)
        chosen = []
        for _ in range(count):
            host_id = self._pop_least_used(heap, slots, load_slots, capacity_slots)
            if host_id is None:
                raise RuntimeError("no capacity")
            load_slots[host_id] = load_slots.get(host_id, 0.0) + slots
            chosen.append(host_id)
        return chosen

    def _pop_least_used(self, heap, slots, load_slots, capacity_slots):
        while heap:
            count, tiebreak, host_id = heapq.heappop(heap)
            load = load_slots.get(host_id, 0.0)
            if load + slots > capacity_slots.get(host_id, 0.0):
                continue
            heapq.heappush(heap, (count + 1, tiebreak, host_id))
            return host_id
        return None


def dict_placement_workload(n_hosts, seed=0):
    host_ids = [f"h{i:06d}" for i in range(n_hosts)]
    hosts = {h: 1e9 for h in host_ids}
    load_slots: dict[str, float] = {}
    rng = np.random.default_rng(seed)
    policy = DictPlacementPolicy(rng)
    allowed = host_ids[:ALLOWED_SIZE]
    counts: dict[str, int] = {}
    for _ in range(PLACEMENT_CALLS):
        # The old orchestrator rebuilt the full-fleet capacity dict on
        # every placement call — that rebuild is part of the baseline.
        capacities = {h: hosts[h] for h in host_ids}
        placed = policy.place(
            PLACEMENT_COUNT, 1.0, allowed, counts, load_slots, capacities
        )
        for h in placed:
            counts[h] = counts.get(h, 0) + 1


def dict_rotation_workload(n_hosts, seed=0):
    host_ids = [f"h{i:06d}" for i in range(n_hosts)]
    rng = np.random.default_rng(seed)
    active = int(n_hosts * PAPER_ACTIVE_FRACTION)
    pool_idx = rng.choice(n_hosts, size=active, replace=False)
    pool = [host_ids[i] for i in pool_idx]
    rotated = [h for h in host_ids if h not in set(pool)]
    for _ in range(ROTATION_STEPS):
        swap = min(int(round(ROTATION_FRACTION * len(pool))), len(rotated))
        out_idx = rng.choice(len(pool), size=swap, replace=False)
        in_idx = rng.choice(len(rotated), size=swap, replace=False)
        out_set = {pool[i] for i in out_idx}
        in_set = {rotated[i] for i in in_idx}
        out_ids = [pool[i] for i in out_idx]
        in_ids = [rotated[i] for i in in_idx]
        pool = [h for h in pool if h not in out_set] + in_ids
        rotated = [h for h in rotated if h not in in_set] + out_ids


def dict_census_workload(n_hosts, seed=0):
    host_ids = [f"h{i:06d}" for i in range(n_hosts)]
    rng = np.random.default_rng(seed)
    launch_size = int(n_hosts * PAPER_ACTIVE_FRACTION)
    seen: set[str] = set()
    uniques = []
    for _ in range(CENSUS_LAUNCHES):
        observed = rng.choice(n_hosts, size=launch_size, replace=False)
        footprint = {host_ids[i] for i in observed}
        seen |= footprint
        uniques.append(len(seen))
    victims = [host_ids[int(i)] for i in rng.choice(n_hosts, size=CENSUS_VICTIMS)]
    coverage = sum(1 for h in victims if h in seen) / len(victims)
    return uniques, coverage


# ----------------------------------------------------------------------
# Columnar equivalents
# ----------------------------------------------------------------------
def columnar_placement_workload(n_hosts, seed=0):
    store = FleetStore([f"h{i:06d}" for i in range(n_hosts)], capacity_slots=1e9)
    allowed = np.arange(ALLOWED_SIZE, dtype=np.int64)
    counts = store.service_counts("svc")
    policy = PlacementPolicy(np.random.default_rng(seed))
    for _ in range(PLACEMENT_CALLS):
        placed = policy.place(
            PlacementRequest(
                count=PLACEMENT_COUNT,
                slots_per_instance=1.0,
                allowed=allowed,
                service_counts=counts,
            ),
            store,
        )
        counts.add_at(placed)


def columnar_rotation_workload(n_hosts, seed=0):
    store = FleetStore([f"h{i:06d}" for i in range(n_hosts)])
    rng = np.random.default_rng(seed)
    active = int(n_hosts * PAPER_ACTIVE_FRACTION)
    store.set_pool(rng.choice(n_hosts, size=active, replace=False))
    for _ in range(ROTATION_STEPS):
        pool_size = len(store.pool_order)
        rotated_size = len(store.rotated_order)
        swap = min(int(round(ROTATION_FRACTION * pool_size)), rotated_size)
        out_pos = rng.choice(pool_size, size=swap, replace=False)
        in_pos = rng.choice(rotated_size, size=swap, replace=False)
        store.rotate(out_pos, in_pos)


def columnar_census_workload(n_hosts, seed=0):
    store = FleetStore([f"h{i:06d}" for i in range(n_hosts)])
    rng = np.random.default_rng(seed)
    launch_size = int(n_hosts * PAPER_ACTIVE_FRACTION)
    seen = np.zeros(store.n_hosts, dtype=bool)
    uniques = []
    for _ in range(CENSUS_LAUNCHES):
        observed = rng.choice(n_hosts, size=launch_size, replace=False)
        seen[observed] = True
        uniques.append(int(seen.sum()))
    victims = rng.choice(n_hosts, size=CENSUS_VICTIMS)
    coverage = float(seen[victims].mean())
    return uniques, coverage


def service_memory_workload(n_hosts, seed=0):
    """Tracemalloc growth of sparse per-service count columns.

    Returns the measured growth next to the dense-equivalent cost (one
    int64 column per service) that the pre-PR-8 layout would have paid —
    ~5.3 GB at 256x, versus single-digit megabytes sparse.
    """
    rng = np.random.default_rng(seed)
    placements = rng.integers(
        n_hosts, size=(MEMORY_SERVICES, MEMORY_TOUCHED_PER_SERVICE)
    )
    tracemalloc.start()
    store = FleetStore([f"h{i:06d}" for i in range(n_hosts)])
    baseline, _ = tracemalloc.get_traced_memory()
    for s in range(MEMORY_SERVICES):
        store.service_counts(f"svc-{s:05d}").add_at(placements[s])
    grown, _ = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return {
        "n_services": MEMORY_SERVICES,
        "touched_per_service": MEMORY_TOUCHED_PER_SERVICE,
        "grown_bytes": int(grown - baseline),
        "dense_equivalent_bytes": int(MEMORY_SERVICES) * n_hosts * 8,
        "budget_bytes": MEMORY_BUDGET_BYTES,
    }


# ----------------------------------------------------------------------
# Harness
# ----------------------------------------------------------------------
WORKLOADS = {
    "placement": (dict_placement_workload, columnar_placement_workload),
    "rotation": (dict_rotation_workload, columnar_rotation_workload),
    "census": (dict_census_workload, columnar_census_workload),
}


def best_of(fn, n_hosts, repeats=REPEATS):
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn(n_hosts)
        timings.append(time.perf_counter() - start)
    return min(timings)


def run() -> dict:
    results: dict = {
        "paper_fleet_hosts": PAPER_FLEET_HOSTS,
        "workload": {
            "placement_calls": PLACEMENT_CALLS,
            "instances_per_call": PLACEMENT_COUNT,
            "allowed_hosts": ALLOWED_SIZE,
            "rotation_steps": ROTATION_STEPS,
            "census_launches": CENSUS_LAUNCHES,
            "memory_services": MEMORY_SERVICES,
        },
        "scales": {},
    }
    for label, factor in SCALES.items():
        n_hosts = PAPER_FLEET_HOSTS * factor
        repeats = REPEATS if factor <= FAST_REPEAT_MAX_FACTOR else 1
        with_dict = factor <= DICT_BASELINE_MAX_FACTOR
        scale: dict = {"n_hosts": n_hosts, "repeats": repeats, "columnar_s": {}}
        if with_dict:
            scale["dict_s"] = {}
            scale["speedup"] = {}
        for name, (dict_fn, columnar_fn) in WORKLOADS.items():
            col_t = best_of(columnar_fn, n_hosts, repeats)
            scale["columnar_s"][name] = round(col_t, 6)
            if with_dict:
                dict_t = best_of(dict_fn, n_hosts, repeats)
                scale["dict_s"][name] = round(dict_t, 6)
                scale["speedup"][name] = round(dict_t / col_t, 3)
        if with_dict:
            pc_dict = scale["dict_s"]["placement"] + scale["dict_s"]["census"]
            pc_col = (
                scale["columnar_s"]["placement"] + scale["columnar_s"]["census"]
            )
            scale["speedup"]["placement_plus_census"] = round(pc_dict / pc_col, 3)
            summary = ", ".join(
                f"{name} {scale['speedup'][name]}x" for name in WORKLOADS
            ) + f", placement+census {scale['speedup']['placement_plus_census']}x"
        else:
            summary = "columnar-only: " + ", ".join(
                f"{name} {scale['columnar_s'][name]}s" for name in WORKLOADS
            )
        if factor >= MEMORY_GATE_FACTOR:
            mem = service_memory_workload(n_hosts)
            scale["service_memory"] = mem
            summary += (
                f", {mem['n_services']} services in "
                f"{mem['grown_bytes'] / 1e6:.1f}MB "
                f"(dense {mem['dense_equivalent_bytes'] / 1e9:.1f}GB)"
            )
        results["scales"][label] = scale
        print(f"{label:>4} ({n_hosts} hosts): {summary}")
    return results


def check(results: dict) -> list[str]:
    failures = []
    for label in ("16x", "64x"):
        speedup = results["scales"][label]["speedup"]["placement_plus_census"]
        if speedup < 3.0:
            failures.append(
                f"{label} placement+census speedup {speedup}x is below the 3x floor"
            )
    at_1x = results["scales"]["1x"]["speedup"]["placement_plus_census"]
    if at_1x < 1.0:
        failures.append(f"columnar store regresses at 1x scale ({at_1x}x)")
    mem = results["scales"]["256x"]["service_memory"]
    if mem["grown_bytes"] >= mem["budget_bytes"]:
        failures.append(
            f"256x service-count memory {mem['grown_bytes']} bytes breaches "
            f"the {mem['budget_bytes']}-byte ceiling"
        )
    if mem["grown_bytes"] * 20 >= mem["dense_equivalent_bytes"]:
        failures.append(
            "256x service-count memory is within 20x of the dense layout — "
            "sparse storage has regressed to O(hosts x services)"
        )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_fleet.json", help="output path")
    args = parser.parse_args(argv)
    results = run()
    failures = check(results)
    results["pass"] = not failures
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(results, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {args.out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
