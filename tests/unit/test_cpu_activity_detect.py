"""Unit tests for the CPU activity meter and the activity detector."""

import pytest

from repro.cloud.services import ServiceConfig
from repro.core.detect import (
    ActivityDetector,
    ActivityEpisode,
    ActivitySample,
    ActivityTimeline,
    score_detection,
)
from repro.hardware.cpu_activity import CpuActivityMeter


class TestCpuActivityMeter:
    def noiseless(self):
        return CpuActivityMeter(noise_rate=0.0)

    def test_idle_host_reads_zero(self, rng):
        meter = self.noiseless()
        assert meter.observe("watcher", now=0.0, rng=rng) == 0

    def test_busy_sibling_visible(self, rng):
        meter = self.noiseless()
        meter.mark_busy("victim", now=0.0, duration=1.0)
        assert meter.observe("watcher", now=0.5, rng=rng) == 1

    def test_busy_period_expires(self, rng):
        meter = self.noiseless()
        meter.mark_busy("victim", now=0.0, duration=1.0)
        assert meter.observe("watcher", now=1.5, rng=rng) == 0

    def test_own_activity_excluded(self, rng):
        meter = self.noiseless()
        meter.mark_busy("watcher", now=0.0, duration=10.0)
        assert meter.observe("watcher", now=1.0, rng=rng) == 0

    def test_multiple_siblings_counted(self, rng):
        meter = self.noiseless()
        for i in range(3):
            meter.mark_busy(f"v{i}", now=0.0, duration=5.0)
        assert meter.observe("watcher", now=1.0, rng=rng) == 3

    def test_requests_queue_on_one_instance(self, rng):
        """Back-to-back work extends the busy period rather than
        overlapping with itself."""
        meter = self.noiseless()
        meter.mark_busy("victim", now=0.0, duration=1.0)
        meter.mark_busy("victim", now=0.5, duration=1.0)
        assert meter.busy_count(now=1.5) == 1
        assert meter.busy_count(now=2.1) == 0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            self.noiseless().mark_busy("x", now=0.0, duration=-1.0)

    def test_noise_rate_validated(self):
        with pytest.raises(ValueError):
            CpuActivityMeter(noise_rate=1.5)


class TestEpisodeDetection:
    def timeline(self, levels, cadence=1.0):
        samples = [
            ActivitySample(at=i * cadence, level=level)
            for i, level in enumerate(levels)
        ]
        detector = ActivityDetector.__new__(ActivityDetector)
        detector.threshold = 1
        detector.min_consecutive = 2
        episodes = detector._episodes(samples)
        return ActivityTimeline(samples=samples, episodes=episodes)

    def test_detects_a_burst(self):
        timeline = self.timeline([0, 0, 1, 1, 1, 0, 0])
        assert len(timeline.episodes) == 1
        assert timeline.episodes[0].start == 2.0
        assert timeline.episodes[0].end == 4.0

    def test_single_sample_noise_debounced(self):
        timeline = self.timeline([0, 1, 0, 0, 1, 0])
        assert timeline.episodes == []

    def test_burst_at_end_closed(self):
        timeline = self.timeline([0, 0, 1, 1])
        assert len(timeline.episodes) == 1

    def test_two_separate_bursts(self):
        timeline = self.timeline([1, 1, 0, 0, 1, 1, 1, 0])
        assert len(timeline.episodes) == 2

    def test_detected_at(self):
        timeline = self.timeline([0, 1, 1, 0])
        assert timeline.detected_at(1.5)
        assert not timeline.detected_at(3.5)


class TestScoring:
    def test_perfect_detection(self):
        timeline = ActivityTimeline(
            episodes=[ActivityEpisode(start=1.0, end=2.0)]
        )
        precision, recall = score_detection(timeline, [(0.9, 2.1)])
        assert precision == 1.0
        assert recall == 1.0

    def test_false_alarm_hurts_precision(self):
        timeline = ActivityTimeline(
            episodes=[
                ActivityEpisode(start=1.0, end=2.0),
                ActivityEpisode(start=50.0, end=51.0),
            ]
        )
        precision, recall = score_detection(timeline, [(0.9, 2.1)])
        assert precision == 0.5
        assert recall == 1.0

    def test_missed_burst_hurts_recall(self):
        timeline = ActivityTimeline(episodes=[])
        precision, recall = score_detection(timeline, [(0.0, 1.0)])
        assert precision == 0.0
        assert recall == 0.0

    def test_no_bursts_no_episodes_is_perfect(self):
        precision, recall = score_detection(ActivityTimeline(), [])
        assert precision == 1.0
        assert recall == 1.0


class TestEndToEndDetection:
    def test_attacker_detects_victim_requests(self, tiny_env):
        """Full loop: co-located attacker instance sees the victim's
        request bursts as CPU contention."""
        attacker = tiny_env.attacker
        victim = tiny_env.victim("account-2")
        # Put the attacker on the victim's shard by sharing the account's
        # shard in this tiny setup: use the victim's own account for the
        # watcher to guarantee co-location cheaply.
        watcher_client = victim
        victim_service = victim.deploy(ServiceConfig(name="api"))
        victim_handles = victim.connect(victim_service, 5)
        watcher_service = victim.deploy(ServiceConfig(name="watcher"))
        watcher_handles = watcher_client.connect(watcher_service, 10)

        orch = tiny_env.orchestrator
        victim_hosts = {orch.true_host_of(h.instance_id) for h in victim_handles}
        watcher = next(
            h for h in watcher_handles
            if orch.true_host_of(h.instance_id) in victim_hosts
        )

        # Victim serves a burst of long requests while the watcher samples.
        t0 = tiny_env.clock.now()
        for _ in range(20):
            victim.invoke("api", processing_seconds=2.0)
        detector = ActivityDetector(watcher, cadence_s=0.05, min_consecutive=3)
        timeline = detector.monitor(duration_s=1.0)
        assert timeline.episodes, "the burst must be detected"

        # Quiet period: no invocations, the meter should go quiet.
        tiny_env.clock.sleep(60.0)
        quiet = detector.monitor(duration_s=1.0)
        busy_fraction = sum(
            1 for s in quiet.samples if s.level > 0
        ) / len(quiet.samples)
        assert busy_fraction < 0.2
