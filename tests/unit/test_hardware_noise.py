"""Unit tests for the timing-noise and frequency-error models."""

import numpy as np

from repro import units
from repro.hardware.noise import (
    SyscallNoiseModel,
    TscErrorModel,
    problematic_noise_model,
    quiet_noise_model,
)


class TestSyscallNoise:
    def test_quiet_call_jitter_is_nanosecond_scale(self, rng):
        model = quiet_noise_model()
        samples = [abs(model.sample_call_jitter(rng)) for _ in range(2000)]
        assert np.median(samples) < 100e-9

    def test_problematic_call_jitter_is_microsecond_scale(self, rng):
        model = problematic_noise_model()
        samples = [abs(model.sample_call_jitter(rng)) for _ in range(2000)]
        assert np.median(samples) > 0.5e-6

    def test_sandbox_offset_is_submillisecond_core(self, rng):
        model = quiet_noise_model()
        samples = [model.sample_sandbox_offset(rng) for _ in range(2000)]
        # Core sigma 0.12 ms; the median magnitude must sit near it.
        assert 0.02e-3 < np.median(np.abs(samples)) < 0.5e-3

    def test_sandbox_offset_has_both_signs(self, rng):
        model = quiet_noise_model()
        samples = [model.sample_sandbox_offset(rng) for _ in range(500)]
        assert min(samples) < 0 < max(samples)

    def test_offsets_differ_between_sandboxes(self, rng):
        model = quiet_noise_model()
        assert model.sample_sandbox_offset(rng) != model.sample_sandbox_offset(rng)

    def test_custom_model_fields(self):
        model = SyscallNoiseModel(call_jitter_sigma_s=1e-6)
        assert model.call_jitter_sigma_s == 1e-6


class TestTscErrorModel:
    def test_epsilon_within_clip_bounds(self, rng):
        model = TscErrorModel()
        for _ in range(1000):
            eps = model.sample_epsilon(rng)
            assert model.min_abs_hz <= abs(eps) <= model.max_abs_hz

    def test_epsilon_signs_balanced(self, rng):
        model = TscErrorModel()
        signs = [np.sign(model.sample_epsilon(rng)) for _ in range(2000)]
        assert 0.4 < np.mean(np.array(signs) > 0) < 0.6

    def test_epsilon_median_near_configured(self, rng):
        model = TscErrorModel()
        magnitudes = [abs(model.sample_epsilon(rng)) for _ in range(4000)]
        assert 0.5 * model.median_abs_hz < np.median(magnitudes) < 2.0 * model.median_abs_hz

    def test_epsilon_tail_reaches_tens_of_khz(self, rng):
        """A tail of large errors drives the ~10% two-day expirations."""
        model = TscErrorModel()
        magnitudes = np.array([abs(model.sample_epsilon(rng)) for _ in range(4000)])
        assert (magnitudes > 2.5 * units.KHZ).mean() > 0.05

    def test_expiration_calibration(self, rng):
        """At p_boot = 1 s, roughly 10% of 2 GHz hosts drift a rounding
        bucket within ~2 days (paper Fig. 5)."""
        model = TscErrorModel()
        f = 2.0 * units.GHZ
        epsilons = np.abs([model.sample_epsilon(rng) for _ in range(4000)])
        # Expected expiration with a uniformly distributed boundary distance.
        expirations_days = (0.25 * f / epsilons) / units.DAY
        frac_fast = (expirations_days < 2.0).mean()
        assert 0.03 < frac_fast < 0.3
