"""Host fingerprints (paper §4).

*Gen 1* fingerprint: the pair ``(CPU model, host boot time)``.  The boot
time is derived from one simultaneous reading of the TSC and the wall clock
(Eq. 4.1): ``T_boot = T_w - tsc / f`` where ``f`` is the TSC frequency.
Since measurements are noisy, ``T_boot`` is rounded to a precision
``p_boot`` (the sweet spot is 100 ms - 1 s, Fig. 4).

*Gen 2* fingerprint: the host kernel's refined TSC frequency, read from the
guest kernel (1 kHz precision).  No false negatives — co-located guests
always read the same value — but distinct hosts may collide (§4.5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cloud.api import InstanceHandle
from repro.errors import FingerprintError


@dataclass(frozen=True)
class Gen1Sample:
    """One raw fingerprinting measurement taken inside a Gen 1 container.

    Attributes
    ----------
    cpu_model:
        Host CPU model string (via ``cpuid``).
    tsc_value:
        Raw TSC value (via ``rdtsc``).
    wall_time:
        Wall-clock time of the measurement ``T_w`` (via a system call).
    reported_frequency_hz:
        The reported TSC frequency ``f_r`` used to convert ticks to seconds.
    """

    cpu_model: str
    tsc_value: int
    wall_time: float
    reported_frequency_hz: float

    def boot_time(self) -> float:
        """Derived host boot time ``T_boot = T_w - tsc / f_r`` (Eq. 4.1)."""
        return self.wall_time - self.tsc_value / self.reported_frequency_hz

    def fingerprint(self, p_boot: float = 1.0) -> "Gen1Fingerprint":
        """Round the derived boot time to ``p_boot`` and build a fingerprint."""
        return Gen1Fingerprint.from_boot_time(self.cpu_model, self.boot_time(), p_boot)


@dataclass(frozen=True)
class Gen1Fingerprint:
    """A Gen 1 host fingerprint: CPU model plus rounded boot time.

    The boot time is stored as an integer bucket index
    (``round(T_boot / p_boot)``) so that equality is exact and hashable.
    """

    cpu_model: str
    boot_bucket: int
    p_boot: float

    @classmethod
    def from_boot_time(
        cls, cpu_model: str, boot_time: float, p_boot: float
    ) -> "Gen1Fingerprint":
        """Build a fingerprint from an unrounded boot time."""
        if p_boot <= 0:
            raise FingerprintError(f"p_boot must be positive, got {p_boot!r}")
        return cls(cpu_model=cpu_model, boot_bucket=round(boot_time / p_boot), p_boot=p_boot)

    @property
    def boot_time(self) -> float:
        """The rounded boot time this fingerprint represents."""
        return self.boot_bucket * self.p_boot

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"{self.cpu_model} | boot={self.boot_time:.3f}s (p={self.p_boot:g}s)"


@dataclass(frozen=True)
class Gen2Fingerprint:
    """A Gen 2 host fingerprint: the kernel's refined TSC frequency.

    Linux refines the frequency to 1 kHz precision, so the value is stored
    as an integer number of kHz.
    """

    tsc_khz: int

    @classmethod
    def from_khz(cls, khz: float) -> "Gen2Fingerprint":
        """Build a fingerprint from a raw kHz reading."""
        return cls(tsc_khz=round(khz))

    def __str__(self) -> str:  # pragma: no cover - display helper
        return f"tsc={self.tsc_khz}kHz"


def fingerprint_gen1_instances(
    handles: Sequence[InstanceHandle], p_boot: float = 1.0
) -> list[tuple[InstanceHandle, Gen1Fingerprint]]:
    """Collect Gen 1 fingerprints from a batch of container instances.

    Instances whose probes fail (e.g. the host masks the TSC, or the model
    name carries no frequency) are skipped.
    """
    from repro.core import probes  # deferred: probes constructs Gen1Sample

    tagged: list[tuple[InstanceHandle, Gen1Fingerprint]] = []
    for handle in handles:
        try:
            sample = handle.run(probes.gen1_fingerprint_probe)
        except FingerprintError:
            continue
        tagged.append((handle, sample.fingerprint(p_boot)))
    return tagged


def fingerprint_gen2_instances(
    handles: Sequence[InstanceHandle],
) -> list[tuple[InstanceHandle, Gen2Fingerprint]]:
    """Collect Gen 2 fingerprints from a batch of container instances."""
    from repro.core import probes  # deferred: avoids a circular import

    tagged: list[tuple[InstanceHandle, Gen2Fingerprint]] = []
    for handle in handles:
        khz = handle.run(probes.gen2_fingerprint_probe)
        tagged.append((handle, Gen2Fingerprint.from_khz(khz)))
    return tagged


def group_by_fingerprint(
    tagged: Iterable[tuple[InstanceHandle, object]],
) -> dict[object, list[InstanceHandle]]:
    """Group instance handles by their fingerprint (step 1 of Fig. 3)."""
    groups: dict[object, list[InstanceHandle]] = {}
    for handle, fingerprint in tagged:
        groups.setdefault(fingerprint, []).append(handle)
    return groups
