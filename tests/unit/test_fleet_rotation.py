"""Long-horizon serving-pool rotation invariants.

The census experiments (paper Fig. 12) run for hundreds of rotation
periods, so rotation state must stay consistent far beyond the couple of
periods the basic datacenter tests cover — and it must not depend on
string hash order (set iteration over host ids would tie the placement
layout to PYTHONHASHSEED).
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.cloud.datacenter import DataCenter
from repro.simtime.clock import SimClock

from tests.conftest import tiny_profile

REPO_ROOT = Path(__file__).resolve().parents[2]


def make_dc(seed=7, **overrides):
    clock = SimClock()
    profile = tiny_profile(rotation_fraction=0.2, **overrides)
    return DataCenter(profile, clock, seed=seed), clock


class TestLongHorizonRotation:
    def test_pool_size_invariant_over_many_periods(self):
        dc, clock = make_dc()
        expected = dc.profile.active_hosts
        for _ in range(200):
            clock.sleep(dc.profile.rotation_period)
            pool = dc.serving_pool()
            assert len(pool) == expected
            assert len(set(pool)) == expected
            # Pool + rotated-out always partition the fleet.
            assert len(dc.fleet.pool_order) + len(dc.fleet.rotated_order) == (
                dc.profile.n_hosts
            )

    def test_rotated_out_hosts_eventually_return(self):
        dc, clock = make_dc()
        initial = set(dc.serving_pool())
        clock.sleep(dc.profile.rotation_period)
        rotated_out = initial - set(dc.serving_pool())
        assert rotated_out  # 20% of a 20-host pool rotates each period
        returned = set()
        for _ in range(100):
            clock.sleep(dc.profile.rotation_period)
            returned |= rotated_out & set(dc.serving_pool())
            if returned == rotated_out:
                break
        assert returned == rotated_out

    def test_shard_membership_pinned_over_long_horizon(self):
        dc, clock = make_dc()
        shards_before = [
            dc.shard_hosts(i) for i in range(dc.profile.n_shards)
        ]
        for _ in range(150):
            clock.sleep(dc.profile.rotation_period)
            dc.serving_pool()
        shards_after = [dc.shard_hosts(i) for i in range(dc.profile.n_shards)]
        assert shards_after == shards_before

    def test_rotation_sequence_deterministic_in_seed(self):
        def trace(seed):
            dc, clock = make_dc(seed=seed)
            out = []
            for _ in range(30):
                clock.sleep(dc.profile.rotation_period)
                out.append(dc.serving_pool())
            return out

        assert trace(11) == trace(11)
        assert trace(11) != trace(12)


class TestReadOnlyViews:
    def test_serving_pool_is_cached_tuple(self):
        dc, _clock = make_dc()
        pool = dc.serving_pool()
        assert isinstance(pool, tuple)
        # No rotation happened, so the exact same tuple comes back.
        assert dc.serving_pool() is pool

    def test_shard_hosts_is_cached_tuple(self):
        dc, _clock = make_dc()
        shard = dc.shard_hosts(0)
        assert isinstance(shard, tuple)
        assert dc.shard_hosts(0) is shard


HASHSEED_SCRIPT = """\
from repro.cloud.datacenter import DataCenter
from repro.simtime.clock import SimClock
from tests.conftest import tiny_profile

clock = SimClock()
dc = DataCenter(tiny_profile(rotation_fraction=0.2), clock, seed=5)
for _ in range(40):
    clock.sleep(dc.profile.rotation_period)
    print(",".join(dc.serving_pool()))
"""


def test_rotation_independent_of_pythonhashseed():
    """The pool trace must be byte-identical across interpreter hash seeds.

    Any hidden set/dict-order dependence in pool or rotation state would
    show up here as a diverging host sequence.
    """

    def run(hashseed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hashseed
        env["PYTHONPATH"] = os.pathsep.join(
            [str(REPO_ROOT / "src"), str(REPO_ROOT)]
        )
        result = subprocess.run(
            [sys.executable, "-c", HASHSEED_SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
            check=True,
        )
        return result.stdout

    assert run("0") == run("1") == run("424242")
