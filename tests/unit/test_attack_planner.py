"""Unit tests for the analytic attack planner."""

import pytest

from repro import units
from repro.analysis.policy_inference import IdlePolicyEstimate
from repro.core.attack.planner import (
    AttackPlanner,
    LaunchSchedule,
    PolicyModel,
)


def east_policy() -> PolicyModel:
    """A policy model matching the us-east1 profile's true parameters."""
    return PolicyModel(
        base_set_size=75,
        idle=IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0),
        hot_window_s=30 * units.MINUTE,
        recruit_rate=0.064,
        helper_pool_cap=250,
        candidate_pool_size=225,
    )


def schedule(services=6, launches=6, instances=800, interval_min=10.0):
    return LaunchSchedule(
        n_services=services,
        launches=launches,
        instances_per_service=instances,
        interval_s=interval_min * units.MINUTE,
    )


class TestPredict:
    def test_cold_single_launch_is_base_only(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule(services=1, launches=1))
        assert prediction.expected_hosts == pytest.approx(75, abs=1)

    def test_paper_configuration_prediction(self):
        """The 6x6x800 @ 10 min schedule must predict ~the measured
        footprint (~300 hosts) and ~the measured cost (~$25)."""
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule())
        assert 250 < prediction.expected_hosts < 320
        assert 15 < prediction.cost_usd < 40

    def test_fig9_single_service_prediction(self):
        """One service, six launches: the Fig. 9 curve ends near 264-280."""
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule(services=1))
        assert 230 < prediction.expected_hosts < 320
        assert prediction.helpers_per_service == pytest.approx(205, rel=0.25)

    def test_cold_interval_recruits_nothing(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule(interval_min=45.0))
        assert prediction.helpers_per_service == 0.0
        assert prediction.expected_hosts == pytest.approx(75, abs=1)

    def test_short_interval_recruits_little(self):
        planner = AttackPlanner(east_policy())
        two_min = planner.predict(schedule(interval_min=2.0))
        ten_min = planner.predict(schedule(interval_min=10.0))
        assert two_min.helpers_per_service < 0.2 * ten_min.helpers_per_service

    def test_helper_cap_respected(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule(launches=50, interval_min=12.5))
        assert prediction.helpers_per_service == 250

    def test_cost_scales_with_activations(self):
        planner = AttackPlanner(east_policy())
        single = planner.predict(schedule(services=1))
        six = planner.predict(schedule(services=6))
        assert six.cost_usd == pytest.approx(6 * single.cost_usd)

    def test_duration(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.predict(schedule(launches=6, interval_min=10.0))
        assert prediction.duration_s == pytest.approx(50 * units.MINUTE)


class TestBestInterval:
    def test_prefers_just_past_idle_deadline(self):
        planner = AttackPlanner(east_policy())
        best = planner.best_interval()
        # Max replacements at >= 12 min while < 30 min hot window; ties
        # break toward shorter, so 12 minutes wins.
        assert best == pytest.approx(12 * units.MINUTE)

    def test_all_candidates_outside_window_rejected(self):
        policy = east_policy()
        planner = AttackPlanner(policy)
        with pytest.raises(ValueError):
            planner.best_interval(candidates_s=(policy.hot_window_s + 1.0,))


class TestPlan:
    def test_reaches_target_cheaply(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.plan(target_hosts=280)
        assert prediction.expected_hosts >= 280
        # A cheaper schedule with fewer launches must not also hit 280.
        cheaper = planner.predict(
            LaunchSchedule(
                n_services=max(1, prediction.schedule.n_services - 1),
                launches=2,
                instances_per_service=800,
                interval_s=prediction.schedule.interval_s,
            )
        )
        assert cheaper.expected_hosts < 280 or cheaper.cost_usd >= prediction.cost_usd

    def test_unreachable_target_rejected(self):
        planner = AttackPlanner(east_policy())
        with pytest.raises(ValueError):
            planner.plan(target_hosts=10_000)

    def test_modest_target_needs_few_services(self):
        planner = AttackPlanner(east_policy())
        prediction = planner.plan(target_hosts=150)
        assert prediction.schedule.n_services <= 2
