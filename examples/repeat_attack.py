#!/usr/bin/env python3
"""Repeat attacks with victim profiling (§5.2, attack optimizations).

First strike: run a full campaign, verify co-location, and record the
fingerprints of hosts that serve victim instances (the victim's likely
base hosts).  Second strike, days later: launch again and use the profile
to focus side-channel effort on the handful of attacker instances that sit
on profiled hosts — instead of monitoring thousands.

Run:  python examples/repeat_attack.py
"""

from repro import units
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import optimized_launch
from repro.core.attack.targeting import VictimProfile
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env


def main() -> None:
    env = default_env("us-east1", seed=61)
    attacker = env.attacker
    victim = env.victim("account-2")

    # --- First strike: full campaign with verification. ---
    campaign = ColocationCampaign(
        attacker=attacker,
        victim=victim,
        strategy=lambda c: optimized_launch(c, service_prefix="strike1"),
    )
    result = campaign.run(n_victim_instances=100, victim_service_name="victim-api")
    print(f"strike 1: coverage {100 * result.coverage:.1f}%, "
          f"{result.shared_hosts} shared hosts")

    # Record the victim's host fingerprints from the verified clusters: the
    # attacker fingerprints its own instances (cheap) and keeps those whose
    # verified cluster also contains a victim instance.
    cluster_of = result.verification.cluster_index()
    victim_handles = [
        h for cluster in result.verification.clusters for h in cluster
        if h.instance_id.startswith("account-2/")
    ]
    attacker_alive = [
        h for cluster in result.verification.clusters for h in cluster
        if h.instance_id.startswith("account-1/") and h.alive
    ]
    tagged = fingerprint_gen1_instances(attacker_alive, p_boot=1.0)
    profile = VictimProfile.from_campaign(
        now=attacker.now(),
        victim_handles=victim_handles,
        cluster_of=cluster_of,
        attacker_fingerprints={h.instance_id: fp for h, fp in tagged},
    )
    print(f"profiled {len(profile.fingerprints)} victim host fingerprints")

    # --- Days pass; everyone's instances die. ---
    for name in attacker.service_names():
        attacker.disconnect(name)
    victim.disconnect("victim-api")
    attacker.wait(2 * units.DAY)

    # --- Second strike: launch, then focus on profiled hosts only. ---
    outcome = optimized_launch(attacker, service_prefix="strike2")
    tagged2 = fingerprint_gen1_instances(outcome.handles, p_boot=1.0)
    targets = profile.select_targets(tagged2, now=attacker.now())
    print(
        f"strike 2: {len(outcome.handles)} instances launched, "
        f"{len(targets)} sit on profiled victim hosts "
        f"({100 * len(targets) / len(outcome.handles):.1f}% of the fleet)"
    )

    # Validate against the oracle: how many targets truly share a host with
    # the victim's relaunched fleet?
    victim_handles2 = victim.connect("victim-api", 100)
    orch = env.orchestrator
    victim_hosts = {orch.true_host_of(h.instance_id) for h in victim_handles2}
    on_target = sum(
        1 for h in targets if orch.true_host_of(h.instance_id) in victim_hosts
    )
    print(
        f"targeting precision: {on_target}/{len(targets)} focused instances "
        f"are truly co-located with the victim"
    )


if __name__ == "__main__":
    main()
