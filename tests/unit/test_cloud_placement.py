"""Unit tests for the placement policy."""

import numpy as np
import pytest

from repro.cloud.placement import PlacementPolicy, PlacementRequest
from repro.errors import NoCapacityError


def make_policy(seed=0):
    return PlacementPolicy(np.random.default_rng(seed))


def simple_request(count, hosts, slots=1.0, **kwargs):
    return PlacementRequest(
        count=count, slots_per_instance=slots, allowed_host_ids=hosts, **kwargs
    )


class TestPlacement:
    def test_spreads_near_uniformly(self):
        """Observation 1: instances spread near-uniformly over hosts."""
        hosts = [f"h{i}" for i in range(10)]
        policy = make_policy()
        placed = policy.place(
            simple_request(105, hosts), {}, {h: 1000.0 for h in hosts}
        )
        counts = {h: placed.count(h) for h in hosts}
        assert set(counts.values()) <= {10, 11}

    def test_exact_division_is_uniform(self):
        hosts = ["a", "b", "c"]
        placed = make_policy().place(
            simple_request(9, hosts), {}, {h: 100.0 for h in hosts}
        )
        assert all(placed.count(h) == 3 for h in hosts)

    def test_respects_capacity(self):
        hosts = ["full", "free"]
        load = {"full": 9.5}
        capacity = {"full": 10.0, "free": 10.0}
        placed = make_policy().place(simple_request(5, hosts), load, capacity)
        assert placed.count("full") == 0
        assert placed.count("free") == 5

    def test_updates_load_in_place(self):
        load = {}
        make_policy().place(simple_request(4, ["a"]), load, {"a": 100.0})
        assert load["a"] == 4.0

    def test_no_capacity_raises(self):
        with pytest.raises(NoCapacityError):
            make_policy().place(simple_request(3, ["a"]), {}, {"a": 2.0})

    def test_empty_allowed_set_raises(self):
        with pytest.raises(NoCapacityError):
            make_policy().place(simple_request(1, []), {}, {})

    def test_prefers_hosts_with_fewer_service_instances(self):
        hosts = ["crowded", "empty"]
        request = simple_request(1, hosts, service_host_counts={"crowded": 5})
        placed = make_policy().place(request, {}, {h: 100.0 for h in hosts})
        assert placed == ["empty"]

    def test_ignores_other_services_load(self):
        """Spreading keys on the service's own counts, not total host load:
        a host crowded by *other* tenants is still a fair target."""
        hosts = ["busy", "quiet"]
        load = {"busy": 50.0}
        placed = make_policy().place(
            simple_request(10, hosts), load, {h: 100.0 for h in hosts}
        )
        assert placed.count("busy") == 5
        assert placed.count("quiet") == 5

    def test_slots_scale_with_container_size(self):
        load = {}
        make_policy().place(
            simple_request(2, ["a"], slots=4.0), load, {"a": 100.0}
        )
        assert load["a"] == 8.0

    def test_scatter_targets_outside_allowed_set(self):
        request = simple_request(
            200,
            ["base"],
            scatter_probability=0.5,
            scatter_candidate_ids=[f"s{i}" for i in range(50)],
        )
        capacity = {"base": 1000.0, **{f"s{i}": 1000.0 for i in range(50)}}
        placed = make_policy().place(request, {}, capacity)
        scattered = [h for h in placed if h != "base"]
        assert 50 < len(scattered) < 150  # ~50% of 200

    def test_zero_scatter_probability_never_scatters(self):
        request = simple_request(
            50, ["base"], scatter_probability=0.0, scatter_candidate_ids=["other"]
        )
        placed = make_policy().place(request, {}, {"base": 100.0, "other": 100.0})
        assert set(placed) == {"base"}

    def test_scatter_falls_back_to_allowed_when_targets_full(self):
        request = simple_request(
            10,
            ["base"],
            scatter_probability=1.0,
            scatter_candidate_ids=["tiny"],
        )
        placed = make_policy().place(request, {}, {"base": 100.0, "tiny": 0.0})
        assert set(placed) == {"base"}

    def test_deterministic_given_seed(self):
        hosts = [f"h{i}" for i in range(7)]
        capacity = {h: 100.0 for h in hosts}
        a = make_policy(seed=3).place(simple_request(20, hosts), {}, dict(capacity))
        b = make_policy(seed=3).place(simple_request(20, hosts), {}, dict(capacity))
        assert a == b
