"""Platform profiles: lookup, validation, knobs, and end-to-end wiring."""

from __future__ import annotations

import pytest

from repro.cloud.platform import (
    PLATFORM_PROFILES,
    PlatformProfile,
    current_platform,
    platform_context,
    platform_profile,
)
from repro.cloud.services import ServiceConfig
from repro.errors import CloudError
from repro.experiments.base import default_env
from repro.runner import CellSpec, RunnerConfig, run_cells
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.microvm import MicroVMSandbox
from tests.conftest import tiny_profile
from tests.unit.test_ctest_vectorized import launch, rng_state


class TestLookup:
    def test_known_profiles(self):
        assert set(PLATFORM_PROFILES) == {
            "default",
            "aws_lambda_like",
            "azure_functions_like",
        }
        for name in PLATFORM_PROFILES:
            assert platform_profile(name) is PLATFORM_PROFILES[name]

    def test_unknown_profile_names_known_profiles(self):
        with pytest.raises(
            CloudError,
            match=r"unknown platform profile: 'gcp'; known profiles: "
            r"aws_lambda_like, azure_functions_like, default",
        ):
            platform_profile("gcp")


class TestValidation:
    def test_nonpositive_spread_rejected(self):
        with pytest.raises(CloudError, match="placement_spread must be > 0"):
            PlatformProfile(name="bad", description="", placement_spread=0.0)

    def test_idle_window_must_be_overridden_together(self):
        with pytest.raises(CloudError, match="overridden together"):
            PlatformProfile(name="bad", description="", idle_grace_s=10.0)

    def test_idle_window_must_be_ordered(self):
        with pytest.raises(CloudError, match="idle_grace_s <= idle_deadline_s"):
            PlatformProfile(
                name="bad",
                description="",
                idle_grace_s=20.0,
                idle_deadline_s=10.0,
            )

    def test_unknown_sandbox_generation_rejected(self):
        with pytest.raises(CloudError, match="unknown sandbox_generation"):
            PlatformProfile(name="bad", description="", sandbox_generation="gen3")

    def test_unknown_exposure_rejected(self):
        with pytest.raises(CloudError, match="unknown instance_id_exposure"):
            PlatformProfile(name="bad", description="", instance_id_exposure="gen0")

    def test_unknown_noise_kind_names_registry(self):
        with pytest.raises(
            ValueError, match="unknown covert-channel resource kind: 'cache'"
        ):
            PlatformProfile(
                name="bad", description="", channel_noise=(("cache", 2.0),)
            )

    def test_nonpositive_noise_multiplier_rejected(self):
        with pytest.raises(CloudError, match="noise multiplier must be > 0"):
            PlatformProfile(
                name="bad", description="", channel_noise=(("llc", 0.0),)
            )


class TestKnobs:
    def test_neutral_scatter_returns_input_unchanged(self):
        default = platform_profile("default")
        assert default.effective_scatter(0.37) == 0.37
        assert default.effective_scatter(0.0) == 0.0

    def test_scatter_scales_and_caps(self):
        aws = platform_profile("aws_lambda_like")
        assert aws.effective_scatter(0.5) == pytest.approx(0.7)
        assert aws.effective_scatter(0.9) == 1.0
        assert aws.effective_scatter(0.0) == 0.0
        azure = platform_profile("azure_functions_like")
        assert azure.effective_scatter(0.5) == pytest.approx(0.35)

    def test_idle_window_resolution(self):
        assert platform_profile("default").idle_window(60.0, 120.0) == (60.0, 120.0)
        assert platform_profile("aws_lambda_like").idle_window(60.0, 120.0) == (
            300.0,
            600.0,
        )

    def test_generation_resolution(self):
        assert platform_profile("default").generation_for("gen1") == "gen1"
        assert platform_profile("aws_lambda_like").generation_for("gen1") == "gen2"
        assert platform_profile("azure_functions_like").generation_for("gen2") == "gen1"

    def test_noise_multiplier_lookup(self):
        aws = platform_profile("aws_lambda_like")
        assert aws.noise_multiplier("llc") == 2.0
        assert aws.noise_multiplier("dvfs") == 1.25
        assert aws.noise_multiplier("rng") == 1.0


class TestAmbientContext:
    def test_context_scopes_profile(self):
        assert current_platform() is None
        aws = platform_profile("aws_lambda_like")
        with platform_context(aws):
            assert current_platform() is aws
        assert current_platform() is None

    def test_default_env_picks_up_ambient_platform(self):
        aws = platform_profile("aws_lambda_like")
        with platform_context(aws):
            env = default_env(profile=tiny_profile(), seed=5)
        assert env.datacenter.platform is aws
        assert env.orchestrator.platform is aws


class TestEndToEnd:
    def test_default_profile_is_byte_identical_to_no_profile(self):
        bare = default_env(profile=tiny_profile(), seed=7)
        profiled = default_env(
            profile=tiny_profile(), seed=7, platform="default"
        )
        bare_handles = launch(bare, 10)
        profiled_handles = launch(profiled, 10)
        assert [h.instance_id for h in bare_handles] == [
            h.instance_id for h in profiled_handles
        ]
        assert {
            h.instance_id: bare.orchestrator.true_host_of(h.instance_id)
            for h in bare_handles
        } == {
            h.instance_id: profiled.orchestrator.true_host_of(h.instance_id)
            for h in profiled_handles
        }
        assert rng_state(bare_handles[0]) == rng_state(profiled_handles[0])

    def test_aws_platform_forces_microvm_sandboxes(self):
        env = default_env(
            profile=tiny_profile(), seed=7, platform="aws_lambda_like"
        )
        client = env.clients["account-1"]
        client.deploy(ServiceConfig(name="svc", generation="gen1"))
        handle = client.connect("svc", 1)[0]
        assert isinstance(handle._instance.sandbox, MicroVMSandbox)

    def test_azure_platform_forces_gvisor_sandboxes(self):
        env = default_env(
            profile=tiny_profile(), seed=7, platform="azure_functions_like"
        )
        client = env.clients["account-1"]
        client.deploy(ServiceConfig(name="svc", generation="gen2"))
        handle = client.connect("svc", 1)[0]
        assert isinstance(handle._instance.sandbox, GVisorSandbox)

    def test_channel_noise_reaches_host_resources(self):
        env = default_env(
            profile=tiny_profile(), seed=7, platform="aws_lambda_like"
        )
        handle = launch(env, 1)[0]
        host = env.datacenter.host(
            env.orchestrator.true_host_of(handle.instance_id)
        )
        assert host.channel_resource("llc").background_rate == pytest.approx(0.24)
        assert host.channel_resource("llc").drop_rate == pytest.approx(0.10)
        assert host.channel_resource("dvfs").background_rate == pytest.approx(0.075)
        # Kinds absent from the profile's noise tuple stay bit-exact.
        assert host.channel_resource("rng").background_rate == 0.005


def _probe_cell(params: dict, seed: int) -> dict:
    return {"seed": seed}


class TestRunnerIntegration:
    def _spec(self) -> CellSpec:
        return CellSpec(
            experiment="platform-cache-probe",
            fn=_probe_cell,
            config={},
            seed=1,
        )

    def test_platform_runs_cache_under_their_own_key(self):
        runner = RunnerConfig(
            cache_read=True,
            cache_write=True,
            platform=platform_profile("aws_lambda_like"),
        )
        first = run_cells([self._spec()], runner)
        second = run_cells([self._spec()], runner)
        assert not first[0].cached
        assert second[0].cached  # the profile name is in the cell key
        # ...but a baseline run never reads a platform-shaped entry.
        baseline = run_cells(
            [self._spec()], RunnerConfig(cache_read=True, cache_write=True)
        )
        assert not baseline[0].cached
        assert baseline[0].key != first[0].key

    def test_no_platform_still_caches(self):
        runner = RunnerConfig(cache_read=True, cache_write=True)
        first = run_cells([self._spec()], runner)
        second = run_cells([self._spec()], runner)
        assert not first[0].cached
        assert second[0].cached
