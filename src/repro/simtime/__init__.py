"""Deterministic simulated time.

Everything in this package runs against a :class:`SimClock` instead of the
real wall clock, so that week-long experiments (e.g. the fingerprint
expiration study of Figure 5) run in milliseconds and are fully reproducible.
"""

from repro.simtime.clock import SIM_EPOCH, SimClock
from repro.simtime.scheduler import EventScheduler, ScheduledEvent

__all__ = ["SIM_EPOCH", "SimClock", "EventScheduler", "ScheduledEvent"]
