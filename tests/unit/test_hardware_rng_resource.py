"""Unit tests for the RNG contention resource."""

import numpy as np
import pytest

from repro.hardware.rng_resource import RngContentionResource


def noiseless() -> RngContentionResource:
    return RngContentionResource(background_rate=0.0, drop_rate=0.0)


class TestRngContentionResource:
    def test_single_pressurer_observes_only_itself(self, rng):
        res = noiseless()
        res.start_pressure("a")
        assert res.observe("a", rng) == 1

    def test_two_colocated_pressurers_observe_two(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("b")
        assert res.observe("a", rng) == 2
        assert res.observe("b", rng) == 2

    def test_n_pressurers_observe_n(self, rng):
        res = noiseless()
        for i in range(5):
            res.start_pressure(f"i{i}")
        assert res.observe("i0", rng) == 5

    def test_observe_without_pressure_rejected(self, rng):
        res = noiseless()
        with pytest.raises(ValueError):
            res.observe("ghost", rng)

    def test_stop_pressure_removes_contribution(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("b")
        res.stop_pressure("b")
        assert res.observe("a", rng) == 1

    def test_stop_unknown_is_noop(self):
        noiseless().stop_pressure("ghost")

    def test_double_start_counts_once(self, rng):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("a")
        assert res.pressurer_count == 1

    def test_background_rate_bounds_validated(self):
        with pytest.raises(ValueError):
            RngContentionResource(background_rate=1.5)
        with pytest.raises(ValueError):
            RngContentionResource(drop_rate=-0.1)

    def test_background_contention_is_rare(self, rng):
        """Paper: the chance of background RNG contention is under 1%."""
        res = RngContentionResource()
        res.start_pressure("solo")
        observations = [res.observe("solo", rng) for _ in range(5000)]
        elevated = sum(1 for level in observations if level >= 2)
        assert elevated / len(observations) < 0.02

    def test_drops_occasionally_hide_partners(self, rng):
        res = RngContentionResource(background_rate=0.0, drop_rate=0.5)
        res.start_pressure("a")
        res.start_pressure("b")
        observations = [res.observe("a", rng) for _ in range(500)]
        assert min(observations) == 1 and max(observations) == 2


def noisy() -> RngContentionResource:
    """Nonzero noise on both axes so stream identity is actually exercised."""
    return RngContentionResource(background_rate=0.3, drop_rate=0.25)


def scalar_window(
    res: RngContentionResource,
    observers: list[str],
    n_rounds: int,
    death_round: dict[str, int],
    rngs: dict[str, np.random.Generator],
) -> dict[str, list[int]]:
    """Reference engine: the scalar per-round loop, visiting observers in
    schedule order and stopping a dying observer's pressure at its own slot.

    Mutates ``res`` (dead observers are unregistered), so callers give it
    its own resource instance.
    """
    levels: dict[str, list[int]] = {instance_id: [] for instance_id in observers}
    dead: set[str] = set()
    for round_index in range(n_rounds):
        for instance_id in observers:
            if instance_id in dead:
                continue
            if death_round.get(instance_id) == round_index:
                dead.add(instance_id)
                res.stop_pressure(instance_id)
                continue
            levels[instance_id].append(res.observe(instance_id, rngs[instance_id]))
    return levels


class TestObserveRounds:
    """Pins the draw-order contract: ``observe_rounds`` is byte-identical
    to the scalar loop — same levels, same generator end states."""

    def _twin_worlds(self, observers, externals=()):
        scalar_res, batch_res = noisy(), noisy()
        for res in (scalar_res, batch_res):
            for instance_id in list(observers) + list(externals):
                res.start_pressure(instance_id)
        scalar_rngs = {o: np.random.default_rng(100 + i) for i, o in enumerate(observers)}
        batch_rngs = {o: np.random.default_rng(100 + i) for i, o in enumerate(observers)}
        return scalar_res, batch_res, scalar_rngs, batch_rngs

    def assert_identical(self, observers, n_rounds, death_round, externals=()):
        scalar_res, batch_res, scalar_rngs, batch_rngs = self._twin_worlds(
            observers, externals
        )
        expected = scalar_window(
            scalar_res, observers, n_rounds, death_round, scalar_rngs
        )
        got = batch_res.observe_rounds(
            [(o, batch_rngs[o]) for o in observers],
            n_rounds,
            stop_rounds=[death_round.get(o) for o in observers],
        )
        for instance_id, levels in zip(observers, got):
            assert list(levels) == expected[instance_id], instance_id
        for instance_id in observers:
            assert (
                str(batch_rngs[instance_id].bit_generator.state)
                == str(scalar_rngs[instance_id].bit_generator.state)
            ), f"generator end state diverged for {instance_id}"

    def test_contract_pin_no_deaths(self):
        self.assert_identical(["a", "b", "c"], n_rounds=40, death_round={})

    def test_contract_pin_with_external_pressurers(self):
        # Non-observer pressurers contribute every round on both paths.
        self.assert_identical(
            ["a", "b"], n_rounds=30, death_round={}, externals=["x", "y", "z"]
        )

    def test_contract_pin_with_mid_window_death(self):
        self.assert_identical(["a", "b", "c"], n_rounds=20, death_round={"b": 7})

    def test_contract_pin_death_at_round_zero(self):
        self.assert_identical(["a", "b"], n_rounds=15, death_round={"a": 0})

    def test_contract_pin_death_at_last_round(self):
        self.assert_identical(["a", "b"], n_rounds=15, death_round={"b": 14})

    def test_contract_pin_everyone_dies(self):
        self.assert_identical(
            ["a", "b", "c"], n_rounds=12, death_round={"a": 3, "b": 3, "c": 9}
        )

    def test_single_observer(self):
        self.assert_identical(["solo"], n_rounds=25, death_round={})

    def test_death_slot_ordering_within_round(self):
        """In the death round itself, observers scheduled *before* the dying
        instance still see its pressure; observers after it do not."""
        res = noiseless()
        for instance_id in ("early", "dying", "late"):
            res.start_pressure(instance_id)
        rngs = {o: np.random.default_rng(0) for o in ("early", "dying", "late")}
        early, dying, late = res.observe_rounds(
            [(o, rngs[o]) for o in ("early", "dying", "late")],
            n_rounds=2,
            stop_rounds=[None, 1, None],
        )
        assert list(early) == [3, 3]  # sees the dying pressurer both rounds
        assert list(dying) == [3]  # observes only round 0
        assert list(late) == [3, 2]  # dying already gone at late's slot

    def test_does_not_mutate_pressurer_set(self):
        res = noiseless()
        res.start_pressure("a")
        res.start_pressure("b")
        rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(2)
        res.observe_rounds([("a", rng_a), ("b", rng_b)], 5, stop_rounds=[2, None])
        assert res.current_pressurers() == {"a", "b"}

    def test_zero_rounds_consumes_no_state(self):
        res = noiseless()
        res.start_pressure("a")
        rng_a = np.random.default_rng(7)
        before = str(rng_a.bit_generator.state)
        (levels,) = res.observe_rounds([("a", rng_a)], 0)
        assert levels.size == 0
        assert str(rng_a.bit_generator.state) == before

    def test_stop_rounds_clamped_to_window(self):
        res = noiseless()
        res.start_pressure("a")
        (levels,) = res.observe_rounds(
            [("a", np.random.default_rng(7))], 4, stop_rounds=[99]
        )
        assert list(levels) == [1, 1, 1, 1]

    def test_duplicate_observers_rejected(self):
        res = noiseless()
        res.start_pressure("a")
        rngs = (np.random.default_rng(1), np.random.default_rng(2))
        with pytest.raises(ValueError, match="distinct"):
            res.observe_rounds([("a", rngs[0]), ("a", rngs[1])], 3)

    def test_non_pressuring_observer_rejected(self):
        res = noiseless()
        res.start_pressure("a")
        with pytest.raises(ValueError, match="ghost"):
            res.observe_rounds(
                [("a", np.random.default_rng(1)), ("ghost", np.random.default_rng(2))],
                3,
            )

    def test_stop_rounds_length_mismatch_rejected(self):
        res = noiseless()
        res.start_pressure("a")
        with pytest.raises(ValueError, match="stop_rounds"):
            res.observe_rounds([("a", np.random.default_rng(1))], 3, stop_rounds=[1, 2])

    def test_negative_stop_round_rejected(self):
        res = noiseless()
        res.start_pressure("a")
        with pytest.raises(ValueError, match="stop_rounds"):
            res.observe_rounds([("a", np.random.default_rng(1))], 3, stop_rounds=[-1])

    def test_negative_n_rounds_rejected(self):
        res = noiseless()
        res.start_pressure("a")
        with pytest.raises(ValueError, match="n_rounds"):
            res.observe_rounds([("a", np.random.default_rng(1))], -1)
