"""Integration tests reproducing Observations 1-6 (§5.1) at small scale.

Each test is a black-box experiment against the simulated orchestrator,
mirroring the methodology of the paper's Experiments 1-4.
"""

from collections import Counter


from repro import units
from repro.cloud.services import LARGE, SMALL, ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances


def footprint(client, name, n):
    handles = client.connect(name, n)
    return {fp for _h, fp in fingerprint_gen1_instances(handles, p_boot=1.0)}


class TestObservation1:
    def test_instances_share_hosts_near_uniformly(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="obs1"))
        handles = client.connect(name, 40)
        counts = Counter(
            tiny_env.orchestrator.true_host_of(h.instance_id) for h in handles
        )
        assert len(counts) == tiny_env.datacenter.profile.shard_size
        assert max(counts.values()) - min(counts.values()) <= 1


class TestObservation2:
    def test_gradual_idle_termination(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="obs2"))
        handles = client.connect(name, 30)
        client.disconnect(name)
        profile = tiny_env.datacenter.profile
        client.wait(profile.idle_grace - 10.0)
        alive_early = sum(h.alive for h in handles)
        client.wait((profile.idle_deadline - profile.idle_grace) / 2)
        alive_mid = sum(h.alive for h in handles)
        client.wait(profile.idle_deadline)
        alive_late = sum(h.alive for h in handles)
        assert alive_early == 30
        assert 0 < alive_mid < 30
        assert alive_late == 0


class TestObservation3:
    def test_consistent_base_hosts_across_cold_launches(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="obs3"))
        fps = []
        for _ in range(3):
            fps.append(footprint(client, name, 20))
            client.disconnect(name)
            client.wait(45 * units.MINUTE)
        cumulative = set().union(*fps)
        # Footprints overlap heavily: cumulative barely exceeds one launch.
        assert len(cumulative) <= len(fps[0]) + 2

    def test_fresh_services_same_account_share_base_hosts(self, tiny_env):
        client = tiny_env.attacker
        a = client.deploy(ServiceConfig(name="obs3a"))
        fp_a = footprint(client, a, 20)
        client.disconnect(a)
        client.wait(45 * units.MINUTE)
        b = client.deploy(ServiceConfig(name="obs3b"))
        client.rebuild_image(b)
        fp_b = footprint(client, b, 20)
        assert len(fp_a & fp_b) >= 0.8 * len(fp_a)


class TestObservation4:
    def test_different_accounts_different_base_hosts(self, tiny_env):
        fp1 = footprint(
            tiny_env.attacker,
            tiny_env.attacker.deploy(ServiceConfig(name="a1")),
            20,
        )
        fp2 = footprint(
            tiny_env.victim("account-2"),
            tiny_env.victim("account-2").deploy(ServiceConfig(name="a2")),
            20,
        )
        assert fp1.isdisjoint(fp2)


class TestObservation5:
    def test_short_interval_relaunches_recruit_helpers(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="obs5"))
        first = footprint(client, name, 16)
        client.disconnect(name)
        cumulative = set(first)
        for _ in range(3):
            client.wait(10 * units.MINUTE)
            fp = footprint(client, name, 16)
            client.disconnect(name)
            cumulative |= fp
        assert len(cumulative) > len(first)

    def test_long_interval_does_not_recruit(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="obs5b"))
        first = footprint(client, name, 16)
        client.disconnect(name)
        cumulative = set(first)
        for _ in range(3):
            client.wait(45 * units.MINUTE)
            fp = footprint(client, name, 16)
            client.disconnect(name)
            cumulative |= fp
        assert len(cumulative) <= len(first) + 1

    def test_tiny_interval_recruits_little(self, tiny_env_factory):
        """Fig. 9 companion: a 2-minute interval barely terminates any idle
        instances, so few replacements are created and few helpers appear."""

        def growth(interval_minutes, seed=13):
            env = tiny_env_factory(seed=seed)
            client = env.attacker
            name = client.deploy(ServiceConfig(name="obs5c"))
            first = footprint(client, name, 16)
            client.disconnect(name)
            cumulative = set(first)
            for _ in range(3):
                client.wait(interval_minutes * units.MINUTE)
                cumulative |= footprint(client, name, 16)
                client.disconnect(name)
            return len(cumulative) - len(first)

        assert growth(2.0) < growth(10.0)


class TestObservation6:
    def test_services_use_overlapping_helper_sets(self, tiny_env):
        client = tiny_env.attacker

        def prime(name):
            service = client.deploy(ServiceConfig(name=name))
            first = footprint(client, service, 16)
            client.disconnect(service)
            last = first
            for _ in range(3):
                client.wait(10 * units.MINUTE)
                last = footprint(client, service, 16)
                client.disconnect(service)
            client.wait(45 * units.MINUTE)
            return last - first  # helper footprint

        helpers_a = prime("svc-a")
        helpers_b = prime("svc-b")
        assert helpers_a and helpers_b
        assert helpers_a != helpers_b  # different sets...
        assert helpers_a & helpers_b  # ...that overlap


class TestOtherFactors:
    def test_sizes_share_base_hosts(self, tiny_env):
        """§5.1: instances with different resource specs share base hosts."""
        client = tiny_env.attacker
        small = client.deploy(ServiceConfig(name="sz-s", size=SMALL))
        large = client.deploy(ServiceConfig(name="sz-l", size=LARGE))
        fp_small = footprint(client, small, 10)
        fp_large = footprint(client, large, 10)
        assert fp_small & fp_large
