"""Durable attacker-side state: fingerprint stores and victim profiles.

The repeat-attack optimization (§5.2) spans sessions: fingerprints of
victim hosts recorded during one campaign are reused days later.  This
module serializes the attacker's knowledge — fingerprints, observation
times, victim profiles, drift histories — to plain JSON so campaigns can
be scripted across runs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.core.attack.targeting import VictimProfile
from repro.core.attack.tracking import FingerprintHistory
from repro.core.fingerprint import Gen1Fingerprint, Gen2Fingerprint
from repro.errors import ReproError


class PersistenceError(ReproError):
    """Raised for malformed or incompatible serialized state."""


# ----------------------------------------------------------------------
# Fingerprint (de)serialization
# ----------------------------------------------------------------------
def fingerprint_to_dict(fingerprint: Gen1Fingerprint | Gen2Fingerprint) -> dict:
    """Serialize either fingerprint kind to a tagged JSON-able dict."""
    if isinstance(fingerprint, Gen1Fingerprint):
        return {
            "kind": "gen1",
            "cpu_model": fingerprint.cpu_model,
            "boot_bucket": fingerprint.boot_bucket,
            "p_boot": fingerprint.p_boot,
        }
    if isinstance(fingerprint, Gen2Fingerprint):
        return {"kind": "gen2", "tsc_khz": fingerprint.tsc_khz}
    raise PersistenceError(f"cannot serialize {type(fingerprint).__name__}")


def fingerprint_from_dict(payload: dict) -> Gen1Fingerprint | Gen2Fingerprint:
    """Inverse of :func:`fingerprint_to_dict`."""
    try:
        kind = payload["kind"]
        if kind == "gen1":
            return Gen1Fingerprint(
                cpu_model=payload["cpu_model"],
                boot_bucket=int(payload["boot_bucket"]),
                p_boot=float(payload["p_boot"]),
            )
        if kind == "gen2":
            return Gen2Fingerprint(tsc_khz=int(payload["tsc_khz"]))
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(f"malformed fingerprint payload: {payload!r}") from error
    raise PersistenceError(f"unknown fingerprint kind {kind!r}")


# ----------------------------------------------------------------------
# Victim profiles
# ----------------------------------------------------------------------
def victim_profile_to_dict(profile: VictimProfile) -> dict:
    """Serialize a victim profile (Gen 1 fingerprints + timestamp)."""
    return {
        "recorded_at": profile.recorded_at,
        "fingerprints": [fingerprint_to_dict(fp) for fp in profile.fingerprints],
    }


def victim_profile_from_dict(payload: dict) -> VictimProfile:
    """Inverse of :func:`victim_profile_to_dict`."""
    try:
        fingerprints = {
            fingerprint_from_dict(item) for item in payload["fingerprints"]
        }
        recorded_at = float(payload["recorded_at"])
    except (KeyError, TypeError) as error:
        raise PersistenceError(f"malformed victim profile: {payload!r}") from error
    bad = [fp for fp in fingerprints if not isinstance(fp, Gen1Fingerprint)]
    if bad:
        raise PersistenceError("victim profiles hold Gen 1 fingerprints only")
    return VictimProfile(recorded_at=recorded_at, fingerprints=fingerprints)


# ----------------------------------------------------------------------
# Drift histories
# ----------------------------------------------------------------------
def history_to_dict(history: FingerprintHistory) -> dict:
    """Serialize one host's drift history."""
    return {"wall_times": history.wall_times, "boot_times": history.boot_times}


def history_from_dict(payload: dict) -> FingerprintHistory:
    """Inverse of :func:`history_to_dict`."""
    try:
        return FingerprintHistory(
            wall_times=[float(t) for t in payload["wall_times"]],
            boot_times=[float(b) for b in payload["boot_times"]],
        )
    except (KeyError, TypeError, ValueError) as error:
        raise PersistenceError(f"malformed history: {payload!r}") from error


# ----------------------------------------------------------------------
# The fingerprint store
# ----------------------------------------------------------------------
@dataclass
class Observation:
    """One stored fingerprint observation."""

    label: str
    fingerprint: Gen1Fingerprint | Gen2Fingerprint
    observed_at: float


@dataclass
class FingerprintStore:
    """A file-backed collection of labeled fingerprint observations.

    Labels are free-form attacker bookkeeping: a campaign id, a victim
    account, a region.  Typical life cycle::

        store = FingerprintStore()
        store.add("victim-api@us-east1", fingerprint, observed_at=now)
        store.save(path)
        ...days later...
        store = FingerprintStore.load(path)
        old = store.query("victim-api@us-east1")
    """

    observations: list[Observation] = field(default_factory=list)

    def add(
        self,
        label: str,
        fingerprint: Gen1Fingerprint | Gen2Fingerprint,
        observed_at: float,
    ) -> None:
        """Record one observation."""
        self.observations.append(
            Observation(label=label, fingerprint=fingerprint, observed_at=observed_at)
        )

    def add_many(
        self,
        label: str,
        fingerprints: Iterable[Gen1Fingerprint | Gen2Fingerprint],
        observed_at: float,
    ) -> None:
        """Record a batch of observations under one label."""
        for fingerprint in fingerprints:
            self.add(label, fingerprint, observed_at)

    def labels(self) -> list[str]:
        """All distinct labels, sorted."""
        return sorted({obs.label for obs in self.observations})

    def query(self, label: str) -> list[Observation]:
        """All observations under ``label`` (insertion order)."""
        return [obs for obs in self.observations if obs.label == label]

    def __len__(self) -> int:
        return len(self.observations)

    # -- file I/O -------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Write the store to ``path`` as JSON."""
        payload = {
            "format": "repro-fingerprint-store",
            "version": 1,
            "observations": [
                {
                    "label": obs.label,
                    "observed_at": obs.observed_at,
                    "fingerprint": fingerprint_to_dict(obs.fingerprint),
                }
                for obs in self.observations
            ],
        }
        Path(path).write_text(json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | Path) -> "FingerprintStore":
        """Read a store previously written by :meth:`save`.

        Raises
        ------
        PersistenceError
            If the file is not a compatible store.
        """
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as error:
            raise PersistenceError(f"cannot read store at {path}: {error}") from error
        if payload.get("format") != "repro-fingerprint-store":
            raise PersistenceError(f"{path} is not a fingerprint store")
        if payload.get("version") != 1:
            raise PersistenceError(
                f"unsupported store version {payload.get('version')!r}"
            )
        store = cls()
        for item in payload.get("observations", []):
            try:
                store.add(
                    label=item["label"],
                    fingerprint=fingerprint_from_dict(item["fingerprint"]),
                    observed_at=float(item["observed_at"]),
                )
            except (KeyError, TypeError) as error:
                raise PersistenceError(f"malformed observation: {item!r}") from error
        return store
