"""Detecting victim activity from a co-located instance (threat model §3).

Once co-located, the attacker's instance samples CPU contention on its host
and turns the noisy level series into binary activity episodes.  Together
with the co-location pipeline this completes the paper's step 1 → step 2
hand-off: the attacker knows *where* the victim runs and *when* it runs;
actual secret extraction (cache attacks etc.) is out of scope, as in the
paper.

The detector is deliberately simple — threshold + debouncing — because on
FaaS hosts the baseline is bursty but low (idle siblings release their
CPU), so victim request bursts stand out.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.api import InstanceHandle


@dataclass(frozen=True)
class ActivitySample:
    """One contention observation."""

    at: float
    level: int


@dataclass(frozen=True)
class ActivityEpisode:
    """One detected burst of co-located activity."""

    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    def overlaps(self, start: float, end: float) -> bool:
        """Whether this episode intersects ``[start, end]``."""
        return self.start <= end and start <= self.end


@dataclass
class ActivityTimeline:
    """A monitored contention series plus its detected episodes."""

    samples: list[ActivitySample] = field(default_factory=list)
    episodes: list[ActivityEpisode] = field(default_factory=list)

    def detected_at(self, when: float) -> bool:
        """Whether ``when`` falls inside any detected episode."""
        return any(e.start <= when <= e.end for e in self.episodes)


class ActivityDetector:
    """Monitors one attacker instance's host for sibling activity.

    Parameters
    ----------
    handle:
        The attacker's co-located instance.
    cadence_s:
        Sampling period.
    threshold:
        Contention level at or above which a sample counts as active.
    min_consecutive:
        Debounce: samples needed to open an episode (suppresses the
        meter's occasional one-sample noise).
    """

    def __init__(
        self,
        handle: InstanceHandle,
        cadence_s: float = 0.02,
        threshold: int = 1,
        min_consecutive: int = 2,
    ) -> None:
        if cadence_s <= 0:
            raise ValueError(f"cadence must be positive, got {cadence_s!r}")
        if min_consecutive < 1:
            raise ValueError(f"min_consecutive must be >= 1, got {min_consecutive}")
        self.handle = handle
        self.cadence_s = cadence_s
        self.threshold = threshold
        self.min_consecutive = min_consecutive

    def monitor(self, duration_s: float) -> ActivityTimeline:
        """Sample for ``duration_s`` (advancing time) and detect episodes."""
        timeline = ActivityTimeline()
        steps = max(1, int(round(duration_s / self.cadence_s)))
        for _ in range(steps):
            level = self.handle.run(
                lambda sandbox: sandbox.observe_cpu_contention()
            )
            at = self.handle.run(lambda sandbox: sandbox.wall_clock())
            timeline.samples.append(ActivitySample(at=at, level=level))
            self.handle.run(lambda sandbox: sandbox.sleep(self.cadence_s))
        timeline.episodes = self._episodes(timeline.samples)
        return timeline

    def _episodes(self, samples: list[ActivitySample]) -> list[ActivityEpisode]:
        episodes: list[ActivityEpisode] = []
        run_start: float | None = None
        run_length = 0
        last_active_at = 0.0
        for sample in samples:
            if sample.level >= self.threshold:
                if run_start is None:
                    run_start = sample.at
                run_length += 1
                last_active_at = sample.at
            else:
                if run_start is not None and run_length >= self.min_consecutive:
                    episodes.append(
                        ActivityEpisode(start=run_start, end=last_active_at)
                    )
                run_start = None
                run_length = 0
        if run_start is not None and run_length >= self.min_consecutive:
            episodes.append(ActivityEpisode(start=run_start, end=last_active_at))
        return episodes


def score_detection(
    timeline: ActivityTimeline,
    true_bursts: list[tuple[float, float]],
) -> tuple[float, float]:
    """Score detected episodes against ground-truth burst windows.

    Returns ``(precision, recall)`` over episodes: a detected episode is
    correct if it overlaps a true burst; a true burst is found if some
    episode overlaps it.
    """
    if timeline.episodes:
        correct = sum(
            1
            for episode in timeline.episodes
            if any(episode.overlaps(s, e) for s, e in true_bursts)
        )
        precision = correct / len(timeline.episodes)
    else:
        precision = 1.0 if not true_bursts else 0.0
    if true_bursts:
        found = sum(
            1
            for s, e in true_bursts
            if any(episode.overlaps(s, e) for episode in timeline.episodes)
        )
        recall = found / len(true_bursts)
    else:
        recall = 1.0
    return precision, recall
