"""Trace and metric exports: deterministic JSONL, a human tree, metrics.

The JSONL schema (one span per line, sorted keys)::

    {"attrs": {...}, "id": 3, "kind": "sim", "name": "verify",
     "parent": 2, "t0": 1700000123.0, "t1": 1700000181.4}

``wall`` spans carry no ``t0``/``t1`` and — in the default deterministic
mode — no duration either: wall-clock measurements vary run to run, so
they are only written under ``include_wall=True``.  Everything else in a
trace derives from seeded simulation, which is what makes golden-trace
regression testing (byte-for-byte comparison) possible.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import IO

from repro.telemetry.metrics import MetricSet
from repro.telemetry.tracer import Telemetry


def _sanitize(value):
    """Reduce an attribute value to a deterministic JSON-able form."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, dict):
        return {str(k): _sanitize(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_sanitize(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(_sanitize(item) for item in value)
    return repr(value)


def span_lines(telemetry: Telemetry, include_wall: bool = False) -> list[str]:
    """Render every span as one canonical JSON line (no newlines)."""
    lines = []
    for span in telemetry.records():
        record = {
            "id": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "kind": span.kind,
            "t0": span.t0,
            "t1": span.t1,
            "attrs": _sanitize(span.attrs),
        }
        if include_wall and span.wall_s is not None:
            record["wall_s"] = span.wall_s
        lines.append(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return lines


def write_jsonl(
    telemetry: Telemetry,
    destination: str | Path | IO[str],
    include_wall: bool = False,
) -> None:
    """Write the trace as JSONL to a path or open text stream."""
    text = "\n".join(span_lines(telemetry, include_wall=include_wall))
    if text:
        text += "\n"
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        Path(destination).write_text(text, encoding="utf-8")


def render_tree(telemetry: Telemetry, max_attrs: int = 4) -> str:
    """A human-readable indented span tree.

    Sim spans show their simulated duration, wall spans their measured
    seconds; up to ``max_attrs`` attributes are inlined per span.
    """
    children: dict[int | None, list] = {}
    for span in telemetry.records():
        children.setdefault(span.parent_id, []).append(span)

    lines: list[str] = []

    def emit(span, depth: int) -> None:
        if span.kind == "wall":
            timing = f" [{span.wall_s:.3f}s wall]" if span.wall_s is not None else ""
        elif span.t0 is not None and span.t1 is not None:
            timing = f" [{span.t1 - span.t0:.1f}s sim]"
        else:
            timing = ""
        shown = list(span.attrs.items())[:max_attrs]
        attrs = (
            " {" + ", ".join(f"{k}={v!r}" for k, v in shown) + "}" if shown else ""
        )
        lines.append(f"{'  ' * depth}{span.name}{timing}{attrs}")
        for child in children.get(span.span_id, ()):
            emit(child, depth + 1)

    for root in children.get(None, ()):
        emit(root, 0)
    return "\n".join(lines)


def format_metrics(metrics: MetricSet) -> str:
    """A sorted, aligned text table of every counter/gauge/histogram."""
    rows: list[tuple[str, str]] = []
    for name in sorted(metrics.counters):
        value = metrics.counters[name]
        rows.append((name, f"{value:g}"))
    for name in sorted(metrics.gauges):
        rows.append((f"{name} (gauge)", f"{metrics.gauges[name]:g}"))
    for name in sorted(metrics.histograms):
        hist = metrics.histograms[name]
        rows.append(
            (
                f"{name} (hist)",
                f"n={hist.count} mean={hist.mean:.4g} "
                f"min={hist.min:.4g} max={hist.max:.4g}"
                if hist.count
                else "n=0",
            )
        )
    if not rows:
        return "(no metrics recorded)"
    width = max(len(name) for name, _v in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def metrics_snapshot(telemetry: Telemetry) -> dict:
    """Deterministically ordered JSON-able metrics dump."""
    return telemetry.metrics.as_dict()
