"""Emulated system-call layer.

Inside either sandbox generation, the only wall clock a guest can consult is
reached through a system call (``clock_gettime``).  Two noise sources apply
(see :mod:`repro.hardware.noise`):

* a constant per-sandbox offset — the sandbox's userspace kernel keeps its
  own time state, so co-located containers disagree slightly;
* per-call jitter from interrupts and context switches, whose magnitude is a
  property of the *host* (some hosts are "problematic", paper §4.2).
"""

from __future__ import annotations

import numpy as np

from repro.hardware.host import PhysicalHost
from repro.simtime.clock import SimClock


class SyscallLayer:
    """Time-related system calls available inside one sandbox.

    Parameters
    ----------
    host:
        The physical host whose timing-noise characteristics apply.
    clock:
        The shared simulated wall clock.
    rng:
        Randomness source for jitter, owned by the sandbox instance.
    """

    def __init__(
        self, host: PhysicalHost, clock: SimClock, rng: np.random.Generator
    ) -> None:
        self._host = host
        self._clock = clock
        self._rng = rng
        self._sandbox_offset = host.syscall_noise.sample_sandbox_offset(rng)
        self.call_count = 0

    @property
    def sandbox_offset(self) -> float:
        """This sandbox's constant wall-clock offset (seconds)."""
        return self._sandbox_offset

    def clock_gettime(self) -> float:
        """Return the wall-clock time as seen through a noisy system call.

        Hosts keep accurate real-world time via NTP, so the returned value
        carries only the sandbox offset and per-call jitter.
        """
        self.call_count += 1
        jitter = self._host.syscall_noise.sample_call_jitter(self._rng)
        return self._clock.now() + self._sandbox_offset + jitter

    def nanosleep(self, duration: float) -> None:
        """Block the guest for ``duration`` seconds of simulated time.

        Wake-up is subject to the same scheduling jitter as other system
        calls (a sleeping task is only rescheduled at the kernel's leisure).
        """
        overshoot = abs(self._host.syscall_noise.sample_call_jitter(self._rng))
        self._clock.sleep(max(0.0, duration) + overshoot)
