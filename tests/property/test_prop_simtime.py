"""Property-based tests for simulated time and the TSC."""

from hypothesis import given, settings, strategies as st

from repro.hardware.tsc import TimestampCounter
from repro.simtime.clock import SimClock
from repro.simtime.scheduler import EventScheduler

durations = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False), max_size=30
)


@given(durations)
def test_clock_is_monotone(sleeps):
    clock = SimClock()
    previous = clock.now()
    for duration in sleeps:
        clock.sleep(duration)
        assert clock.now() >= previous
        previous = clock.now()


@given(durations)
def test_total_elapsed_is_sum(sleeps):
    clock = SimClock()
    start = clock.now()
    for duration in sleeps:
        clock.sleep(duration)
    assert clock.now() - start <= sum(sleeps) * (1 + 1e-9) + 1e-6
    assert clock.now() - start >= sum(sleeps) * (1 - 1e-9) - 1e-6


@given(st.lists(st.floats(min_value=0.01, max_value=1e5), min_size=1, max_size=20))
def test_all_scheduled_events_fire_exactly_once(delays):
    clock = SimClock()
    sched = EventScheduler(clock)
    fired = []
    for i, delay in enumerate(delays):
        sched.call_after(delay, lambda i=i: fired.append(i))
    clock.sleep(max(delays) + 1.0)
    assert sorted(fired) == list(range(len(delays)))
    clock.sleep(1e6)
    assert len(fired) == len(delays)


@given(
    st.floats(min_value=0.0, max_value=1e8),
    st.floats(min_value=1e9, max_value=4e9),
    st.floats(min_value=0.0, max_value=1e7),
)
@settings(max_examples=60)
def test_tsc_monotone_and_linear(boot_age, freq, dt):
    tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=freq)
    t0 = boot_age
    a = tsc.read(t0)
    b = tsc.read(t0 + dt)
    assert b >= a
    # Integer truncation plus double-precision rounding at ~1e16 ticks.
    tolerance = 2.0 + (abs(a) + abs(b)) * 1e-15
    assert abs((b - a) - dt * freq) <= tolerance
