"""Twin-world identity for every registered channel kind.

Two guarantees per kind:

* **engine identity** — the scalar loop and the batched ``observe_rounds``
  engine produce identical verdicts, hits, RNG end states, and pressurer
  sets for every registered kind (the per-kind generalization of the RNG
  twin-world suite);
* **refactor identity** — the generic kind-routed hooks
  (``channel_port(kind)`` / ``observe_channel_contention``) reproduce the
  historical per-kind hook wiring (``rng_channel_port`` /
  ``observe_rng_contention`` and the bus equivalents) byte-for-byte.
"""

from __future__ import annotations

import pytest

from repro.core.covert import COVERT_CHANNEL_CLASSES, MemoryBusCovertChannel, RngCovertChannel
from repro.faults import FaultPlan, FaultSpec
from repro.sandbox.base import ChannelPort
from tests.unit.test_ctest_vectorized import launch, run_twin_worlds

KINDS = tuple(COVERT_CHANNEL_CLASSES)


class LegacyRngChannel(RngCovertChannel):
    """The pre-registry hook wiring: static per-kind sandbox methods.

    Overriding the hooks knocks the class off the vector-safe set, so it
    runs the scalar loop — the original reference semantics.
    """

    @staticmethod
    def _start(sandbox) -> None:
        sandbox.start_rng_pressure()

    @staticmethod
    def _observe(sandbox) -> int:
        return sandbox.observe_rng_contention()

    @staticmethod
    def _stop(sandbox) -> None:
        sandbox.stop_rng_pressure()

    @staticmethod
    def _port(sandbox) -> ChannelPort | None:
        return sandbox.rng_channel_port()


class LegacyBusChannel(MemoryBusCovertChannel):
    @staticmethod
    def _start(sandbox) -> None:
        sandbox.start_bus_pressure()

    @staticmethod
    def _observe(sandbox) -> int:
        return sandbox.observe_bus_contention()

    @staticmethod
    def _stop(sandbox) -> None:
        sandbox.stop_bus_pressure()

    @staticmethod
    def _port(sandbox) -> ChannelPort | None:
        return sandbox.bus_channel_port()


@pytest.mark.parametrize("seed", (11, 12, 13))
@pytest.mark.parametrize("kind", KINDS)
def test_kind_engine_identity(tiny_env_factory, kind, seed):
    """Loop and batched engines agree for every registered kind."""
    run_twin_worlds(
        tiny_env_factory,
        seed=seed,
        n_instances=8,
        group_size=4,
        threshold=2,
        plan_factory=lambda: FaultPlan(
            FaultSpec(ctest_death_rate=0.2, seed=seed)
        ),
        channel_cls=COVERT_CHANNEL_CLASSES[kind],
    )


@pytest.mark.parametrize(
    "generic_cls,legacy_cls",
    [(RngCovertChannel, LegacyRngChannel), (MemoryBusCovertChannel, LegacyBusChannel)],
    ids=["rng", "bus"],
)
@pytest.mark.parametrize("seed", (21, 22))
def test_generic_hooks_match_legacy_hooks(
    tiny_env_factory, generic_cls, legacy_cls, seed
):
    """Kind-routed hooks reproduce the historical static wiring exactly."""
    generic = run_twin_worlds(
        tiny_env_factory,
        seed=seed,
        n_instances=6,
        group_size=3,
        threshold=2,
        plan_factory=lambda: None,
        channel_cls=generic_cls,
    )
    legacy = run_twin_worlds(
        tiny_env_factory,
        seed=seed,
        n_instances=6,
        group_size=3,
        threshold=2,
        plan_factory=lambda: None,
        channel_cls=legacy_cls,
        expect_batched=False,  # overridden hooks fall back to the loop
    )
    # run_twin_worlds already proved loop==batched inside each call; this
    # pins the two wirings to the same observation dicts across calls.
    assert generic[0] == legacy[0]


def test_channel_port_shims_are_equivalent(tiny_env):
    handle = launch(tiny_env, 1)[0]
    sandbox = handle._instance.sandbox
    assert sandbox.rng_channel_port() == sandbox.channel_port("rng")
    assert sandbox.bus_channel_port() == sandbox.channel_port("bus")
    llc_port = sandbox.channel_port("llc")
    assert llc_port is not None
    assert llc_port.resource is sandbox._host.channel_resource("llc")
    assert llc_port.rng is sandbox._rng


def test_legacy_override_blocks_generic_port_for_that_kind_only(tiny_env):
    handle = launch(tiny_env, 1)[0]
    sandbox = handle._instance.sandbox

    class CustomSandbox(type(sandbox)):
        def observe_bus_contention(self):
            return 99

    custom = CustomSandbox(
        host=sandbox._host,
        clock=sandbox._clock,
        rng=sandbox._rng,
        sandbox_id="custom",
    )
    assert custom.channel_port("bus") is None
    assert custom.channel_port("rng") is not None
    assert custom.channel_port("llc") is not None


def test_generic_observe_override_blocks_every_port(tiny_env):
    handle = launch(tiny_env, 1)[0]
    sandbox = handle._instance.sandbox

    class CustomSandbox(type(sandbox)):
        def observe_channel_contention(self, kind):
            return 99

    custom = CustomSandbox(
        host=sandbox._host,
        clock=sandbox._clock,
        rng=sandbox._rng,
        sandbox_id="custom",
    )
    for kind in KINDS:
        assert custom.channel_port(kind) is None
