"""Figure 8: apparent hosts across launches from three accounts.

Paper: the cumulative apparent-host count forms a step pattern — big jumps
when the launching account changes, minimal growth otherwise.
"""

from repro.experiments import launch_behavior as lb
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = lb.LaunchSeriesConfig(account_pattern=(1, 1, 2, 2, 3, 3), seed=512)


def test_fig08_account_steps(benchmark, emit):
    result = run_once(benchmark, lambda: lb.run_launch_series(CONFIG))

    emit(
        format_series(
            "Figure 8 — apparent hosts across accounts (pattern 1,1,2,2,3,3)",
            ("launch", "account", "apparent_hosts", "cumulative"),
            [
                (i + 1, acct, per, cum)
                for i, (acct, per, cum) in enumerate(
                    zip(result.accounts, result.per_launch, result.cumulative)
                )
            ],
        )
    )

    jumps = result.growth_at_account_changes()
    assert len(jumps) == 2, "two account changes in the pattern"
    for jump in jumps:
        assert jump > 50, "a new account brings a fresh base-host set"
    # Growth within an account is minimal by comparison.
    same_account_growth = [
        result.cumulative[i] - result.cumulative[i - 1]
        for i in range(1, 6)
        if result.accounts[i] == result.accounts[i - 1]
    ]
    assert all(g <= 8 for g in same_account_growth)
    # Cumulative footprint ~ 3 disjoint base sets.
    assert result.cumulative[-1] > 2.5 * result.per_launch[0]
