"""Unit tests for the cell cache and its content-addressed keys."""

from dataclasses import dataclass

import pytest

from repro.runner import (
    CellCache,
    CellSpec,
    CellSpecError,
    RunnerConfig,
    cache_key,
    canonicalize,
    default_cache_dir,
    run_cells,
)


@dataclass(frozen=True)
class _DemoConfig:
    region: str = "us-east1"
    instances: int = 10


@dataclass(frozen=True)
class _OtherConfig:
    region: str = "us-east1"
    instances: int = 10


def _count_cell(config: dict, seed: int) -> dict:
    """A trivial module-level cell body (picklable by reference)."""
    return {"n": config["n"] * 2, "seed": seed}


class TestCanonicalize:
    def test_scalars_pass_through(self):
        assert canonicalize(3) == 3
        assert canonicalize(1.5) == 1.5
        assert canonicalize("us-east1") == "us-east1"
        assert canonicalize(None) is None
        assert canonicalize(True) is True

    def test_dict_keys_sorted(self):
        assert canonicalize({"b": 1, "a": 2}) == {"a": 2, "b": 1}

    def test_tuples_and_lists_equivalent(self):
        assert canonicalize((1, 2)) == canonicalize([1, 2])

    def test_sets_sorted(self):
        assert canonicalize({3, 1, 2}) == [1, 2, 3]

    def test_dataclass_tagged_with_type(self):
        out = canonicalize(_DemoConfig())
        assert out["__dataclass__"].endswith("_DemoConfig")
        assert out["fields"] == {"region": "us-east1", "instances": 10}

    def test_same_fields_different_types_do_not_collide(self):
        assert canonicalize(_DemoConfig()) != canonicalize(_OtherConfig())

    def test_uncanonicalizable_raises(self):
        with pytest.raises(CellSpecError):
            canonicalize(object())


class TestCacheKey:
    def test_key_stable_for_equal_inputs(self):
        a = cache_key("fig4", {"region": "us-east1"}, 7)
        b = cache_key("fig4", {"region": "us-east1"}, 7)
        assert a == b

    def test_key_changes_with_config(self):
        a = cache_key("fig4", {"region": "us-east1"}, 7)
        b = cache_key("fig4", {"region": "us-west1"}, 7)
        assert a != b

    def test_key_changes_with_seed(self):
        assert cache_key("fig4", {}, 7) != cache_key("fig4", {}, 8)

    def test_key_changes_with_experiment(self):
        assert cache_key("fig4", {}, 7) != cache_key("fig5", {}, 7)

    def test_key_changes_with_package_version(self, monkeypatch):
        before = cache_key("fig4", {}, 7)
        monkeypatch.setattr("repro._version.__version__", "99.0.0")
        assert cache_key("fig4", {}, 7) != before

    def test_dict_ordering_does_not_change_key(self):
        a = cache_key("fig4", {"x": 1, "y": 2}, 0)
        b = cache_key("fig4", {"y": 2, "x": 1}, 0)
        assert a == b


class TestCellCache:
    def test_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path)
        cache.put("ab" + "0" * 62, {"v": 1}, 2.5)
        hit, value, elapsed, trace = cache.get("ab" + "0" * 62)
        assert hit
        assert value == {"v": 1}
        assert elapsed == 2.5
        assert trace is None

    def test_trace_roundtrip(self, tmp_path):
        cache = CellCache(tmp_path)
        trace = {"spans": [{"id": 0, "name": "cell"}], "metrics": {}}
        cache.put("cc" + "0" * 62, {"v": 2}, 1.0, trace)
        hit, _, _, stored = cache.get("cc" + "0" * 62)
        assert hit
        assert stored == trace

    def test_missing_entry_is_a_miss(self, tmp_path):
        hit, value, _, _ = CellCache(tmp_path).get("cd" + "0" * 62)
        assert not hit
        assert value is None

    def test_corrupted_entry_is_a_miss_and_removed(self, tmp_path):
        cache = CellCache(tmp_path)
        key = "ef" + "0" * 62
        cache.put(key, [1, 2, 3], 1.0)
        path = cache.path_for(key)
        path.write_bytes(b"not a pickle at all")
        hit, _, _, _ = cache.get(key)
        assert not hit
        assert not path.exists()

    def test_foreign_format_entry_is_a_miss(self, tmp_path):
        import pickle

        cache = CellCache(tmp_path)
        key = "12" + "0" * 62
        path = cache.path_for(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps({"format": "something-else", "key": key}))
        hit, _, _, _ = cache.get(key)
        assert not hit

    def test_key_mismatch_is_a_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        key_a = "34" + "0" * 62
        key_b = "34" + "1" * 61 + "0"
        cache.put(key_a, "value", 0.1)
        # Simulate a renamed/misplaced entry.
        cache.path_for(key_a).rename(cache.path_for(key_b))
        hit, _, _, _ = cache.get(key_b)
        assert not hit

    def test_put_failure_is_swallowed(self, tmp_path):
        blocker = tmp_path / "cache"
        blocker.write_text("a file where the directory should go")
        cache = CellCache(blocker / "sub")
        cache.put("aa" + "0" * 62, "value", 0.1)  # must not raise
        hit, _, _, _ = cache.get("aa" + "0" * 62)
        assert not hit

    def test_default_dir_honors_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
        assert default_cache_dir() == tmp_path / "elsewhere"


class TestRunCellsCaching:
    def _spec(self, n: int = 3, seed: int = 11) -> CellSpec:
        return CellSpec(
            experiment="unit-demo",
            fn=_count_cell,
            config={"n": n},
            seed=seed,
        )

    def test_second_run_hits_cache(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        first = run_cells([self._spec()], runner)[0]
        assert not first.cached
        second = run_cells([self._spec()], runner)[0]
        assert second.cached
        assert second.value == first.value
        assert runner.stats.cells == 2
        assert runner.stats.cache_hits == 1

    def test_config_change_misses(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        run_cells([self._spec(n=3)], runner)
        result = run_cells([self._spec(n=4)], runner)[0]
        assert not result.cached

    def test_seed_change_misses(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        run_cells([self._spec(seed=11)], runner)
        result = run_cells([self._spec(seed=12)], runner)[0]
        assert not result.cached

    def test_version_bump_misses(self, tmp_path, monkeypatch):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        run_cells([self._spec()], runner)
        monkeypatch.setattr("repro._version.__version__", "99.0.0")
        result = run_cells([self._spec()], runner)[0]
        assert not result.cached

    def test_corrupted_entry_recomputed_and_rewritten(self, tmp_path):
        runner = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        first = run_cells([self._spec()], runner)[0]
        path = CellCache(tmp_path).path_for(first.key)
        path.write_bytes(b"\x00truncated")
        again = run_cells([self._spec()], runner)[0]
        assert not again.cached
        assert again.value == first.value
        # The recompute restored a readable entry.
        assert run_cells([self._spec()], runner)[0].cached

    def test_no_cache_bypasses_reads_but_still_writes(self, tmp_path):
        warm = RunnerConfig(cache_read=True, cache_write=True, cache_dir=tmp_path)
        run_cells([self._spec()], warm)

        no_cache = RunnerConfig.from_cli(jobs=0, no_cache=True, cache_dir=tmp_path)
        assert no_cache.cache_read is False
        assert no_cache.cache_write is True
        result = run_cells([self._spec()], no_cache)[0]
        assert not result.cached  # read bypassed despite a warm entry

        # ... but the recomputed value was written back.
        assert CellCache(tmp_path).get(result.key)[0]

    def test_default_runner_never_touches_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        result = run_cells([self._spec()])[0]
        assert not result.cached
        assert not (tmp_path / "cache").exists()
