"""Property-based twin-world tests for warm-world snapshots.

For arbitrary operation streams (launches, terminations, serving-pool
rotation, traffic evaluation via clock advance), a world snapshotted
mid-stream and restored must replay the *rest* of the stream exactly as
the original world does: same observable log, same subsequent RNG draws,
same fleet columns.  That is the warm-world contract the runner's
fork-instead-of-rebuild optimization rests on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cloud.services import ServiceConfig
from repro.cloud.traffic import TrafficConfig
from repro.errors import CloudError
from repro.experiments.base import SimulationEnv, default_env
from repro.faults import FaultPlan
from repro.runner import WorldSnapshot
from tests.conftest import tiny_profile

ops = st.lists(
    st.one_of(
        st.tuples(st.just("launch"), st.integers(min_value=1, max_value=3)),
        st.tuples(st.just("sleep"), st.floats(min_value=0.1, max_value=300.0)),
        st.tuples(st.just("invoke"), st.just(0)),
        st.tuples(st.just("disconnect"), st.just(0)),
        st.tuples(st.just("rotate"), st.just(0)),
    ),
    max_size=6,
)


def _apply(env: SimulationEnv, stream) -> list:
    """Run an op stream, returning a deterministic observable log."""
    client = env.attacker
    log: list = []
    for kind, arg in stream:
        try:
            if kind == "launch":
                handles = client.connect("svc", arg)
                log.append(sorted(h.instance_id for h in handles))
            elif kind == "sleep":
                env.clock.sleep(arg)
            elif kind == "invoke":
                client.invoke("svc")
            elif kind == "disconnect":
                client.disconnect("svc")
            elif kind == "rotate":
                log.append(list(env.datacenter.serving_pool()))
        except CloudError as error:
            # Faulted launches may exhaust their retry budget; the
            # *failure itself* must replay identically.
            log.append(type(error).__name__)
        log.append(env.clock.now())
    return log


def _observe(env: SimulationEnv) -> dict:
    """End-state digest: RNG stream position and fleet columns."""
    fleet = env.datacenter.fleet
    return {
        "draws": env.orchestrator._rng.integers(0, 2**31, size=8).tolist(),
        "now": env.clock.now(),
        "load_slots": fleet.load_slots.tolist(),
        "capacity_slots": fleet.capacity_slots.tolist(),
        "pool_order": fleet.pool_order.tolist(),
    }


def _twin_check(build, prefix, suffix) -> None:
    original = build()
    _apply(original, prefix)
    snapshot = WorldSnapshot.capture(original)
    want_log = _apply(original, suffix)
    want_end = _observe(original)

    restored = snapshot.fork()
    assert _apply(restored, suffix) == want_log
    got_end = _observe(restored)
    assert got_end["draws"] == want_end["draws"]
    assert got_end["now"] == want_end["now"]
    np.testing.assert_array_equal(
        got_end["load_slots"], want_end["load_slots"]
    )
    np.testing.assert_array_equal(
        got_end["capacity_slots"], want_end["capacity_slots"]
    )
    np.testing.assert_array_equal(
        got_end["pool_order"], want_end["pool_order"]
    )


@given(prefix=ops, suffix=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_snapshot_restores_arbitrary_quiet_worlds(prefix, suffix, seed):
    def build() -> SimulationEnv:
        env = default_env(profile=tiny_profile(), seed=seed)
        env.attacker.deploy(ServiceConfig(name="svc"))
        return env

    _twin_check(build, prefix, suffix)


@given(prefix=ops, suffix=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_snapshot_restores_live_background_worlds(prefix, suffix, seed):
    traffic = TrafficConfig(n_tenants=6, seed=seed)

    def build() -> SimulationEnv:
        env = default_env(
            profile=tiny_profile(), seed=seed, background=traffic
        )
        env.attacker.deploy(ServiceConfig(name="svc"))
        return env

    _twin_check(build, prefix, suffix)


@given(prefix=ops, suffix=ops, seed=st.integers(min_value=0, max_value=2**16))
@settings(max_examples=10, deadline=None)
def test_snapshot_restores_mid_wave_fault_plan_worlds(prefix, suffix, seed):
    """Direct capture/fork of a faulted world replays injections exactly.

    The *runner* never forks these (``EnvSpec.forkable`` is False because
    a restored plan detaches from the ambient plan's counters), but the
    snapshot mechanism itself must still be faithful: injection decisions
    are pure functions of (spec, identifiers), so a restored world's
    launch failures land on the same instances.
    """
    plan = FaultPlan.from_spec("launch=0.25,slow=0.1,seed=5")

    def build() -> SimulationEnv:
        env = default_env(
            profile=tiny_profile(), seed=seed, fault_plan=plan
        )
        env.attacker.deploy(ServiceConfig(name="svc"))
        env.attacker.connect("svc", 2)  # mid-wave: capture after launches
        return env

    _twin_check(build, prefix, suffix)
