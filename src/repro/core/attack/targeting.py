"""Repeat-attack optimizations (§5.2, "Potential attack optimizations").

Two optimizations the paper sketches for attackers who strike repeatedly:

* **Victim profiling.**  During the first attack, record the fingerprints
  of hosts verified to run victim instances — these are likely the victim
  account's *base hosts*.  In later attacks against the same victim, the
  attacker can focus side-channel effort on its own instances whose
  fingerprints match the profile, instead of all of them.  Because Gen 1
  fingerprints drift (§4.4.2), matching tolerates a configurable number of
  rounding buckets per elapsed day.

* **Multi-account scaling.**  More attacker accounts mean more base-host
  sets to explore from (the census experiment's trick).  The catch: cloud
  providers cap new accounts to small quotas until they build usage
  history, which :func:`multi_account_footprint` models via each account's
  ``max_instances_per_service``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.api import FaaSClient, InstanceHandle
from repro.core.attack.strategies import LaunchOutcome, optimized_launch
from repro.core.fingerprint import Gen1Fingerprint


@dataclass
class VictimProfile:
    """Recorded fingerprints of hosts known to serve a victim.

    Attributes
    ----------
    recorded_at:
        Wall time the profile was taken (drift tolerance grows from here).
    fingerprints:
        Gen 1 fingerprints of verified victim hosts.
    """

    recorded_at: float
    fingerprints: set[Gen1Fingerprint] = field(default_factory=set)

    @classmethod
    def from_campaign(
        cls,
        now: float,
        victim_handles: list[InstanceHandle],
        cluster_of: dict[str, int],
        attacker_fingerprints: dict[str, Gen1Fingerprint],
        attacker_cluster_of: dict[str, int] | None = None,
    ) -> "VictimProfile":
        """Build a profile from a finished campaign's verification output.

        The attacker cannot fingerprint victim instances directly; instead
        it records the fingerprints of its *own* instances that share a
        verified cluster with a victim instance.
        """
        clusters_with_victims = {
            cluster_of[h.instance_id]
            for h in victim_handles
            if h.instance_id in cluster_of
        }
        lookup = attacker_cluster_of or cluster_of
        profile = cls(recorded_at=now)
        for instance_id, fingerprint in attacker_fingerprints.items():
            if lookup.get(instance_id) in clusters_with_victims:
                profile.fingerprints.add(fingerprint)
        return profile

    def matches(
        self,
        fingerprint: Gen1Fingerprint,
        now: float,
        drift_buckets_per_day: float = 1.0,
    ) -> bool:
        """Whether a later fingerprint plausibly names a profiled host.

        The CPU model must match exactly; the boot bucket may differ by up
        to ``ceil(elapsed_days * drift_buckets_per_day)`` buckets, the
        drift envelope of §4.4.2.
        """
        elapsed_days = max(0.0, now - self.recorded_at) / units.DAY
        tolerance = int(elapsed_days * drift_buckets_per_day) + 1
        for recorded in self.fingerprints:
            if recorded.cpu_model != fingerprint.cpu_model:
                continue
            if recorded.p_boot != fingerprint.p_boot:
                continue
            if abs(recorded.boot_bucket - fingerprint.boot_bucket) <= tolerance:
                return True
        return False

    def select_targets(
        self,
        tagged: list[tuple[InstanceHandle, Gen1Fingerprint]],
        now: float,
        drift_buckets_per_day: float = 1.0,
    ) -> list[InstanceHandle]:
        """Filter a fleet down to instances on profiled (victim) hosts."""
        return [
            handle
            for handle, fingerprint in tagged
            if self.matches(fingerprint, now, drift_buckets_per_day)
        ]


def multi_account_footprint(
    clients: list[FaaSClient],
    n_services_per_account: int = 6,
    launches: int = 6,
    instances_per_service: int = 800,
    interval_s: float = 10 * units.MINUTE,
    service_prefix: str = "multi",
) -> tuple[set, float, list[LaunchOutcome]]:
    """Run the optimized strategy from several accounts and merge footprints.

    Accounts whose quota caps ``instances_per_service`` launch at their cap
    instead (the paper's note that new accounts are limited to small
    quotas, making the multi-account optimization cost time and money).

    Returns ``(union_of_apparent_hosts, total_cost_usd, outcomes)``.
    """
    union: set = set()
    total_cost = 0.0
    outcomes = []
    for index, client in enumerate(clients):
        per_service = min(instances_per_service, client.max_instances_quota)
        outcome = optimized_launch(
            client,
            n_services=n_services_per_account,
            launches=launches,
            instances_per_service=per_service,
            interval_s=interval_s,
            service_prefix=f"{service_prefix}-{index}",
        )
        union |= outcome.apparent_hosts
        total_cost += outcome.cost_usd
        outcomes.append(outcome)
    return union, total_cost, outcomes
