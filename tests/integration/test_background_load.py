"""Integration tests for the coverage-vs-background-load experiment.

Oracle-scored end-to-end check of the paper-extension claim: the
co-location attack that covers a victim in a quiet region degrades as
background tenants fill the serving pool, and a saturated region defeats
it outright (capacity-blocked placements).
"""

from __future__ import annotations

from repro import units
from repro.experiments.background_load import (
    BackgroundLoadConfig,
    BackgroundLoadSummary,
    run,
)
from repro.experiments.registry import EXPERIMENTS


def quick_config(**overrides) -> BackgroundLoadConfig:
    defaults = dict(
        tenant_counts=(0, 1100),
        repetitions=1,
        warmup_s=5 * units.MINUTE,
    )
    defaults.update(overrides)
    return BackgroundLoadConfig(**defaults)


class TestBackgroundLoadExperiment:
    def test_saturation_degrades_coverage(self):
        summary = run(quick_config())
        assert isinstance(summary, BackgroundLoadSummary)
        quiet, saturated = summary.points

        # Quiet region: near-zero utilization, the attack works.
        assert quiet.mean_utilization < 0.05
        assert quiet.mean_coverage > 0.2

        # Saturated region: the pool is nearly full and coverage collapses
        # (capacity-blocked attacker placements count as zero coverage).
        assert saturated.mean_utilization > 0.85
        assert saturated.mean_coverage < 0.1
        assert quiet.mean_coverage - saturated.mean_coverage >= 0.2
        assert saturated.mean_background_instances > 0

    def test_runs_are_deterministic(self):
        config = quick_config(tenant_counts=(900,))
        a = run(config).points[0]
        b = run(config).points[0]
        assert a.utilization == b.utilization
        assert a.coverage == b.coverage
        assert a.attacker_hosts == b.attacker_hosts
        assert a.background_instances == b.background_instances
        assert a.rejected == b.rejected

    def test_registered_in_the_experiment_catalog(self):
        assert "background_load" in EXPERIMENTS
