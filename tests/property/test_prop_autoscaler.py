"""Property-based tests for request patterns and the autoscaler."""

from hypothesis import given, settings, strategies as st

from repro import units
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import BurstLoad, DiurnalLoad, TraceLoad
from repro.experiments.base import default_env

from tests.conftest import tiny_profile


@given(
    trough=st.integers(0, 20),
    span=st.integers(0, 30),
    period_h=st.floats(0.5, 48.0),
    at_h=st.floats(0.0, 96.0),
)
def test_diurnal_stays_in_band(trough, span, period_h, at_h):
    load = DiurnalLoad(trough=trough, peak=trough + span, period_s=period_h * units.HOUR)
    level = load.concurrency_at(at_h * units.HOUR)
    assert trough <= level <= trough + span


@given(
    times=st.lists(st.floats(0.0, 1e5), min_size=1, max_size=20),
    at=st.floats(0.0, 2e5),
)
def test_trace_always_returns_a_sample_value(times, at):
    times = sorted(times)
    values = list(range(len(times)))
    trace = TraceLoad(times, values)
    assert trace.concurrency_at(at) in values


@given(
    samples=st.lists(
        st.tuples(st.floats(0.0, 1e5), st.integers(0, 100)),
        min_size=1,
        max_size=30,
    ),
    at=st.floats(-100.0, 2e5),
)
def test_trace_bisect_matches_linear_scan(samples, at):
    """The O(log n) bisect lookup is pinned to the old O(n) hold-last
    scan — including duplicate sample times (last duplicate wins) and
    queries before trace start (first sample holds)."""
    times = sorted(t for t, _v in samples)
    values = [v for _t, v in samples]
    trace = TraceLoad(times, values)
    index = 0
    for i, t in enumerate(times):  # the pre-bisect reference scan
        if t <= at:
            index = i
        else:
            break
    assert trace.concurrency_at(at) == values[index]


@given(
    base=st.integers(0, 10),
    extra=st.integers(0, 10),
    start=st.floats(0.0, 1e4),
    duration=st.floats(0.0, 1e4),
    at=st.floats(0.0, 3e4),
)
def test_burst_is_base_or_burst(base, extra, start, duration, at):
    load = BurstLoad(
        base=base, burst=base + extra, burst_start_s=start, burst_duration_s=duration
    )
    assert load.concurrency_at(at) in (base, base + extra)


@st.composite
def demand_sequences(draw):
    seed = draw(st.integers(0, 30))
    demands = draw(st.lists(st.integers(0, 18), min_size=1, max_size=8))
    return seed, demands


@given(demand_sequences())
@settings(max_examples=12, deadline=None)
def test_autoscaler_tracks_any_demand_sequence(case):
    """Whatever the demand path, after each evaluation the active count
    equals the clamped target and never exceeds max_instances."""
    seed, demands = case
    env = default_env(profile=tiny_profile(), seed=seed)
    service = env.orchestrator.deploy_service(
        "account-1", ServiceConfig(name="prop-auto", max_instances=20)
    )
    scaler = Autoscaler(env.orchestrator, service)
    trace = TraceLoad(
        [i * scaler.evaluation_period_s for i in range(len(demands))], demands
    )
    result = scaler.drive(trace, duration_s=len(demands) * scaler.evaluation_period_s)
    for point in result.points:
        assert point.active_instances == min(point.demanded_concurrency, 20)
        assert point.alive_instances >= point.active_instances
