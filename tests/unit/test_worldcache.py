"""Warm-world snapshot engine: capture, fork, cache, and runner wiring."""

from __future__ import annotations

import pytest

from repro.cloud.platform import platform_profile
from repro.cloud.services import ServiceConfig
from repro.cloud.traffic import TrafficConfig
from repro.experiments.base import default_env
from repro.faults import FaultPlan
from repro.runner import (
    CellSpec,
    EnvSpec,
    RunnerConfig,
    WorldCache,
    WorldSnapshot,
    cache_key,
    process_world_cache,
    reset_process_world_cache,
    run_cells,
    world_cache_context,
)
from repro.runner.pool import RunStats
from repro.sandbox.base import TscPolicy
from repro.telemetry import Telemetry, span_lines, telemetry_context
from tests.conftest import tiny_profile


def _build():
    return default_env(profile=tiny_profile(), seed=7)


def _drive(env) -> dict:
    """Deterministic post-restore activity touching every moving part."""
    name = env.attacker.deploy(ServiceConfig(name="drv"))
    handles = env.attacker.connect(name, 3)
    env.clock.sleep(45.0)
    env.attacker.invoke(name)
    draws = env.orchestrator._rng.integers(0, 2**31, size=4).tolist()
    return {
        "now": env.clock.now(),
        "ids": sorted(h.instance_id for h in handles),
        "hosts": sorted(
            env.orchestrator.true_host_of(h.instance_id) for h in handles
        ),
        "draws": draws,
        "background": (
            None
            if env.background is None
            else (
                env.background.stats.evaluations,
                env.background.stats.requests,
            )
        ),
    }


# ----------------------------------------------------------------------
# EnvSpec identity
# ----------------------------------------------------------------------
class TestEnvSpec:
    def test_normalizes_tsc_policy_and_platform_name(self):
        a = EnvSpec(seed=3, tsc_policy=TscPolicy.EMULATED, platform="aws_lambda_like")
        b = EnvSpec(
            seed=3,
            tsc_policy=TscPolicy.EMULATED.value,
            platform=platform_profile("aws_lambda_like"),
        )
        assert a.tsc_policy == "emulated"
        assert a.platform == b.platform
        assert a.content_hash() == b.content_hash()

    def test_hash_distinguishes_every_axis(self):
        base = EnvSpec(seed=1)
        distinct = [
            base,
            EnvSpec(seed=2),
            EnvSpec(seed=1, region="us-west1"),
            EnvSpec(seed=1, tsc_policy=TscPolicy.EMULATED),
            EnvSpec(seed=1, profile=tiny_profile()),
            EnvSpec(seed=1, background=TrafficConfig(n_tenants=5)),
            EnvSpec(seed=1, platform="aws_lambda_like"),
            EnvSpec(seed=1, fault_spec=FaultPlan.from_spec("launch=0.1,seed=3").spec),
        ]
        hashes = [spec.content_hash() for spec in distinct]
        assert len(set(hashes)) == len(hashes)

    def test_forkable_rules(self):
        assert EnvSpec().forkable
        enabled = FaultPlan.from_spec("launch=0.2,seed=1").spec
        assert enabled.enabled
        assert not EnvSpec(fault_spec=enabled).forkable
        disabled = FaultPlan.from_spec("seed=1").spec
        assert EnvSpec(fault_spec=disabled).forkable


# ----------------------------------------------------------------------
# Snapshot capture / fork
# ----------------------------------------------------------------------
class TestWorldSnapshot:
    def test_fork_behaves_identically_to_fresh_build(self):
        snapshot = WorldSnapshot.capture(_build())
        assert snapshot.n_bytes > 0
        assert _drive(snapshot.fork()) == _drive(_build())

    def test_fork_with_warmed_background_matches_fresh(self):
        traffic = TrafficConfig(n_tenants=10, seed=5)

        def build():
            env = default_env(profile=tiny_profile(), seed=9, background=traffic)
            env.clock.sleep(120.0)  # warm the population mid-schedule
            return env

        fresh = _drive(build())
        forked = _drive(WorldSnapshot.capture(build()).fork())
        assert forked == fresh
        assert forked["background"] is not None
        assert forked["background"] > (0, 0)

    def test_sibling_forks_are_independent(self):
        snapshot = WorldSnapshot.capture(_build())
        first = snapshot.fork()
        _drive(first)  # mutate heavily
        assert _drive(snapshot.fork()) == _drive(_build())

    def test_fork_rebinds_telemetry_clock(self):
        snapshot = WorldSnapshot.capture(_build())
        telemetry = Telemetry()
        with telemetry_context(telemetry):
            env = snapshot.fork()
            env.clock.sleep(30.0)
            with telemetry.span("probe"):
                pass
        (span,) = [s for s in telemetry.records() if s.name == "probe"]
        assert span.t0 == env.clock.now()


# ----------------------------------------------------------------------
# The LRU cache
# ----------------------------------------------------------------------
class TestWorldCache:
    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            WorldCache(maxsize=0)

    def test_build_or_fork_counts_miss_then_hits(self):
        cache = WorldCache()
        spec = EnvSpec(seed=7, profile=tiny_profile())
        before = cache.stats_snapshot()
        built = cache.build_or_fork(spec, _build)
        forked = cache.build_or_fork(spec, _build)
        assert cache.misses == 1 and cache.hits == 1
        assert _drive(built) == _drive(forked)
        delta = cache.stats_since(before)
        assert delta["worldcache.misses"] == 1
        assert delta["worldcache.hits"] == 1
        assert delta["worldcache.build_seconds"] > 0
        assert delta["worldcache.fork_seconds"] > 0

    def test_lru_evicts_oldest_world(self):
        cache = WorldCache(maxsize=2)
        specs = [EnvSpec(seed=s, profile=tiny_profile()) for s in (1, 2, 3)]
        for spec in specs:
            cache.build_or_fork(spec, lambda s=spec: default_env(
                profile=tiny_profile(), seed=s.seed
            ))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert specs[0].content_hash() not in cache
        # A get refreshes recency: seed-2 survives the next insertion.
        assert cache.get(specs[1].content_hash()) is not None
        cache.build_or_fork(
            EnvSpec(seed=4, profile=tiny_profile()),
            lambda: default_env(profile=tiny_profile(), seed=4),
        )
        assert specs[1].content_hash() in cache
        assert specs[2].content_hash() not in cache

    def test_traceless_snapshot_is_a_miss_under_tracing(self):
        cache = WorldCache()
        spec = EnvSpec(seed=7, profile=tiny_profile())
        cache.build_or_fork(spec, _build)  # tracing off: no build trace
        assert cache.get(spec.content_hash()).build_trace is None
        with telemetry_context(Telemetry()):
            cache.build_or_fork(spec, _build)
            assert cache.misses == 2  # rebuilt, snapshot rewritten with trace
            assert cache.get(spec.content_hash()).build_trace is not None
            cache.build_or_fork(spec, _build)
        assert cache.hits == 1

    def test_traced_fork_matches_traced_fresh_build_byte_for_byte(self):
        traffic = TrafficConfig(n_tenants=6, seed=2)

        def scenario() -> list[str]:
            env = default_env(
                profile=tiny_profile(), seed=4, background=traffic
            )
            _drive(env)
            return span_lines(telemetry)

        telemetry = Telemetry()
        with telemetry_context(telemetry):
            fresh = scenario()

        cache = WorldCache()
        telemetry = Telemetry()
        with telemetry_context(telemetry), world_cache_context(cache):
            built = scenario()  # miss: built on a child handle, grafted
        telemetry = Telemetry()
        with telemetry_context(telemetry), world_cache_context(cache):
            forked = scenario()  # hit: build trace replayed on fork
        assert cache.misses == 1 and cache.hits == 1
        assert built == fresh
        assert forked == fresh


# ----------------------------------------------------------------------
# default_env integration
# ----------------------------------------------------------------------
class TestDefaultEnvIntegration:
    def test_ambient_cache_forks_equal_worlds(self):
        cache = WorldCache()
        with world_cache_context(cache):
            first = _drive(_build())
            second = _drive(_build())
        assert cache.misses == 1 and cache.hits == 1
        assert first == second

    def test_no_ambient_cache_builds_fresh(self):
        cache = WorldCache()
        _build()
        assert cache.misses == 0 and len(cache) == 0

    def test_enabled_fault_plan_is_never_forked(self):
        cache = WorldCache()
        plan = FaultPlan.from_spec("launch=0.5,seed=11")
        with world_cache_context(cache):
            env = default_env(profile=tiny_profile(), seed=3, fault_plan=plan)
            assert env.orchestrator.fault_plan is plan  # ambient identity kept
            default_env(profile=tiny_profile(), seed=3, fault_plan=plan)
        assert len(cache) == 0
        assert cache.misses == 0 and cache.hits == 0


# ----------------------------------------------------------------------
# Runner wiring
# ----------------------------------------------------------------------
TRAFFIC = TrafficConfig(n_tenants=8, seed=3)
WORLD = EnvSpec(seed=21, profile=tiny_profile(), background=TRAFFIC)


def _world_cell(config: dict, seed: int) -> dict:
    env = default_env(profile=tiny_profile(), seed=seed, background=TRAFFIC)
    env.clock.sleep(30.0 + config["offset"])
    name = env.attacker.deploy(ServiceConfig(name="cell"))
    handles = env.attacker.connect(name, 2)
    return {
        "now": env.clock.now(),
        "hosts": sorted(
            env.orchestrator.true_host_of(h.instance_id) for h in handles
        ),
        "draw": int(env.orchestrator._rng.integers(0, 2**31)),
    }


def _specs(env_spec: EnvSpec | None) -> list[CellSpec]:
    return [
        CellSpec(
            experiment="world-smoke",
            fn=_world_cell,
            config={"offset": float(offset)},
            seed=21,
            label=f"offset-{offset}",
            env=env_spec,
        )
        for offset in range(4)
    ]


class TestRunnerWiring:
    def test_warm_serial_equals_cold_serial(self):
        reset_process_world_cache()
        warm = RunnerConfig()
        warm_values = [r.value for r in run_cells(_specs(WORLD), warm)]
        cold = RunnerConfig(world_cache=False)
        cold_values = [r.value for r in run_cells(_specs(WORLD), cold)]
        assert warm_values == cold_values
        assert warm.stats.world_misses == 1
        assert warm.stats.world_hits == 3
        assert cold.stats.world_hits == 0 and cold.stats.world_misses == 0

    def test_pooled_warm_equals_serial_warm(self):
        reset_process_world_cache()
        serial = [r.value for r in run_cells(_specs(WORLD), RunnerConfig())]
        pooled_runner = RunnerConfig(parallelism=2)
        pooled = [r.value for r in run_cells(_specs(WORLD), pooled_runner)]
        assert pooled == serial
        # Every worker builds its world once; forks cover the rest.
        total = pooled_runner.stats.world_hits + pooled_runner.stats.world_misses
        assert total == 4

    def test_undeclared_cells_skip_the_world_cache(self):
        reset_process_world_cache()
        runner = RunnerConfig()
        results = run_cells(_specs(None), runner)
        assert all(r.world is None for r in results)
        assert runner.stats.world_hits == 0 and runner.stats.world_misses == 0

    def test_world_cache_size_env_zero_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORLD_CACHE_SIZE", "0")
        reset_process_world_cache()
        assert process_world_cache() is None
        runner = RunnerConfig()
        results = run_cells(_specs(WORLD), runner)
        assert all(r.world is None for r in results)

    def test_cell_results_carry_world_deltas(self):
        reset_process_world_cache()
        results = run_cells(_specs(WORLD), RunnerConfig())
        assert results[0].world["worldcache.misses"] == 1
        for result in results[1:]:
            assert result.world["worldcache.hits"] == 1


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------
class TestRunStatsSummary:
    def test_silent_without_world_traffic(self):
        assert "worldcache" not in RunStats(cells=3).summary()

    def test_reports_forks_builds_and_evictions(self):
        stats = RunStats(
            cells=4,
            world_hits=3,
            world_misses=1,
            world_evictions=2,
            world_fork_seconds=0.25,
            world_build_seconds=1.5,
        )
        text = stats.summary()
        assert "worldcache 3 forks/1 builds/2 evictions" in text
        assert "build 1.5s" in text


# ----------------------------------------------------------------------
# Cell-cache keys under platform / fault contexts (PR satellite)
# ----------------------------------------------------------------------
class TestContextualCellKeys:
    def test_legacy_keys_unchanged_when_contexts_absent(self):
        spec = CellSpec("exp", _world_cell, {"offset": 0.0}, seed=1)
        assert spec.key() == cache_key("exp", {"offset": 0.0}, 1)
        assert spec.key() == spec.key(platform=None, faults=None)

    def test_platform_and_faults_shape_the_key(self):
        spec = CellSpec("exp", _world_cell, {"offset": 0.0}, seed=1)
        aws = platform_profile("aws_lambda_like")
        azure = platform_profile("azure_functions_like")
        faults = FaultPlan.from_spec("launch=0.1,seed=2").spec
        keys = {
            spec.key(),
            spec.key(platform=aws),
            spec.key(platform=azure),
            spec.key(faults=faults),
            spec.key(platform=aws, faults=faults),
        }
        assert len(keys) == 5

    def test_platform_runs_hit_the_cell_cache_warm(self, tmp_path):
        """--platform no longer bypasses the cache: warm == cold, keyed apart."""
        reset_process_world_cache()
        aws = platform_profile("aws_lambda_like")

        def runner() -> RunnerConfig:
            return RunnerConfig(
                cache_read=True,
                cache_write=True,
                cache_dir=tmp_path,
                platform=aws,
            )

        cold = runner()
        cold_results = run_cells(_specs(None), cold)
        assert cold.stats.cache_hits == 0
        warm = runner()
        warm_results = run_cells(_specs(None), warm)
        assert warm.stats.cache_hits == len(warm_results)
        assert [r.value for r in warm_results] == [
            r.value for r in cold_results
        ]
        # Baseline (no platform) runs use different keys: no cross-talk.
        base = RunnerConfig(
            cache_read=True, cache_write=True, cache_dir=tmp_path
        )
        base_results = run_cells(_specs(None), base)
        assert base.stats.cache_hits == 0
        assert {r.key for r in base_results}.isdisjoint(
            {r.key for r in warm_results}
        )
