"""Attacker-side analysis: clustering metrics, drift fitting, distributions,
policy inference, and terminal chart rendering."""

from repro.analysis.aggregation import FootprintAccumulator, census_reduce_scalar
from repro.analysis.asciichart import render_cdf, render_series
from repro.analysis.distributions import cdf_at, empirical_cdf, summarize
from repro.analysis.drift import DriftFit, estimate_expiration_time, fit_boot_time_drift
from repro.analysis.metrics import (
    PairConfusion,
    fowlkes_mallows_index,
    pair_confusion,
    victim_instance_coverage,
)
from repro.analysis.policy_inference import (
    IdlePolicyEstimate,
    estimate_base_set_size,
    estimate_hot_window,
    estimate_recruit_rate,
    fit_idle_policy,
)

__all__ = [
    "FootprintAccumulator",
    "census_reduce_scalar",
    "render_cdf",
    "render_series",
    "cdf_at",
    "empirical_cdf",
    "summarize",
    "DriftFit",
    "estimate_expiration_time",
    "fit_boot_time_drift",
    "PairConfusion",
    "fowlkes_mallows_index",
    "pair_confusion",
    "victim_instance_coverage",
    "IdlePolicyEstimate",
    "estimate_base_set_size",
    "estimate_hot_window",
    "estimate_recruit_rate",
    "fit_idle_policy",
]
