"""Disjoint-set bookkeeping for co-location clusters."""

from __future__ import annotations

from typing import Hashable, Iterable


class DisjointSet:
    """Union-find over hashable items, with cluster extraction.

    Used by both verification strategies to accumulate "verified
    co-located" relations and read the final clusters back out.
    """

    def __init__(self, items: Iterable[Hashable] = ()) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        for item in items:
            self.add(item)

    def add(self, item: Hashable) -> None:
        """Register an item as its own singleton cluster (idempotent)."""
        self._parent.setdefault(item, item)

    def find(self, item: Hashable) -> Hashable:
        """Return the canonical representative of the item's cluster."""
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[item] != root:
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        """Merge the clusters containing ``a`` and ``b``."""
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a

    def same(self, a: Hashable, b: Hashable) -> bool:
        """True when ``a`` and ``b`` are in the same cluster."""
        return self.find(a) == self.find(b)

    def clusters(self) -> list[list[Hashable]]:
        """All clusters, each as a list of items (insertion-ordered)."""
        by_root: dict[Hashable, list[Hashable]] = {}
        for item in self._parent:
            by_root.setdefault(self.find(item), []).append(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._parent)

    def __contains__(self, item: Hashable) -> bool:
        return item in self._parent
