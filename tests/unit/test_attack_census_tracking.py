"""Unit tests for the census and host-tracking attack components."""


from repro import units
from repro.core.attack.census import estimate_cluster_size
from repro.core.attack.tracking import FingerprintHistory, HostTracker


class TestCensus:
    def test_cumulative_monotone(self, tiny_env):
        clients = [tiny_env.attacker, tiny_env.victim("account-2")]
        result = estimate_cluster_size(
            clients,
            services_per_account=2,
            launches_per_service=2,
            instances_per_launch=10,
        )
        assert result.n_launches == 2 * 2 * 2
        cum = result.cumulative_unique
        assert all(a <= b for a, b in zip(cum, cum[1:]))

    def test_multiple_accounts_find_more_hosts(self, tiny_env_factory):
        env1 = tiny_env_factory(seed=3)
        single = estimate_cluster_size(
            [env1.attacker], services_per_account=2,
            launches_per_service=2, instances_per_launch=10,
        )
        env2 = tiny_env_factory(seed=3)
        multi = estimate_cluster_size(
            [env2.attacker, env2.victim("account-2"), env2.victim("account-3")],
            services_per_account=2, launches_per_service=2, instances_per_launch=10,
        )
        assert multi.total_unique > single.total_unique

    def test_per_launch_bounded_by_cumulative(self, tiny_env):
        result = estimate_cluster_size(
            [tiny_env.attacker], services_per_account=1,
            launches_per_service=3, instances_per_launch=10,
        )
        assert all(
            per <= cum for per, cum in zip(result.per_launch, result.cumulative_unique)
        )


class TestHostTracker:
    def test_tracks_one_rep_per_apparent_host(self, tiny_env):
        tracker = HostTracker(tiny_env.attacker, n_launch=15)
        n_tracked = tracker.start()
        truth = {
            tiny_env.orchestrator.true_host_of(h.instance_id)
            for h in tracker._trackers
        }
        assert n_tracked == len(truth)

    def test_histories_grow_with_observations(self, tiny_env):
        tracker = HostTracker(tiny_env.attacker, n_launch=10)
        tracker.start()
        tracker.observe()
        tracker.observe()
        assert all(len(h.wall_times) == 2 for h in tracker.histories)

    def test_run_filters_short_histories(self, tiny_env):
        tracker = HostTracker(tiny_env.attacker, n_launch=10)
        histories = tracker.run(
            duration_s=2 * units.DAY,
            cadence_s=4 * units.HOUR,
            min_history_s=units.DAY,
        )
        assert histories
        assert all(h.span_seconds >= units.DAY for h in histories)

    def test_drift_fit_is_linear(self, tiny_env):
        """Paper §4.4.2: every history fits a line with |r| ~ 1."""
        tracker = HostTracker(tiny_env.attacker, n_launch=10)
        histories = tracker.run(duration_s=2 * units.DAY, cadence_s=2 * units.HOUR)
        for history in histories:
            assert abs(history.fit_drift().r_value) > 0.999

    def test_expiration_estimates_positive(self, tiny_env):
        tracker = HostTracker(tiny_env.attacker, n_launch=10)
        histories = tracker.run(duration_s=2 * units.DAY, cadence_s=2 * units.HOUR)
        for history in histories:
            assert history.expiration_seconds(p_boot=1.0) >= 0.0


class TestFingerprintHistory:
    def test_span(self):
        history = FingerprintHistory(wall_times=[0.0, 100.0], boot_times=[1.0, 1.0])
        assert history.span_seconds == 100.0

    def test_empty_span_zero(self):
        assert FingerprintHistory().span_seconds == 0.0
