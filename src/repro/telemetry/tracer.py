"""Deterministic tracing: spans in simulated time, wall clock kept apart.

A :class:`Telemetry` handle records a tree of :class:`Span` records plus a
:class:`~repro.telemetry.metrics.MetricSet`.  Two span kinds:

* ``sim`` — timestamped from the bound :class:`~repro.simtime.clock.SimClock`
  (scheduler dispatch, launch batches, CTest rounds, verifier phases).
  Simulated time is a pure function of the seeds, so these spans are
  byte-identical across runs, process counts, and hash seeds.
* ``wall`` — runner-side work measured with ``time.perf_counter`` (cell
  execution, cache traffic).  The wall duration lives in a field the
  deterministic JSONL export *omits*, so traces stay diffable while the
  measurement is still available to metrics and opt-in exports.

The handle is threaded ambiently through a :mod:`contextvars` context —
the same pattern as :mod:`repro.faults.context` — so deep call stacks
(orchestrator, covert channel, verifier) reach it without parameter
plumbing.  When no telemetry is active, :func:`current_telemetry` returns
the process-wide :data:`NULL_TELEMETRY`, whose every operation is a no-op
returning shared singletons: the disabled path allocates nothing and
cannot perturb an experiment.

Worker processes build their own handle, and the parent splices the
serialized result into its tree in submission order
(:meth:`Telemetry.splice`), which is what keeps serial and pooled traces
byte-identical.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

from repro.telemetry.metrics import MetricSet

#: Span kinds; ``event`` is a zero-duration marker.
SIM = "sim"
WALL = "wall"
EVENT = "event"


class Span:
    """One recorded (possibly still open) span.

    Spans are context managers handed out by :meth:`Telemetry.span` /
    :meth:`Telemetry.wall_span`; use :meth:`set` to attach attributes that
    are only known mid-span (verdicts, created counts).
    """

    __slots__ = (
        "span_id", "parent_id", "name", "kind", "t0", "t1", "wall_s",
        "attrs", "_telemetry", "_wall_start",
    )

    def __init__(
        self,
        telemetry: "Telemetry",
        span_id: int,
        parent_id: int | None,
        name: str,
        kind: str,
        attrs: dict,
    ) -> None:
        self._telemetry = telemetry
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.kind = kind
        self.t0: float | None = None
        self.t1: float | None = None
        self.wall_s: float | None = None
        self.attrs = attrs
        self._wall_start: float | None = None

    def set(self, **attrs) -> "Span":
        """Attach or overwrite span attributes; returns the span."""
        self.attrs.update(attrs)
        return self

    def close(self) -> None:
        """Close the span explicitly (``with`` does this automatically)."""
        self._telemetry._close(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.close()
        return False

    def to_dict(self) -> dict:
        """Serializable record (includes wall_s; exports may strip it)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "t0": self.t0,
            "t1": self.t1,
            "wall_s": self.wall_s,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared do-nothing span for the disabled path (no allocation)."""

    __slots__ = ()

    def set(self, **attrs) -> "_NullSpan":
        return self

    def close(self) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTelemetry:
    """The disabled telemetry handle: every operation is a shared no-op.

    ``span``/``wall_span``/``event`` return process-wide singletons and
    record nothing, so code can call telemetry unconditionally without
    branching on enablement — the disabled path stays allocation-free and
    the experiment output byte-identical to an uninstrumented run.
    """

    enabled = False

    def use_clock(self, clock) -> None:
        pass

    def span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def wall_span(self, name: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs) -> None:
        pass

    def count(self, name: str, n: float = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def splice(self, trace: dict | None, name: str = "cell", **attrs) -> None:
        pass

    def graft(self, trace: dict | None) -> None:
        pass


#: The process-wide disabled handle (also the ambient default).
NULL_TELEMETRY = NullTelemetry()


class Telemetry:
    """An enabled tracing + metrics handle.

    Span identifiers are assigned sequentially at open time, and the
    record list is kept in id order, so the export order is a pure
    function of the instrumented code path — never of thread/process
    completion order.
    """

    enabled = True

    def __init__(self) -> None:
        self.metrics = MetricSet()
        self._records: list[Span] = []
        self._stack: list[Span] = []
        self._next_id = 0
        self._clock = None

    # ------------------------------------------------------------------
    # Clock binding
    # ------------------------------------------------------------------
    def use_clock(self, clock) -> None:
        """Bind the :class:`~repro.simtime.clock.SimClock` that stamps
        ``sim`` spans (rebinding is fine: each simulation cell binds its
        own fresh clock on construction)."""
        self._clock = clock

    def _sim_now(self) -> float | None:
        return self._clock.now() if self._clock is not None else None

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def _open(self, name: str, kind: str, attrs: dict) -> Span:
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(self, self._next_id, parent, name, kind, attrs)
        self._next_id += 1
        self._records.append(span)
        if kind == WALL:
            span._wall_start = time.perf_counter()
        else:
            span.t0 = self._sim_now()
        if kind != EVENT:
            self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if span.kind == WALL:
            if span._wall_start is not None:
                span.wall_s = time.perf_counter() - span._wall_start
        else:
            span.t1 = self._sim_now()
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break

    def span(self, name: str, **attrs) -> Span:
        """Open a simulated-time span (closed by the ``with`` exit)."""
        return self._open(name, SIM, attrs)

    def wall_span(self, name: str, **attrs) -> Span:
        """Open a wall-clock (runner-time) span."""
        return self._open(name, WALL, attrs)

    def event(self, name: str, **attrs) -> None:
        """Record a zero-duration marker at the current simulated time."""
        span = self._open(name, EVENT, attrs)
        span.t1 = span.t0

    # ------------------------------------------------------------------
    # Metrics facade
    # ------------------------------------------------------------------
    def count(self, name: str, n: float = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self.metrics.inc(name, n)

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name``."""
        self.metrics.gauge(name, value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        self.metrics.observe(name, value)

    # ------------------------------------------------------------------
    # Reading / transfer
    # ------------------------------------------------------------------
    def records(self) -> list[Span]:
        """All recorded spans, in id (open) order."""
        return list(self._records)

    def snapshot_trace(self) -> dict:
        """Serializable ``{"spans": [...], "metrics": {...}}`` state.

        This is what a worker process sends back in its
        :class:`~repro.runner.cellspec.CellResult` for the parent to
        :meth:`splice`.
        """
        return {
            "spans": [span.to_dict() for span in self._records],
            "metrics": self.metrics.to_state(),
        }

    def splice(self, trace: dict | None, name: str = "cell", **attrs) -> None:
        """Graft a child trace under the currently open span.

        A wrapper span named ``name`` is created, every child record gets
        a freshly assigned id (parent links remapped), and the child's
        metrics merge into this handle's.  Called in *submission* order by
        the runner, this reconstructs the exact tree a serial in-process
        run would have produced — regardless of worker completion order.
        """
        if trace is None:
            return
        with self.wall_span(name, **attrs) as wrapper:
            self._append_trace(trace, wrapper.span_id)
        self.metrics.merge(MetricSet.from_state(trace.get("metrics", {})))

    def graft(self, trace: dict | None) -> None:
        """Append a child trace *without* a wrapper span.

        Every record gets a freshly assigned id in trace order and root
        records attach to the currently open span (or become roots) — in
        other words, the resulting records are byte-identical to what
        direct recording on this handle would have produced.  That is the
        primitive the warm-world cache (:mod:`repro.runner.worldcache`)
        uses to make a restored environment's trace indistinguishable
        from a freshly built one: the build-time spans are captured once
        on a child handle and re-emitted on every fork.  Metrics merge in
        exactly as :meth:`splice` does.
        """
        if trace is None:
            return
        parent = self._stack[-1].span_id if self._stack else None
        self._append_trace(trace, parent)
        self.metrics.merge(MetricSet.from_state(trace.get("metrics", {})))

    def _append_trace(self, trace: dict, root_parent: int | None) -> None:
        """Re-id and append a serialized trace's spans under ``root_parent``."""
        id_map: dict[int, int] = {}
        for rec in trace.get("spans", ()):
            span = Span(
                self,
                self._next_id,
                id_map.get(rec["parent"], root_parent),
                rec["name"],
                rec["kind"],
                dict(rec["attrs"]),
            )
            self._next_id += 1
            span.t0 = rec["t0"]
            span.t1 = rec["t1"]
            span.wall_s = rec["wall_s"]
            id_map[rec["id"]] = span.span_id
            self._records.append(span)


_ACTIVE: ContextVar[Telemetry | NullTelemetry] = ContextVar(
    "repro_telemetry", default=NULL_TELEMETRY
)


def current_telemetry() -> Telemetry | NullTelemetry:
    """The ambient telemetry handle (:data:`NULL_TELEMETRY` when off)."""
    return _ACTIVE.get()


@contextmanager
def telemetry_context(
    telemetry: Telemetry | NullTelemetry,
) -> Iterator[Telemetry | NullTelemetry]:
    """Activate ``telemetry`` as the ambient handle for the block.

    ``telemetry_context(NULL_TELEMETRY)`` explicitly disables collection
    inside the block (shadowing any outer handle).
    """
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)
