"""Planning launch schedules from an inferred placement policy.

Closes the reverse-engineering loop of §5: once the attacker has estimated
the policy parameters (base-set size, idle window, hot window, helper
recruitment rate — see :mod:`repro.analysis.policy_inference`), it can
*predict* the footprint, cost, and duration of a candidate launching
schedule analytically, and pick the best schedule without burning money on
trial campaigns.

Model
-----
Per service, launch ``L`` times at interval ``tau`` with ``N`` instances:

* launch 1 (cold) lands on the ``B`` base hosts;
* each later launch replaces the instances that idled out —
  ``N * (1 - survival(tau))`` of them — and recruits
  ``rate * replaced`` helper hosts, up to the per-service cap;
* ``tau`` must stay inside the hot window or no recruitment happens at
  all, and should not be shorter than the idle grace period (nothing
  terminates, nothing is replaced).

Helper sets of ``S`` services are independent samples from the candidate
pool ``P`` (the serving fleet minus base hosts), so the expected union is
``P * (1 - (1 - h/P)^S)`` for per-service helper count ``h``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import units
from repro.analysis.policy_inference import IdlePolicyEstimate
from repro.cloud.billing import PricingRates, TIER1_RATES
from repro.cloud.services import SMALL, ContainerSize


@dataclass(frozen=True)
class PolicyModel:
    """The attacker's estimate of the orchestrator's policy."""

    base_set_size: int
    idle: IdlePolicyEstimate
    hot_window_s: float
    recruit_rate: float
    helper_pool_cap: int = 250
    candidate_pool_size: int = 250


@dataclass(frozen=True)
class LaunchSchedule:
    """A candidate attack schedule."""

    n_services: int
    launches: int
    instances_per_service: int
    interval_s: float


@dataclass(frozen=True)
class SchedulePrediction:
    """Analytic prediction for one schedule."""

    schedule: LaunchSchedule
    helpers_per_service: float
    expected_hosts: float
    duration_s: float
    cost_usd: float

    @property
    def hosts_per_usd(self) -> float:
        """Footprint efficiency (the planner's objective)."""
        return self.expected_hosts / self.cost_usd if self.cost_usd > 0 else 0.0


class AttackPlanner:
    """Predicts and optimizes launch schedules under a policy model.

    Parameters
    ----------
    policy:
        The inferred policy parameters.
    size:
        Attacker container size (cost model input).
    rates:
        Region pricing.
    active_seconds_per_launch:
        Billable activity per instance per launch (startup + probing).
    """

    def __init__(
        self,
        policy: PolicyModel,
        size: ContainerSize = SMALL,
        rates: PricingRates = TIER1_RATES,
        active_seconds_per_launch: float = 30.0,
    ) -> None:
        self.policy = policy
        self.size = size
        self.rates = rates
        self.active_seconds_per_launch = active_seconds_per_launch

    def predict(self, schedule: LaunchSchedule) -> SchedulePrediction:
        """Predict footprint, duration, and cost of a schedule."""
        policy = self.policy
        recruiting = schedule.interval_s < policy.hot_window_s
        replaced = schedule.instances_per_service * (
            1.0 - policy.idle.survival_fraction(schedule.interval_s)
        )
        per_launch = policy.recruit_rate * replaced if recruiting else 0.0
        helpers = min(
            per_launch * max(0, schedule.launches - 1), policy.helper_pool_cap
        )

        pool = max(policy.candidate_pool_size, 1)
        union_fraction = 1.0 - (1.0 - min(helpers, pool) / pool) ** schedule.n_services
        expected_hosts = policy.base_set_size + pool * union_fraction

        duration = max(0, schedule.launches - 1) * schedule.interval_s
        activations = (
            schedule.n_services * schedule.launches * schedule.instances_per_service
        )
        cost = activations * self.rates.active_cost(
            self.size.vcpus, self.size.memory_gb, self.active_seconds_per_launch
        )
        return SchedulePrediction(
            schedule=schedule,
            helpers_per_service=helpers,
            expected_hosts=expected_hosts,
            duration_s=duration,
            cost_usd=cost,
        )

    def best_interval(
        self, candidates_s: tuple[float, ...] = tuple(
            m * units.MINUTE for m in (2, 5, 8, 10, 12, 15, 20, 25)
        )
    ) -> float:
        """The interval maximizing replacements while staying hot.

        The sweet spot is at or just past the idle deadline (everything
        idles out, maximum replacements) but strictly inside the hot
        window — the quantitative version of the paper's 10-minute pick.
        """
        viable = [c for c in candidates_s if c < self.policy.hot_window_s]
        if not viable:
            raise ValueError("no candidate interval lies inside the hot window")
        probe = LaunchSchedule(
            n_services=1, launches=2, instances_per_service=100, interval_s=0.0
        )

        def helpers_for(interval: float) -> tuple[float, float]:
            schedule = LaunchSchedule(
                probe.n_services, probe.launches, probe.instances_per_service, interval
            )
            # Maximize recruitment; break ties toward shorter campaigns.
            return (self.predict(schedule).helpers_per_service, -interval)

        return max(viable, key=helpers_for)

    def plan(
        self,
        target_hosts: float,
        max_services: int = 12,
        launches_grid: tuple[int, ...] = (2, 3, 4, 5, 6, 8),
        instances_per_service: int = 800,
    ) -> SchedulePrediction:
        """Cheapest schedule predicted to reach ``target_hosts``.

        Raises
        ------
        ValueError
            If no schedule within the search space reaches the target.
        """
        interval = self.best_interval()
        best: SchedulePrediction | None = None
        for n_services in range(1, max_services + 1):
            for launches in launches_grid:
                prediction = self.predict(
                    LaunchSchedule(
                        n_services=n_services,
                        launches=launches,
                        instances_per_service=instances_per_service,
                        interval_s=interval,
                    )
                )
                if prediction.expected_hosts < target_hosts:
                    continue
                if best is None or prediction.cost_usd < best.cost_usd:
                    best = prediction
        if best is None:
            raise ValueError(
                f"no schedule reaches {target_hosts} hosts within the search space"
            )
        return best
