"""Property-based tests for the channel-kind registry.

The load-bearing invariant: the registry is metadata until a resource is
actually built, so *registering* a new channel kind — even building and
exercising its resource on a live host — must never perturb the RNG draw
order of any existing kind's observations.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.hardware.channels import (
    ChannelKind,
    DvfsFrequencyResource,
    LlcOccupancyResource,
    register_channel_kind,
    registered_channel_kinds,
    unregister_channel_kind,
)
from repro.hardware.rng_resource import ContentionResource
from tests.conftest import make_host


def _observe_stream(host, kinds, seed, n_obs):
    """Observation levels + final bit-generator state per built-in kind."""
    for index in range(3):
        for kind in kinds:
            host.channel_resource(kind).start_pressure(f"i{index}")
    rng = np.random.default_rng(seed)
    stream = {
        kind: [
            int(host.channel_resource(kind).observe("i0", rng))
            for _ in range(n_obs)
        ]
        for kind in kinds
    }
    return stream, str(rng.bit_generator.state)


@given(
    seed=st.integers(0, 2**31 - 1),
    n_obs=st.integers(1, 16),
    extra_background=st.floats(0.01, 0.9),
    build_extra=st.booleans(),
)
@settings(max_examples=30, deadline=None)
def test_registering_a_kind_never_perturbs_existing_kinds(
    seed, n_obs, extra_background, build_extra
):
    kinds = registered_channel_kinds()

    baseline_host = make_host()
    baseline = _observe_stream(baseline_host, kinds, seed, n_obs)

    extra = ChannelKind(
        name="prop-extra",
        description="hypothesis scratch kind",
        background_rate=extra_background,
        drop_rate=min(0.9, extra_background / 2 + 0.01),
    )
    register_channel_kind(extra)
    try:
        host = make_host()
        if build_extra:
            # Building and pressuring the new kind's resource draws from
            # its *own* observation RNGs only.
            resource = host.channel_resource("prop-extra")
            resource.start_pressure("other")
            resource.observe("other", np.random.default_rng(seed + 1))
        assert _observe_stream(host, kinds, seed, n_obs) == baseline
    finally:
        unregister_channel_kind("prop-extra")
    assert "prop-extra" not in registered_channel_kinds()


@given(
    seed=st.integers(0, 2**31 - 1),
    n_pressurers=st.integers(0, 12),
    n_obs=st.integers(1, 12),
    saturation=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_saturation_is_a_pure_post_clamp(seed, n_pressurers, n_obs, saturation):
    """A saturating resource observes exactly ``min(level, saturation)`` of
    the unsaturated resource's stream — and consumes identical draws."""
    plain = ContentionResource(background_rate=0.12, drop_rate=0.10)
    clamped = ContentionResource(
        background_rate=0.12, drop_rate=0.10, saturation=saturation
    )
    for resource in (plain, clamped):
        for index in range(n_pressurers):
            resource.start_pressure(f"i{index}")
        resource.start_pressure("self")
    rng_plain = np.random.default_rng(seed)
    rng_clamped = np.random.default_rng(seed)
    for _ in range(n_obs):
        level = plain.observe("self", rng_plain)
        assert clamped.observe("self", rng_clamped) == min(level, saturation)
    assert str(rng_plain.bit_generator.state) == str(
        rng_clamped.bit_generator.state
    )


@given(
    levels=st.lists(st.integers(0, 64), min_size=1, max_size=32),
    step=st.floats(0.01, 0.2),
    floor=st.floats(0.1, 0.9),
)
@settings(max_examples=40, deadline=None)
def test_dvfs_frequency_map_properties(levels, step, floor):
    """Frequency is monotone non-increasing in level, floored, and
    thresholding on frequency is equivalent to thresholding on level."""
    resource = DvfsFrequencyResource(step_fraction=step, floor_fraction=floor)
    freqs = resource.frequency_of_level(np.asarray(levels))
    assert np.all(freqs <= resource.base_frequency_hz)
    assert np.all(
        freqs >= resource.base_frequency_hz * resource.floor_fraction - 1e-6
    )
    ordered = resource.frequency_of_level(np.arange(0, 65))
    assert np.all(np.diff(ordered) <= 0)
    # Threshold equivalence: level >= m  <=>  frequency <= f(m), provided
    # f is still strictly decreasing at m (above the floor).
    for m in range(1, 8):
        f_m = resource.frequency_of_level(m)
        if f_m <= resource.base_frequency_hz * resource.floor_fraction:
            break
        for level in levels:
            assert (resource.frequency_of_level(level) <= f_m) == (level >= m)


def test_llc_resource_is_contention_resource_with_saturation():
    resource = LlcOccupancyResource()
    assert isinstance(resource, ContentionResource)
    assert type(resource).observe is ContentionResource.observe
    assert type(resource).observe_rounds is ContentionResource.observe_rounds
