"""Property-based tests for persistence round-trips."""

from hypothesis import given, strategies as st

from repro.core.fingerprint import Gen1Fingerprint, Gen2Fingerprint
from repro.persistence import (
    FingerprintStore,
    fingerprint_from_dict,
    fingerprint_to_dict,
)

gen1_fps = st.builds(
    Gen1Fingerprint,
    cpu_model=st.sampled_from(
        ["Intel Xeon CPU @ 2.00GHz", "AMD EPYC 7B12 @ 2.25GHz", "weird @ 3.10GHz"]
    ),
    boot_bucket=st.integers(-10**12, 10**12),
    p_boot=st.sampled_from([1e-3, 0.1, 1.0, 10.0]),
)
gen2_fps = st.builds(Gen2Fingerprint, tsc_khz=st.integers(1, 10**7))
any_fp = st.one_of(gen1_fps, gen2_fps)


@given(any_fp)
def test_fingerprint_roundtrip_identity(fp):
    assert fingerprint_from_dict(fingerprint_to_dict(fp)) == fp


@given(any_fp, any_fp)
def test_roundtrip_preserves_equality_relation(a, b):
    ra = fingerprint_from_dict(fingerprint_to_dict(a))
    rb = fingerprint_from_dict(fingerprint_to_dict(b))
    assert (a == b) == (ra == rb)
    assert (hash(a) == hash(b)) == (hash(ra) == hash(rb))


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), any_fp, st.floats(0, 1e9)),
        max_size=25,
    )
)
def test_store_roundtrip(tmp_path_factory_entries):
    entries = tmp_path_factory_entries
    store = FingerprintStore()
    for label, fp, at in entries:
        store.add(label, fp, observed_at=at)
    # In-memory invariants.
    assert len(store) == len(entries)
    for label in store.labels():
        assert store.query(label)
    assert sum(len(store.query(label)) for label in store.labels()) == len(entries)
