"""Clustering-quality and attack-efficacy metrics.

Fingerprint accuracy is scored pairwise (paper §4.4.1): every unordered pair
of instances is a (true/false) (positive/negative) depending on whether the
fingerprints match and whether the instances are truly co-located.  The
Fowlkes-Mallows index ``FMI = sqrt(precision * recall)`` summarizes both
error modes; 1.0 means perfect fingerprints.

Attack efficacy is the *victim instance coverage*: the fraction of victim
instances co-located with at least one attacker instance (§5.2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence


@dataclass(frozen=True)
class PairConfusion:
    """Pairwise confusion counts between predicted and true groupings."""

    true_positive: int
    false_positive: int
    true_negative: int
    false_negative: int

    @property
    def precision(self) -> float:
        """TP / (TP + FP); 1.0 when there are no positives at all."""
        denominator = self.true_positive + self.false_positive
        return self.true_positive / denominator if denominator else 1.0

    @property
    def recall(self) -> float:
        """TP / (TP + FN); 1.0 when there are no true pairs at all."""
        denominator = self.true_positive + self.false_negative
        return self.true_positive / denominator if denominator else 1.0

    @property
    def fmi(self) -> float:
        """Fowlkes-Mallows index: sqrt(precision * recall)."""
        return math.sqrt(self.precision * self.recall)


def pair_confusion(
    predicted: Mapping[str, Hashable], truth: Mapping[str, Hashable]
) -> PairConfusion:
    """Compute pairwise confusion counts.

    Parameters
    ----------
    predicted:
        Instance id -> predicted group label (e.g. its fingerprint).
    truth:
        Instance id -> true group label (e.g. its verified cluster).  Must
        cover the same instances as ``predicted``.

    Notes
    -----
    Uses the standard O(K^2)-free contingency formulation instead of
    enumerating all N(N-1)/2 pairs, so it scales to thousands of instances.
    """
    if set(predicted) != set(truth):
        raise ValueError("predicted and truth must cover the same instances")
    n = len(predicted)
    contingency: dict[tuple[Hashable, Hashable], int] = {}
    pred_sizes: dict[Hashable, int] = {}
    true_sizes: dict[Hashable, int] = {}
    for instance_id, pred_label in predicted.items():
        true_label = truth[instance_id]
        contingency[(pred_label, true_label)] = (
            contingency.get((pred_label, true_label), 0) + 1
        )
        pred_sizes[pred_label] = pred_sizes.get(pred_label, 0) + 1
        true_sizes[true_label] = true_sizes.get(true_label, 0) + 1

    def pairs(count: int) -> int:
        return count * (count - 1) // 2

    tp = sum(pairs(c) for c in contingency.values())
    predicted_pairs = sum(pairs(c) for c in pred_sizes.values())
    true_pairs = sum(pairs(c) for c in true_sizes.values())
    fp = predicted_pairs - tp
    fn = true_pairs - tp
    tn = pairs(n) - tp - fp - fn
    return PairConfusion(
        true_positive=tp, false_positive=fp, true_negative=tn, false_negative=fn
    )


def fowlkes_mallows_index(
    predicted: Mapping[str, Hashable], truth: Mapping[str, Hashable]
) -> float:
    """Convenience wrapper returning only the FMI."""
    return pair_confusion(predicted, truth).fmi


def victim_instance_coverage(
    victim_ids: Sequence[str],
    attacker_ids: Sequence[str],
    cluster_of: Mapping[str, Hashable],
) -> float:
    """Fraction of victim instances co-located with >= 1 attacker instance.

    Parameters
    ----------
    victim_ids / attacker_ids:
        Instance ids of the two parties.
    cluster_of:
        Instance id -> co-location cluster label (from verification).
        Victim instances missing from the mapping count as uncovered.
    """
    if not victim_ids:
        raise ValueError("coverage is undefined without victim instances")
    attacker_clusters = {
        cluster_of[iid] for iid in attacker_ids if iid in cluster_of
    }
    covered = sum(
        1
        for iid in victim_ids
        if iid in cluster_of and cluster_of[iid] in attacker_clusters
    )
    return covered / len(victim_ids)
