"""Picklable experiment cells and their content-addressed identities.

A *cell* is the unit of embarrassing parallelism in the experiment drivers:
one independent ``(configuration, seed)`` simulation whose result depends on
nothing but those inputs.  :class:`CellSpec` names the cell function and its
inputs; :class:`CellResult` carries the value back with timing and cache
provenance.  Both must survive a round-trip through ``pickle`` so cells can
run in worker processes (:mod:`repro.runner.pool`) and rest on disk
(:mod:`repro.runner.cache`).

The cache identity of a cell is the SHA-256 of ``(experiment id,
canonicalized config, seed, package version)`` — see :func:`cache_key` —
plus, when the runner executes under a platform profile or fault plan,
those contexts' canonical forms.  Changing any of them recomputes the
cell; nothing else does.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro import _version
from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids an import cycle)
    from repro.runner.worldcache import EnvSpec


class CellSpecError(ReproError):
    """Raised when a cell's configuration cannot be canonicalized."""


def canonicalize(config: Any) -> Any:
    """Reduce ``config`` to a deterministic JSON-able structure.

    Handles the types experiment configurations are built from: scalars,
    strings, mappings, sequences, sets, and (frozen) dataclasses.  Mapping
    keys are sorted and dataclasses are tagged with their qualified name so
    two config types with identical fields do not collide.
    """
    if config is None or isinstance(config, (bool, int, float, str)):
        return config
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        tag = f"{type(config).__module__}.{type(config).__qualname__}"
        fields = {
            f.name: canonicalize(getattr(config, f.name))
            for f in dataclasses.fields(config)
        }
        return {"__dataclass__": tag, "fields": fields}
    if isinstance(config, dict):
        try:
            items = sorted(config.items())
        except TypeError as error:
            raise CellSpecError(
                f"cell config mapping keys must be sortable: {config!r}"
            ) from error
        return {str(k): canonicalize(v) for k, v in items}
    if isinstance(config, (list, tuple)):
        return [canonicalize(item) for item in config]
    if isinstance(config, (set, frozenset)):
        return sorted(canonicalize(item) for item in config)
    raise CellSpecError(
        f"cannot canonicalize {type(config).__name__!r} in a cell config"
    )


@dataclass(frozen=True)
class CellSpec:
    """One independent simulation cell.

    Attributes
    ----------
    experiment:
        Experiment identifier (part of the cache key).
    fn:
        Module-level callable ``fn(config, seed) -> value``.  It must be
        importable by name (no lambdas or closures) so worker processes can
        unpickle it, and its value must itself be picklable.
    config:
        The cell's full configuration; canonicalized into the cache key.
    seed:
        Master seed for the cell.  Every RNG inside the cell must derive
        from it, which is what makes serial and pooled runs identical.
    label:
        Free-form display label (not part of the cache key).
    env:
        Optional :class:`~repro.runner.worldcache.EnvSpec` declaring the
        simulated world the cell builds.  Declaring one opts the cell
        into warm-world forking: the runner activates the process's
        :class:`~repro.runner.worldcache.WorldCache` around the cell, so
        its ``default_env`` call forks a checkpoint instead of rebuilding
        when a sibling already built the same world.  Advisory — the
        world's identity is always recomputed from the actual
        ``default_env`` inputs — and not part of the cell cache key.
    """

    experiment: str
    fn: Callable[[Any, int], Any]
    config: Any
    seed: int
    label: str = ""
    env: "EnvSpec | None" = None

    def key(self, platform: Any = None, faults: Any = None) -> str:
        """Content-addressed cache key for this cell.

        ``platform`` / ``faults`` are the runner's execution contexts
        (:class:`~repro.cloud.platform.PlatformProfile`,
        :class:`~repro.faults.FaultSpec`); when given they join the
        hashed payload so context-shaped values can never collide with
        baseline entries.  Omitted (``None``) they leave the key exactly
        as it was before contexts existed.
        """
        return cache_key(
            self.experiment, self.config, self.seed,
            platform=platform, faults=faults,
        )


@dataclass
class CellResult:
    """The outcome of one executed (or cache-restored) cell.

    A cell that raised carries ``error`` (``"label: ExcType: message"``)
    and ``value=None`` instead of aborting its whole run; see
    :func:`~repro.runner.pool.run_cells` for how errors propagate.
    """

    experiment: str
    seed: int
    label: str
    key: str
    value: Any
    elapsed_s: float
    cached: bool = field(default=False)
    error: str | None = field(default=None)
    #: Telemetry snapshot (spans + metrics) captured while the cell ran;
    #: ``None`` when tracing was off.  Not part of the cell's identity.
    trace: dict | None = field(default=None, repr=False)
    #: Warm-world cache counter deltas (``worldcache.*``) this cell's
    #: execution produced; ``None`` when the cell did not run with the
    #: world cache armed (or touched it not at all).
    world: dict | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        """Whether the cell produced a value (no captured error)."""
        return self.error is None

    def value_digest(self) -> str:
        """SHA-256 of the pickled value (byte-identity across runs)."""
        return hashlib.sha256(pickle.dumps(self.value)).hexdigest()


def cache_key(
    experiment: str,
    config: Any,
    seed: int,
    *,
    platform: Any = None,
    faults: Any = None,
) -> str:
    """SHA-256 over (experiment id, canonical config, seed, version).

    A non-``None`` ``platform`` (a profile dataclass) or ``faults`` (a
    fault-spec dataclass) is canonicalized into the payload under its own
    field, so runs under ``--platform`` / ``--faults`` are content-
    addressed separately from baseline runs instead of bypassing the
    cache.  ``None`` values are *omitted entirely*: keys computed before
    these fields existed remain valid.
    """
    payload = {
        "experiment": experiment,
        "config": canonicalize(config),
        "seed": int(seed),
        "version": _version.__version__,
    }
    if platform is not None:
        payload["platform"] = canonicalize(platform)
    if faults is not None:
        payload["faults"] = canonicalize(faults)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
