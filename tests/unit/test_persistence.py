"""Unit tests for the attacker-state persistence layer."""

import json

import pytest

from repro.core.attack.targeting import VictimProfile
from repro.core.attack.tracking import FingerprintHistory
from repro.core.fingerprint import Gen1Fingerprint, Gen2Fingerprint
from repro.persistence import (
    FingerprintStore,
    PersistenceError,
    fingerprint_from_dict,
    fingerprint_to_dict,
    history_from_dict,
    history_to_dict,
    victim_profile_from_dict,
    victim_profile_to_dict,
)


def g1(bucket=1000):
    return Gen1Fingerprint(
        cpu_model="Intel Xeon CPU @ 2.00GHz", boot_bucket=bucket, p_boot=1.0
    )


class TestFingerprintSerialization:
    def test_gen1_roundtrip(self):
        assert fingerprint_from_dict(fingerprint_to_dict(g1())) == g1()

    def test_gen2_roundtrip(self):
        fp = Gen2Fingerprint(tsc_khz=2_199_997)
        assert fingerprint_from_dict(fingerprint_to_dict(fp)) == fp

    def test_payload_is_json_safe(self):
        json.dumps(fingerprint_to_dict(g1()))

    def test_unknown_kind_rejected(self):
        with pytest.raises(PersistenceError):
            fingerprint_from_dict({"kind": "gen9"})

    def test_malformed_payload_rejected(self):
        with pytest.raises(PersistenceError):
            fingerprint_from_dict({"kind": "gen1", "cpu_model": "x"})


class TestVictimProfileSerialization:
    def test_roundtrip(self):
        profile = VictimProfile(recorded_at=123.0, fingerprints={g1(1), g1(2)})
        restored = victim_profile_from_dict(victim_profile_to_dict(profile))
        assert restored.recorded_at == 123.0
        assert restored.fingerprints == profile.fingerprints

    def test_gen2_in_profile_rejected(self):
        payload = {
            "recorded_at": 0.0,
            "fingerprints": [fingerprint_to_dict(Gen2Fingerprint(tsc_khz=1))],
        }
        with pytest.raises(PersistenceError):
            victim_profile_from_dict(payload)

    def test_restored_profile_still_matches(self):
        profile = VictimProfile(recorded_at=0.0, fingerprints={g1(1000)})
        restored = victim_profile_from_dict(victim_profile_to_dict(profile))
        assert restored.matches(g1(1000), now=0.0)


class TestHistorySerialization:
    def test_roundtrip_preserves_fit(self):
        history = FingerprintHistory(
            wall_times=[0.0, 3600.0, 7200.0, 10800.0],
            boot_times=[1.0, 1.001, 1.002, 1.003],
        )
        restored = history_from_dict(history_to_dict(history))
        assert restored.fit_drift().slope == pytest.approx(
            history.fit_drift().slope
        )


class TestFingerprintStore:
    def test_add_query_labels(self):
        store = FingerprintStore()
        store.add("victim@east", g1(1), observed_at=10.0)
        store.add("victim@east", g1(2), observed_at=11.0)
        store.add("census", g1(3), observed_at=12.0)
        assert store.labels() == ["census", "victim@east"]
        assert len(store.query("victim@east")) == 2
        assert len(store) == 3

    def test_add_many(self):
        store = FingerprintStore()
        store.add_many("batch", [g1(i) for i in range(5)], observed_at=1.0)
        assert len(store) == 5

    def test_save_load_roundtrip(self, tmp_path):
        store = FingerprintStore()
        store.add("a", g1(7), observed_at=99.0)
        store.add("b", Gen2Fingerprint(tsc_khz=2_000_001), observed_at=100.0)
        path = tmp_path / "store.json"
        store.save(path)
        restored = FingerprintStore.load(path)
        assert len(restored) == 2
        assert restored.query("a")[0].fingerprint == g1(7)
        assert restored.query("b")[0].observed_at == 100.0

    def test_load_rejects_wrong_format(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text(json.dumps({"format": "something-else"}))
        with pytest.raises(PersistenceError):
            FingerprintStore.load(path)

    def test_load_rejects_future_version(self, tmp_path):
        path = tmp_path / "v9.json"
        path.write_text(
            json.dumps({"format": "repro-fingerprint-store", "version": 9})
        )
        with pytest.raises(PersistenceError):
            FingerprintStore.load(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(PersistenceError):
            FingerprintStore.load(path)

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            FingerprintStore.load(tmp_path / "nope.json")
