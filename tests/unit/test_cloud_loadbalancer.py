"""Unit tests for demand tracking and helper-host recruitment."""

import numpy as np

from repro.cloud.loadbalancer import DemandTracker, HelperHostRecruiter
from repro.cloud.services import Service, ServiceConfig
from repro.fleet import FleetStore
from repro.simtime.clock import SIM_EPOCH

from tests.conftest import tiny_profile


def make_service():
    return Service(config=ServiceConfig(name="s"), account_id="a", image_id="i")


def make_fleet(n=40):
    return FleetStore([f"h{i}" for i in range(n)])


def make_tracker(**overrides):
    return DemandTracker(tiny_profile(**overrides))


class TestDemandTracker:
    def test_cold_service_is_not_hot(self):
        tracker = make_tracker()
        assert not tracker.is_hot(make_service(), SIM_EPOCH)

    def test_recent_high_demand_makes_hot(self):
        tracker = make_tracker(hot_min_concurrency=10)
        service = make_service()
        tracker.record_demand(service, SIM_EPOCH, 50)
        assert tracker.is_hot(service, SIM_EPOCH + 600.0)

    def test_old_demand_expires(self):
        profile = tiny_profile(hot_min_concurrency=10)
        tracker = DemandTracker(profile)
        service = make_service()
        tracker.record_demand(service, SIM_EPOCH, 50)
        assert not tracker.is_hot(service, SIM_EPOCH + profile.hot_window + 1.0)

    def test_low_demand_never_hot(self):
        tracker = make_tracker(hot_min_concurrency=100)
        service = make_service()
        tracker.record_demand(service, SIM_EPOCH, 50)
        assert not tracker.is_hot(service, SIM_EPOCH + 60.0)

    def test_history_is_trimmed(self):
        profile = tiny_profile()
        tracker = DemandTracker(profile)
        service = make_service()
        for i in range(100):
            tracker.record_demand(service, SIM_EPOCH + i * profile.hot_window, 50)
        assert len(service.demand_events) < 10


class TestHelperRecruiter:
    def recruit(self, new_instances, candidates=30, cap=12, fraction=0.25, seed=0):
        profile = tiny_profile(helper_pool_cap=cap, helper_recruit_fraction=fraction)
        recruiter = HelperHostRecruiter(profile, np.random.default_rng(seed))
        service = make_service()
        store = make_fleet()
        pool = store.indices_of([f"h{i}" for i in range(candidates)])
        recruited = recruiter.recruit(service, new_instances, pool, store)
        return recruited, service

    def test_recruits_proportionally_to_new_instances(self):
        few, _ = self.recruit(new_instances=4)
        many, _ = self.recruit(new_instances=40)
        assert len(few) < len(many)

    def test_zero_new_instances_recruits_nothing(self):
        recruited, _ = self.recruit(new_instances=0)
        assert recruited == []

    def test_respects_pool_cap(self):
        recruited, service = self.recruit(new_instances=1000, cap=5)
        assert len(recruited) == 5
        assert len(service.helper_host_ids) == 5

    def test_cap_accounts_for_existing_helpers(self):
        profile = tiny_profile(helper_pool_cap=6, helper_recruit_fraction=1.0)
        recruiter = HelperHostRecruiter(profile, np.random.default_rng(0))
        service = make_service()
        store = make_fleet()
        pool = [f"h{i}" for i in range(30)]
        recruiter.recruit(service, 4, store.indices_of(pool), store)
        remaining = [h for h in pool if h not in service.helper_host_ids]
        recruiter.recruit(service, 100, store.indices_of(remaining), store)
        assert len(service.helper_host_ids) == 6

    def test_recruits_only_from_candidates(self):
        recruited, _ = self.recruit(new_instances=20, candidates=10)
        assert set(recruited) <= {f"h{i}" for i in range(10)}

    def test_no_candidates_recruits_nothing(self):
        profile = tiny_profile()
        recruiter = HelperHostRecruiter(profile, np.random.default_rng(0))
        store = make_fleet()
        empty = np.empty(0, dtype=np.int64)
        assert recruiter.recruit(make_service(), 50, empty, store) == []

    def test_no_duplicate_recruits_in_one_call(self):
        recruited, _ = self.recruit(new_instances=100, candidates=20, cap=20, fraction=1.0)
        assert len(recruited) == len(set(recruited))
