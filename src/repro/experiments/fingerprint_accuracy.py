"""Figure 4: Gen 1 fingerprint accuracy vs. rounding precision ``p_boot``.

For each repetition: launch 800 instances in a datacenter, take one Gen 1
fingerprinting sample per instance, establish co-location ground truth, then
sweep the rounding precision and score the resulting fingerprints with
pairwise precision / recall / FMI.

Paper reference: FMI is low at very fine precisions (measurement noise
splits hosts), near-perfect (average FMI 0.9999) for ``p_boot`` in
[100 ms, 1 s], and degrades at coarse precisions (hosts with similar boot
times collide).  14 of 15 runs produce perfect fingerprints at 1 s.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import PairConfusion, pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core import probes
from repro.experiments.base import default_env
from repro.experiments.ground_truth import truth_clusters
from repro.runner import CellSpec, EnvSpec, RunnerConfig, run_cells

#: Paper's Fig. 4 sweet spot and headline number.
PAPER_SWEET_SPOT = (0.1, 1.0)
PAPER_SWEET_SPOT_FMI = 0.9999


@dataclass(frozen=True)
class AccuracyConfig:
    """Configuration for the Fig. 4 sweep."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    repetitions: int = 5
    instances: int = 800
    p_boot_grid: tuple[float, ...] = (
        1e-4, 1e-3, 1e-2, 1e-1, 1e0, 1e1, 1e2, 1e3,
    )
    ground_truth: str = "covert"
    base_seed: int = 100


@dataclass(frozen=True)
class SweepPoint:
    """Accuracy statistics at one rounding precision."""

    p_boot: float
    fmi_mean: float
    fmi_std: float
    precision_mean: float
    precision_std: float
    recall_mean: float
    recall_std: float


@dataclass
class AccuracyResult:
    """Outcome of the Fig. 4 experiment."""

    points: list[SweepPoint] = field(default_factory=list)
    #: FMI of each individual run at p_boot = 1 s.
    run_fmis_at_1s: list[float] = field(default_factory=list)

    @property
    def perfect_runs_at_1s(self) -> int:
        """Runs with FMI exactly 1.0 at the default precision."""
        return sum(1 for fmi in self.run_fmis_at_1s if fmi == 1.0)

    def point(self, p_boot: float) -> SweepPoint:
        """Look up the sweep point for a given precision."""
        for candidate in self.points:
            if candidate.p_boot == p_boot:
                return candidate
        raise KeyError(f"no sweep point at p_boot={p_boot!r}")


def _accuracy_cell(
    params: dict, seed: int
) -> tuple[list[tuple[str, tuple[str, float]]], dict[str, str]]:
    """One Fig. 4 cell: launch instances, sample inputs, get ground truth.

    Returns ``(samples, truth)`` where samples are
    ``(instance_id, (model, boot_time))`` inputs reusable across the sweep.
    """
    env = default_env(params["region"], seed=seed)
    client = env.attacker
    instances = params["instances"]
    service = client.deploy(
        ServiceConfig(name="accuracy", max_instances=max(100, instances))
    )
    handles = client.connect(service, instances)
    raw = [(h, h.run(probes.gen1_fingerprint_probe)) for h in handles]
    samples = [
        (h.instance_id, (s.cpu_model, s.boot_time())) for h, s in raw
    ]
    tagged_pairs = [(h, s.fingerprint(1.0)) for h, s in raw]
    truth = truth_clusters(params["ground_truth"], env.orchestrator, tagged_pairs)
    truth = {iid: str(label) for iid, label in truth.items()}
    return samples, truth


def _score(
    samples: list[tuple[str, tuple[str, float]]],
    truth: dict[str, str],
    p_boot: float,
) -> PairConfusion:
    predicted = {
        iid: (model, round(boot / p_boot)) for iid, (model, boot) in samples
    }
    return pair_confusion(predicted, truth)


def run(
    config: AccuracyConfig = AccuracyConfig(),
    runner: RunnerConfig | None = None,
) -> AccuracyResult:
    """Run the Fig. 4 accuracy sweep.

    The per-(region, repetition) simulations are independent cells; pass a
    :class:`~repro.runner.RunnerConfig` to fan them out and cache them.
    """
    specs: list[CellSpec] = []
    seed = config.base_seed
    for region in config.regions:
        for rep in range(config.repetitions):
            specs.append(
                CellSpec(
                    experiment="fig4",
                    fn=_accuracy_cell,
                    config={
                        "region": region,
                        "instances": config.instances,
                        "ground_truth": config.ground_truth,
                    },
                    seed=seed,
                    label=f"{region}/rep{rep}",
                    # Each (region, rep) world is distinct in one sweep,
                    # but a re-run in the same process forks the snapshot
                    # instead of rebuilding the region.
                    env=EnvSpec(region=region, seed=seed),
                )
            )
            seed += 1
    runs = [cell.value for cell in run_cells(specs, runner)]

    result = AccuracyResult()
    for samples, truth in runs:
        result.run_fmis_at_1s.append(_score(samples, truth, 1.0).fmi)

    for p_boot in config.p_boot_grid:
        confusions = [_score(samples, truth, p_boot) for samples, truth in runs]
        fmis = np.array([c.fmi for c in confusions])
        precisions = np.array([c.precision for c in confusions])
        recalls = np.array([c.recall for c in confusions])
        result.points.append(
            SweepPoint(
                p_boot=p_boot,
                fmi_mean=float(fmis.mean()),
                fmi_std=float(fmis.std()),
                precision_mean=float(precisions.mean()),
                precision_std=float(precisions.std()),
                recall_mean=float(recalls.mean()),
                recall_std=float(recalls.std()),
            )
        )
    return result
