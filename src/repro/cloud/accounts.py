"""Cloud accounts and quotas.

Accounts matter to the paper because the orchestrator keys its *base host*
selection on the owning account (Observation 4): services from the same
account share base hosts, while different accounts get different ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.billing import BillingMeter
from repro.errors import QuotaExceededError


@dataclass
class Account:
    """A standard public-cloud account.

    Attributes
    ----------
    account_id:
        Unique account identifier.
    max_instances_per_service:
        Quota cap on a single service's instance count.  New accounts are
        often capped much lower (e.g. 10) until they build usage history
        (paper §5.2, "Potential attack optimizations").
    base_host_ids:
        The account's base hosts in each region, assigned lazily by the
        orchestrator on first deployment (``region -> host ids``).
    """

    account_id: str
    max_instances_per_service: int = 1000
    base_host_ids: dict[str, tuple[str, ...]] = field(default_factory=dict)
    billing: BillingMeter = field(default_factory=BillingMeter)

    def check_instance_quota(self, requested: int) -> None:
        """Raise if a service tried to scale beyond the account quota."""
        if requested > self.max_instances_per_service:
            raise QuotaExceededError(
                f"account {self.account_id!r} is limited to "
                f"{self.max_instances_per_service} instances per service "
                f"(requested {requested})"
            )
