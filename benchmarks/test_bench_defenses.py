"""§6 defense evaluation: what each mitigation buys at full scale.

The paper suggests TSC masking and co-location-resistant scheduling as
mitigations.  This bench runs the full optimized attack against an
undefended us-east1, a TSC-emulating one, and the two scheduling defenses,
and reports what survives.
"""

from repro.cloud.topology import REGION_PROFILES, RegionProfile
from repro.core.attack.strategies import optimized_launch
from repro.cloud.services import ServiceConfig
from repro.experiments.base import default_env
from repro.experiments.report import ComparisonRow, format_comparison
from repro.sandbox.base import TscPolicy

from benchmarks.conftest import run_once

import dataclasses


def defended_profile(defense: str) -> RegionProfile:
    return dataclasses.replace(REGION_PROFILES["us-east1"], defense=defense)


def attack_under(defense: str, tsc_policy: TscPolicy) -> dict:
    from repro.analysis.metrics import pair_confusion

    env = default_env(
        profile=defended_profile(defense), seed=980, tsc_policy=tsc_policy
    )
    outcome = optimized_launch(env.attacker)
    orch = env.orchestrator
    attacker_hosts = {
        orch.true_host_of(h.instance_id) for h in outcome.handles if h.alive
    }
    victim = env.victim("account-2")
    service = victim.deploy(ServiceConfig(name="victim"))
    handles = victim.connect(service, 100)
    hosts = [orch.true_host_of(h.instance_id) for h in handles]
    true_coverage = sum(1 for h in hosts if h in attacker_hosts) / len(hosts)
    # Fingerprint quality: do fingerprints still identify hosts?
    predicted = {
        h.instance_id: fp for h, fp in outcome.fingerprints if h.alive
    }
    truth = {iid: orch.true_host_of(iid) for iid in predicted}
    fmi = pair_confusion(predicted, truth).fmi if predicted else 0.0
    return {
        "true_hosts": len(attacker_hosts),
        "fingerprint_fmi": fmi,
        "coverage": true_coverage,
        "cost": outcome.cost_usd,
    }


def test_defense_matrix(benchmark, emit):
    def sweep():
        return {
            "undefended": attack_under("none", TscPolicy.NATIVE),
            "tsc_emulation": attack_under("none", TscPolicy.EMULATED),
            "randomized_base": attack_under("randomized_base", TscPolicy.NATIVE),
            "tenant_isolation": attack_under("tenant_isolation", TscPolicy.NATIVE),
        }

    results = run_once(benchmark, sweep)

    emit(
        format_comparison(
            "§6 — the optimized attack vs each mitigation (us-east1)",
            [
                ComparisonRow(
                    name,
                    "-",
                    f"cov {100 * r['coverage']:.0f}% | "
                    f"{r['true_hosts']} hosts | fingerprint FMI "
                    f"{r['fingerprint_fmi']:.2f} | ${r['cost']:.0f}",
                )
                for name, r in results.items()
            ],
        )
    )

    undefended = results["undefended"]
    assert undefended["coverage"] > 0.9
    assert undefended["fingerprint_fmi"] > 0.99

    # TSC emulation doesn't stop *placement* co-location, but it blinds
    # the attacker: fingerprints stop corresponding to hosts.
    masked = results["tsc_emulation"]
    assert masked["coverage"] > 0.5  # co-location itself is unaffected...
    assert masked["fingerprint_fmi"] < 0.5  # ...but the attacker can't see it

    # Randomized base hosts keep coverage possible for a saturating
    # attacker (it still holds many hosts) — the defense mainly destroys
    # *predictability*, not saturation attacks.
    assert results["randomized_base"]["true_hosts"] > 100

    # Tenant isolation is the only full stop.
    assert results["tenant_isolation"]["coverage"] == 0.0
    assert results["tenant_isolation"]["true_hosts"] <= 75
