"""Unit tests for clustering and coverage metrics."""

import math

import pytest

from repro.analysis.metrics import (
    PairConfusion,
    fowlkes_mallows_index,
    pair_confusion,
    victim_instance_coverage,
)


class TestPairConfusion:
    def test_perfect_clustering(self):
        labels = {"a": 1, "b": 1, "c": 2}
        confusion = pair_confusion(labels, labels)
        assert confusion.false_positive == 0
        assert confusion.false_negative == 0
        assert confusion.fmi == 1.0

    def test_counts_for_known_example(self):
        predicted = {"a": "x", "b": "x", "c": "x"}
        truth = {"a": 1, "b": 1, "c": 2}
        confusion = pair_confusion(predicted, truth)
        # Pairs: (a,b) TP; (a,c) FP; (b,c) FP.
        assert confusion.true_positive == 1
        assert confusion.false_positive == 2
        assert confusion.false_negative == 0
        assert confusion.true_negative == 0

    def test_false_negatives_counted(self):
        predicted = {"a": 1, "b": 2}
        truth = {"a": "h", "b": "h"}
        confusion = pair_confusion(predicted, truth)
        assert confusion.false_negative == 1
        assert confusion.recall == 0.0

    def test_total_pairs_conserved(self):
        predicted = {f"i{k}": k % 3 for k in range(30)}
        truth = {f"i{k}": k % 5 for k in range(30)}
        confusion = pair_confusion(predicted, truth)
        total = (
            confusion.true_positive
            + confusion.false_positive
            + confusion.true_negative
            + confusion.false_negative
        )
        assert total == 30 * 29 // 2

    def test_mismatched_keys_rejected(self):
        with pytest.raises(ValueError):
            pair_confusion({"a": 1}, {"b": 1})

    def test_fmi_formula(self):
        confusion = PairConfusion(
            true_positive=6, false_positive=2, true_negative=10, false_negative=3
        )
        expected = math.sqrt((6 / 8) * (6 / 9))
        assert confusion.fmi == pytest.approx(expected)

    def test_degenerate_no_positive_pairs(self):
        predicted = {"a": 1, "b": 2}
        truth = {"a": 1, "b": 2}
        confusion = pair_confusion(predicted, truth)
        assert confusion.precision == 1.0
        assert confusion.recall == 1.0

    def test_fmi_wrapper(self):
        labels = {"a": 1, "b": 1}
        assert fowlkes_mallows_index(labels, labels) == 1.0


class TestVictimCoverage:
    def test_full_coverage(self):
        clusters = {"v1": "h1", "v2": "h2", "a1": "h1", "a2": "h2"}
        assert victim_instance_coverage(["v1", "v2"], ["a1", "a2"], clusters) == 1.0

    def test_zero_coverage(self):
        clusters = {"v1": "h1", "a1": "h2"}
        assert victim_instance_coverage(["v1"], ["a1"], clusters) == 0.0

    def test_partial_coverage(self):
        clusters = {"v1": "h1", "v2": "h2", "v3": "h3", "a1": "h1", "a2": "h3"}
        coverage = victim_instance_coverage(["v1", "v2", "v3"], ["a1", "a2"], clusters)
        assert coverage == pytest.approx(2 / 3)

    def test_unknown_victim_counts_uncovered(self):
        clusters = {"v1": "h1", "a1": "h1"}
        coverage = victim_instance_coverage(["v1", "v-unknown"], ["a1"], clusters)
        assert coverage == 0.5

    def test_no_victims_rejected(self):
        with pytest.raises(ValueError):
            victim_instance_coverage([], ["a1"], {"a1": "h"})

    def test_no_attackers_gives_zero(self):
        clusters = {"v1": "h1"}
        assert victim_instance_coverage(["v1"], [], clusters) == 0.0
