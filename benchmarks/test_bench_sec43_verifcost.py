"""§4.3: verification cost — scalable vs. conventional pairwise testing.

Paper, for 800 instances: pairwise needs 319,600 serialized tests (~8.9 h
at 100 ms/test, ~$645); the fingerprint-guided method takes 1-2 minutes and
$1-3.  SIE cannot prune anything in a FaaS environment.
"""

from repro.experiments import verification_cost as vc
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = vc.VerificationCostConfig()


def test_sec43_verification_cost(benchmark, emit):
    result = run_once(benchmark, lambda: vc.run(CONFIG))

    emit(
        format_comparison(
            "§4.3 — verifying co-location of 800 instances",
            [
                ComparisonRow(
                    "pairwise tests", f"{vc.PAPER_PAIRWISE_TESTS_800:,}",
                    f"{result.pairwise_tests_modeled:,}",
                ),
                ComparisonRow(
                    "pairwise wall time", f"{vc.PAPER_PAIRWISE_HOURS_800} h",
                    f"{result.pairwise_seconds_modeled / 3600:.1f} h",
                ),
                ComparisonRow(
                    "pairwise cost", f"${vc.PAPER_PAIRWISE_USD_800:.0f}",
                    f"${result.pairwise_usd_modeled:.0f}",
                ),
                ComparisonRow(
                    "scalable tests", "~#hosts (75) + overhead",
                    str(result.scalable_tests),
                ),
                ComparisonRow(
                    "scalable wall time", "1-2 min",
                    f"{result.scalable_seconds / 60:.1f} min",
                ),
                ComparisonRow(
                    "scalable cost", "$1-3", f"${result.scalable_usd:.2f}"
                ),
                ComparisonRow(
                    "SIE eliminated", "0 (ineffective in FaaS)",
                    str(result.sie_eliminated),
                ),
            ],
        )
    )

    assert result.pairwise_tests_modeled == vc.PAPER_PAIRWISE_TESTS_800
    assert result.pairwise_usd_modeled > 600
    assert result.scalable_seconds / 60 < 4.0
    assert vc.PAPER_SCALABLE_USD_800[0] * 0.3 <= result.scalable_usd <= 4.0
    assert result.scalable_tests < result.pairwise_tests_modeled / 100
    assert result.sie_eliminated == 0
    assert result.scalable_hosts in range(70, 81)
    assert result.speedup > 100


def test_sec43_scaling_with_instance_count(benchmark, emit):
    """Pairwise cost grows quadratically; the scalable method's cost grows
    with the number of *hosts*, which saturates at the base-set size."""

    def sweep():
        results = {}
        for n in (100, 200, 400, 800):
            results[n] = vc.run(vc.VerificationCostConfig(instances=n, seed=901))
        return results

    results = run_once(benchmark, sweep)
    emit(
        format_comparison(
            "§4.3 — scaling of verification cost with N",
            [
                ComparisonRow(
                    f"N={n}: scalable vs pairwise tests",
                    f"{results[n].pairwise_tests_modeled:,}",
                    f"{results[n].scalable_tests:,}",
                )
                for n in sorted(results)
            ],
        )
    )
    # Pairwise is quadratic: 8x the instances, 64x the tests.
    pairwise_ratio = (
        results[800].pairwise_tests_modeled / results[100].pairwise_tests_modeled
    )
    assert pairwise_ratio > 60
    # Scalable grows sub-quadratically (roughly linear in instances, and
    # bounded by the occupied host count once groups are full).
    scalable_ratio = results[800].scalable_tests / results[100].scalable_tests
    assert scalable_ratio < pairwise_ratio / 2
    assert results[800].scalable_tests <= 800
