"""Adversarial instance-launching strategies and attack campaigns (§5.2)."""

from repro.core.attack.campaign import ColocationCampaign, CoverageResult
from repro.core.attack.census import CensusResult, estimate_cluster_size
from repro.core.attack.locator import (
    LocatorResult,
    TargetVictimLocator,
    probe_latency_threshold,
)
from repro.core.attack.planner import (
    AttackPlanner,
    LaunchSchedule,
    PolicyModel,
    SchedulePrediction,
)
from repro.core.attack.residency import ResidencyMaintainer, ResidencyReport
from repro.core.attack.strategies import (
    LaunchOutcome,
    naive_launch,
    optimized_launch,
)
from repro.core.attack.targeting import VictimProfile, multi_account_footprint
from repro.core.attack.tracking import FingerprintHistory, HostTracker

__all__ = [
    "ColocationCampaign",
    "CoverageResult",
    "CensusResult",
    "estimate_cluster_size",
    "LocatorResult",
    "TargetVictimLocator",
    "probe_latency_threshold",
    "AttackPlanner",
    "LaunchSchedule",
    "PolicyModel",
    "SchedulePrediction",
    "ResidencyMaintainer",
    "ResidencyReport",
    "LaunchOutcome",
    "naive_launch",
    "optimized_launch",
    "VictimProfile",
    "multi_account_footprint",
    "FingerprintHistory",
    "HostTracker",
]
