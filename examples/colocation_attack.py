#!/usr/bin/env python3
"""End-to-end co-location attack: naive vs. optimized launching (§5.2).

Account 1 attacks a login-style victim service owned by Account 2 in
us-east1.  The naive strategy launches thousands of instances from cold
services and lands on zero victim hosts; the optimized strategy primes its
services hot at a 10-minute interval, spreads over helper hosts, and
co-locates with essentially every victim instance — for about the price of
a pizza.

Run:  python examples/colocation_attack.py [region]
"""

import sys

from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.strategies import naive_launch, optimized_launch
from repro.experiments.base import default_env


def attack(region: str, strategy_name: str) -> None:
    env = default_env(region, seed=42)
    strategy = {
        "naive": lambda c: naive_launch(c, n_services=6, instances_per_service=800),
        "optimized": lambda c: optimized_launch(
            c, n_services=6, launches=6, instances_per_service=800
        ),
    }[strategy_name]

    campaign = ColocationCampaign(
        attacker=env.attacker,
        victim=env.victim("account-2"),
        strategy=strategy,
    )
    result = campaign.run(n_victim_instances=100, victim_service_name="login")

    print(f"--- {strategy_name} strategy in {region} ---")
    print(f"  attacker occupies {result.attacker_hosts} hosts at once")
    print(f"  victim runs on {result.victim_hosts} hosts")
    print(f"  shared hosts: {result.shared_hosts}")
    print(f"  victim instance coverage: {100 * result.coverage:.1f}%")
    print(f"  attacker bill: ${result.attacker_cost_usd:.2f}")
    print(
        f"  verification: {result.verification.n_tests} covert-channel tests, "
        f"{result.verification.busy_seconds / 60:.1f} simulated minutes"
    )
    print()


def main() -> None:
    region = sys.argv[1] if len(sys.argv) > 1 else "us-east1"
    attack(region, "naive")
    attack(region, "optimized")


if __name__ == "__main__":
    main()
