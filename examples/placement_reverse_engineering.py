#!/usr/bin/env python3
"""Reverse engineering a FaaS placement policy from the outside (§5.1).

Replays the paper's Experiments 1-4 against the simulated platform using
only the black-box client API, printing the observation each experiment
supports:

  1. instance distribution over hosts (near-uniform, ~75 base hosts);
  2. idle-instance termination (gradual, ~2-12 minutes);
  3. footprint stability across cold launches (base hosts per account);
  4. helper-host recruitment for hot services (short launch intervals).

Run:  python examples/placement_reverse_engineering.py
"""

from collections import Counter

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env


def footprint(client, name, n=800):
    handles = client.connect(name, n)
    return {fp for _h, fp in fingerprint_gen1_instances(handles, p_boot=1.0)}


def experiment_1(env) -> None:
    client = env.attacker
    name = client.deploy(ServiceConfig(name="exp1", max_instances=800))
    handles = client.connect(name, 800)
    tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
    counts = Counter(fp for _h, fp in tagged)
    per_host = Counter(counts.values())
    print("[Exp 1] 800 instances of one service:")
    print(f"  apparent hosts: {len(counts)}")
    print(f"  instances-per-host histogram: {dict(sorted(per_host.items()))}")


def experiment_2_idle(env) -> None:
    client = env.attacker
    name = client.deploy(ServiceConfig(name="exp2", max_instances=800))
    handles = client.connect(name, 800)
    client.disconnect(name)
    print("[Exp 1b] idle instances after disconnecting:")
    elapsed = 0.0
    for step_minutes in (2, 4, 6, 8, 10, 12, 14):
        client.wait(step_minutes * units.MINUTE - elapsed)
        elapsed = step_minutes * units.MINUTE
        alive = sum(h.alive for h in handles)
        print(f"  t={step_minutes:>2} min: {alive:>3} alive")


def experiment_3_base_hosts(env) -> None:
    client = env.attacker
    name = client.deploy(ServiceConfig(name="exp3", max_instances=800))
    cumulative: set = set()
    print("[Exp 2] six cold launches, 45-minute interval:")
    for launch in range(6):
        fps = footprint(client, name)
        cumulative |= fps
        print(f"  launch {launch + 1}: {len(fps)} hosts, cumulative {len(cumulative)}")
        client.disconnect(name)
        client.wait(45 * units.MINUTE)
    print("  -> footprints overlap almost perfectly: per-account base hosts")


def experiment_4_helpers(env) -> None:
    client = env.attacker
    name = client.deploy(ServiceConfig(name="exp4", max_instances=800))
    cumulative: set = set()
    print("[Exp 4] six launches, 10-minute interval (hot service):")
    for launch in range(6):
        fps = footprint(client, name)
        cumulative |= fps
        print(f"  launch {launch + 1}: {len(fps)} hosts, cumulative {len(cumulative)}")
        client.disconnect(name)
        client.wait(10 * units.MINUTE)
    print("  -> the load balancer recruits helper hosts for hot services")


def main() -> None:
    env = default_env("us-east1", seed=11)
    experiment_1(env)
    env = default_env("us-east1", seed=12)
    experiment_2_idle(env)
    env = default_env("us-east1", seed=13)
    experiment_3_base_hosts(env)
    env = default_env("us-east1", seed=14)
    experiment_4_helpers(env)


if __name__ == "__main__":
    main()
