"""Request-workload models that drive autoscaling.

FaaS victims are web services whose instance counts follow their traffic
(paper §2.2): the orchestrator scales out on request surges and scales in
when demand declines.  These patterns generate the *desired concurrent
requests* over time; :class:`~repro.cloud.autoscaler.Autoscaler` turns them
into instance counts.
"""

from __future__ import annotations

import abc
import bisect
import math

import numpy as np

from repro import units


class RequestPattern(abc.ABC):
    """A time-varying request-concurrency demand."""

    @abc.abstractmethod
    def concurrency_at(self, elapsed_s: float) -> int:
        """Desired concurrent in-flight requests at ``elapsed_s``."""

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        """Vectorized demand samples at an array of elapsed times.

        Returns an ``int64`` array the same length as ``times_s``.  For
        deterministic patterns the series equals calling
        :meth:`concurrency_at` point by point (pinned by property tests);
        stochastic patterns (:class:`PoissonLoad`) instead draw the whole
        series as one batched RNG call, which is *not* pinned to the
        scalar call sequence.  The background-traffic engine
        (:mod:`repro.cloud.traffic`) precomputes entire tenant schedules
        through this method instead of per-tick Python calls.
        """
        times = np.asarray(times_s, dtype=np.float64)
        return np.fromiter(
            (self.concurrency_at(float(t)) for t in times),
            dtype=np.int64,
            count=times.shape[0],
        )


class ConstantLoad(RequestPattern):
    """A flat request load."""

    def __init__(self, concurrency: int) -> None:
        if concurrency < 0:
            raise ValueError(f"concurrency must be >= 0, got {concurrency}")
        self.concurrency = concurrency

    def concurrency_at(self, elapsed_s: float) -> int:
        return self.concurrency

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64)
        return np.full(times.shape[0], self.concurrency, dtype=np.int64)


class DiurnalLoad(RequestPattern):
    """A day/night sinusoid between ``trough`` and ``peak`` concurrency."""

    def __init__(
        self,
        trough: int,
        peak: int,
        period_s: float = 1 * units.DAY,
        phase_s: float = 0.0,
    ) -> None:
        if trough < 0:
            raise ValueError(f"trough must be >= 0, got {trough}")
        if trough > peak:
            raise ValueError(f"trough ({trough}) cannot exceed peak ({peak})")
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self.trough = trough
        self.peak = peak
        self.period_s = period_s
        self.phase_s = phase_s

    def concurrency_at(self, elapsed_s: float) -> int:
        phase = 2 * math.pi * (elapsed_s + self.phase_s) / self.period_s
        level = (1 - math.cos(phase)) / 2  # 0 at trough, 1 at peak
        return round(self.trough + (self.peak - self.trough) * level)

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64)
        phase = 2 * np.pi * (times + self.phase_s) / self.period_s
        level = (1 - np.cos(phase)) / 2
        # np.rint rounds half-to-even exactly like the scalar round().
        return np.rint(self.trough + (self.peak - self.trough) * level).astype(
            np.int64
        )


class BurstLoad(RequestPattern):
    """A flat base load with one rectangular traffic burst."""

    def __init__(
        self, base: int, burst: int, burst_start_s: float, burst_duration_s: float
    ) -> None:
        if base < 0:
            raise ValueError(f"base must be >= 0, got {base}")
        if burst < base:
            raise ValueError(f"burst ({burst}) must be >= base ({base})")
        self.base = base
        self.burst = burst
        self.burst_start_s = burst_start_s
        self.burst_duration_s = burst_duration_s

    def concurrency_at(self, elapsed_s: float) -> int:
        in_burst = (
            self.burst_start_s <= elapsed_s < self.burst_start_s + self.burst_duration_s
        )
        return self.burst if in_burst else self.base

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64)
        in_burst = (self.burst_start_s <= times) & (
            times < self.burst_start_s + self.burst_duration_s
        )
        return np.where(in_burst, self.burst, self.base).astype(np.int64)


class TraceLoad(RequestPattern):
    """Replay a recorded concurrency trace (step-wise, with hold-last).

    Parameters
    ----------
    times_s / concurrency:
        Sample times (ascending, seconds from trace start) and the
        concurrency observed at each.  Between samples the last value
        holds; before the first sample the first value holds; after the
        last, the last.
    """

    def __init__(self, times_s: list[float], concurrency: list[int]) -> None:
        if len(times_s) != len(concurrency):
            raise ValueError("times and concurrency must have equal length")
        if not times_s:
            raise ValueError("a trace needs at least one sample")
        if any(b < a for a, b in zip(times_s, times_s[1:])):
            raise ValueError("trace times must be ascending")
        if any(value < 0 for value in concurrency):
            raise ValueError("trace concurrency values must be >= 0")
        self.times_s = list(times_s)
        self.concurrency = list(concurrency)

    def concurrency_at(self, elapsed_s: float) -> int:
        # Hold-last lookup: the last sample at or before ``elapsed_s``
        # (clamped to the first sample before trace start).  ``bisect``
        # makes every query O(log n) where the old linear scan was O(n)
        # per call — and the autoscaler queries once per tick.
        index = max(0, bisect.bisect_right(self.times_s, elapsed_s) - 1)
        return self.concurrency[index]

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        times = np.asarray(times_s, dtype=np.float64)
        # searchsorted(side="right") is the vectorized twin of the scalar
        # bisect_right hold-last lookup (same duplicate/before-start rules).
        indices = np.maximum(
            0, np.searchsorted(self.times_s, times, side="right") - 1
        )
        return np.asarray(self.concurrency, dtype=np.int64)[indices]

    @classmethod
    def bursty(
        cls,
        duration_s: float,
        step_s: float,
        base: int,
        rng: np.random.Generator,
        burst_probability: float = 0.05,
        burst_scale: float = 4.0,
    ) -> "TraceLoad":
        """Generate a synthetic production-like trace: an AR(1) baseline
        with occasional multiplicative bursts."""
        steps = max(1, int(duration_s / step_s))
        times, values = [], []
        level = float(base)
        for i in range(steps):
            level = 0.8 * level + 0.2 * base + rng.normal(0, base * 0.1)
            value = max(0.0, level)
            if rng.random() < burst_probability:
                value *= burst_scale
            times.append(i * step_s)
            values.append(int(round(value)))
        return cls(times, values)


class PoissonLoad(RequestPattern):
    """Stochastic load: Little's-law concurrency with Poisson noise.

    With arrival rate ``lambda`` (requests/s) and mean service time ``S``,
    the mean concurrency is ``lambda * S``; per-step samples are Poisson
    around it, which makes autoscaling jitter realistically.
    """

    def __init__(
        self,
        arrivals_per_s: float,
        service_time_s: float,
        rng: np.random.Generator | None = None,
    ) -> None:
        if arrivals_per_s < 0 or service_time_s < 0:
            raise ValueError("arrival rate and service time must be >= 0")
        self.mean_concurrency = arrivals_per_s * service_time_s
        self._rng = rng if rng is not None else np.random.default_rng(0)

    def concurrency_at(self, elapsed_s: float) -> int:
        return int(self._rng.poisson(self.mean_concurrency))

    def concurrency_series(self, times_s: np.ndarray) -> np.ndarray:
        # One batched draw for the whole series.  NumPy does not guarantee
        # that a size-n poisson draw consumes the bit stream like n scalar
        # draws, so the series is deterministic per generator state but
        # deliberately not pinned to the scalar call sequence.
        times = np.asarray(times_s, dtype=np.float64)
        return self._rng.poisson(
            self.mean_concurrency, size=times.shape[0]
        ).astype(np.int64)
