"""The public, black-box FaaS client API.

This is the only interface attacker- and victim-side code uses, mirroring
the paper's threat model (§3): a standard platform user can deploy custom
services, open connections (driving autoscaling), run arbitrary programs
*inside* their containers, and observe nothing else.  Host identities never
cross this boundary — guest code must infer them, which is the point of the
paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

from repro.cloud.instance import ContainerInstance
from repro.cloud.orchestrator import Orchestrator
from repro.cloud.services import Service, ServiceConfig
from repro.errors import CloudError, LaunchError
from repro.faults import RetryPolicy
from repro.sandbox.base import Sandbox

T = TypeVar("T")


@dataclass(frozen=True)
class InstanceHandle:
    """Client-side handle to one container instance.

    The handle lets the user run guest code in the instance's sandbox and
    capture the SIGTERM notification, but exposes no placement information.
    """

    _instance: ContainerInstance

    @property
    def instance_id(self) -> str:
        """Opaque instance identifier."""
        return self._instance.instance_id

    @property
    def generation(self) -> str:
        """Execution environment generation ("gen1"/"gen2")."""
        return self._instance.sandbox.generation

    @property
    def alive(self) -> bool:
        """Whether the instance is still running (active or idle)."""
        return self._instance.alive

    def run(self, probe: Callable[[Sandbox], T]) -> T:
        """Execute ``probe(sandbox)`` inside the instance and return its result.

        Raises
        ------
        InstanceGoneError
            If the instance has been terminated.
        """
        return self._instance.run_probe(probe)

    @staticmethod
    def run_batch(
        handles: Sequence["InstanceHandle"],
        probe: Callable[[list[Sandbox]], T],
    ) -> list[tuple[list["InstanceHandle"], T]]:
        """Run ``probe`` once per physical host over that host's sandboxes.

        Engine-side plumbing for batched covert-channel physics: handles
        are grouped by their (hidden) placement, preserving input order
        within each group, and ``probe`` receives each group's sandbox
        list in one call — which is what lets the vectorized CTest engine
        issue one observation call per *host* per test window instead of
        one per instance per round.  Returns ``(handles, result)`` pairs
        in first-appearance order of the hosts.

        The grouping key is exactly the co-location ground truth the
        attack exists to infer, so results must only feed simulator-side
        shared-hardware physics (the covert channel), never attacker
        logic.  Every handle's liveness is checked — in input order,
        before any probe runs — with the same gate as :meth:`run`, so a
        terminated instance raises :class:`InstanceGoneError` before any
        host observes anything.

        Raises
        ------
        InstanceGoneError
            If any instance has been terminated.
        """
        groups: dict[str, list[InstanceHandle]] = {}
        for handle in handles:
            handle._instance.require_alive()
            groups.setdefault(handle._instance.host_id, []).append(handle)
        return [
            (members, probe([h._instance.sandbox for h in members]))
            for members in groups.values()
        ]

    def on_sigterm(self, callback: Callable[[float], None]) -> None:
        """Register a callback for the orchestrator's SIGTERM signal.

        The callback receives the wall-clock time of the signal; the paper's
        idle-termination experiment uses this to report termination times to
        a collection server (Fig. 6).
        """
        self._instance.on_sigterm = callback


class FaaSClient:
    """A platform user's view of one region of the FaaS platform.

    Parameters
    ----------
    orchestrator:
        The region's orchestrator (the platform side).
    account_id:
        The account this client authenticates as; it must already be
        registered with the orchestrator.
    retry_policy:
        Optional client-side launch-retry discipline: when set, a
        ``connect`` that fails with :class:`LaunchError` (the platform
        exhausted its own per-instance retries) waits out the backoff and
        re-requests the whole target.  ``None`` (the default) propagates
        the error immediately — the historical behavior.
    """

    def __init__(
        self,
        orchestrator: Orchestrator,
        account_id: str,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        if account_id not in orchestrator.accounts:
            raise CloudError(f"account {account_id!r} is not registered")
        self._orchestrator = orchestrator
        self.account_id = account_id
        self.retry_policy = retry_policy
        self._services: dict[str, Service] = {}

    @property
    def region(self) -> str:
        """Region name this client talks to."""
        return self._orchestrator.datacenter.profile.name

    def now(self) -> float:
        """Current wall-clock time (an unprivileged user can always tell time)."""
        return self._orchestrator.clock.now()

    def wait(self, seconds: float) -> None:
        """Let wall time pass (the user sleeps between launches)."""
        if seconds > 0:
            self._orchestrator.clock.sleep(seconds)

    @property
    def max_instances_quota(self) -> int:
        """This account's per-service instance quota (new accounts are low)."""
        return self._orchestrator.accounts[self.account_id].max_instances_per_service

    # ------------------------------------------------------------------
    # Service management
    # ------------------------------------------------------------------
    def deploy(self, config: ServiceConfig) -> str:
        """Deploy a service; returns its name for later calls."""
        service = self._orchestrator.deploy_service(self.account_id, config)
        self._services[config.name] = service
        return config.name

    def rebuild_image(self, service_name: str) -> None:
        """Rebuild the service's container image from scratch."""
        self._orchestrator.rebuild_image(self._service(service_name))

    def service_names(self) -> list[str]:
        """Names of services deployed through this client."""
        return sorted(self._services)

    # ------------------------------------------------------------------
    # Scaling
    # ------------------------------------------------------------------
    def connect(self, service_name: str, n_connections: int) -> list[InstanceHandle]:
        """Open ``n_connections`` connections, forcing that many instances.

        Returns handles to the instances serving the connections.  With a
        ``retry_policy``, platform-side launch failures are retried
        (already-launched instances are reused, so a retry only asks for
        the remainder).
        """
        service = self._service(service_name)
        attempt = 0
        while True:
            try:
                instances = self._orchestrator.connect(service, n_connections)
                break
            except LaunchError:
                policy = self.retry_policy
                if policy is None or attempt >= policy.max_retries:
                    raise
                self.wait(policy.backoff(attempt))
                attempt += 1
        return [InstanceHandle(instance) for instance in instances]

    def disconnect(self, service_name: str) -> None:
        """Close all connections; instances idle out and are later reaped."""
        self._orchestrator.disconnect(self._service(service_name))

    def kill(self, service_name: str) -> None:
        """Force-terminate all instances of the service immediately."""
        self._orchestrator.kill_service(self._service(service_name))

    def invoke(self, service_name: str, processing_seconds: float = 0.05) -> None:
        """Send one request to the service's public interface.

        The platform routes it to an instance, which executes for
        ``processing_seconds``.  The caller learns nothing about placement
        — but a co-located attacker instance can observe the activity.
        """
        self._orchestrator.route_request(
            self._service(service_name), processing_seconds
        )

    def probe(self, qualified_name: str, processing_seconds: float = 0.05) -> float:
        """Time one request to *any* service's public URL.

        ``qualified_name`` is the public address (``"account/service"``)
        — no ownership required, so this works against another tenant's
        service.  This is the uncontrolled-victim surface of the threat
        model: the victim is probe-able (anyone can time its responses)
        but not instrumentable (no guest code runs inside it).  Returns
        the observed response latency in seconds; the wait is charged to
        wall time.
        """
        return self._orchestrator.probe_service(qualified_name, processing_seconds)

    # ------------------------------------------------------------------
    # Billing
    # ------------------------------------------------------------------
    @property
    def cost_usd(self) -> float:
        """Accumulated bill for this account, including accruing activity."""
        return self._orchestrator.account_cost_usd(self.account_id)

    def reset_billing(self) -> None:
        """Zero the account's billing meter (between experiment runs)."""
        self._orchestrator.accounts[self.account_id].billing.reset()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _service(self, name: str) -> Service:
        try:
            return self._services[name]
        except KeyError:
            raise CloudError(
                f"service {name!r} was not deployed by this client"
            ) from None
