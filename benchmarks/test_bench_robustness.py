"""Robustness: the headline reproduction numbers across random seeds.

Every other bench fixes its seed.  This one re-runs the headline metrics
over several simulated "days" (seeds) and asserts the reproduction bands
hold for every one of them — the calibration is a property of the model,
not of a lucky draw.
"""

import numpy as np

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.attack.strategies import optimized_launch
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.experiments.base import default_env
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

SEEDS = (1, 7, 42, 1337, 9001)


def one_seed(seed: int) -> dict:
    env = default_env("us-east1", seed=seed)
    client = env.attacker
    service = client.deploy(ServiceConfig(name="robust", max_instances=800))
    handles = client.connect(service, 800)
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    fmi = pair_confusion({h.instance_id: fp for h, fp in pairs}, truth).fmi
    hosts = len(set(truth.values()))
    client.disconnect(service)
    client.wait(45 * 60)

    # Fresh environment for the attack (independent of the probe launch).
    attack_env = default_env("us-east1", seed=seed + 10_000)
    outcome = optimized_launch(attack_env.attacker)
    attacker_hosts = {
        attack_env.orchestrator.true_host_of(h.instance_id)
        for h in outcome.handles
        if h.alive
    }
    victim = attack_env.victim("account-2")
    victim_service = victim.deploy(ServiceConfig(name="victim"))
    victim_handles = victim.connect(victim_service, 100)
    coverage = sum(
        1
        for h in victim_handles
        if attack_env.orchestrator.true_host_of(h.instance_id) in attacker_hosts
    ) / len(victim_handles)
    return {
        "fmi": fmi,
        "exp1_hosts": hosts,
        "attack_hosts": len(attacker_hosts),
        "coverage": coverage,
        "cost": outcome.cost_usd,
    }


def test_headline_numbers_across_seeds(benchmark, emit):
    results = run_once(benchmark, lambda: {s: one_seed(s) for s in SEEDS})

    emit(
        format_series(
            "Robustness — headline metrics per seed (us-east1)",
            ("seed", "fingerprint_FMI", "exp1_hosts", "attack_hosts", "coverage", "cost_usd"),
            [
                (s, r["fmi"], r["exp1_hosts"], r["attack_hosts"], r["coverage"], r["cost"])
                for s, r in results.items()
            ],
        )
    )

    for seed, r in results.items():
        assert r["fmi"] > 0.999, (seed, r)
        assert 70 <= r["exp1_hosts"] <= 80, (seed, r)
        assert 270 <= r["attack_hosts"] <= 340, (seed, r)
        assert r["coverage"] > 0.9, (seed, r)
        assert 15 < r["cost"] < 40, (seed, r)

    coverages = [r["coverage"] for r in results.values()]
    assert float(np.std(coverages)) < 0.1, "coverage must be stable across days"
