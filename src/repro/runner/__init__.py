"""Parallel experiment runner: process-pool fan-out plus cell caching.

Experiment drivers decompose their work into independent ``(config, seed)``
cells (:class:`CellSpec`), hand them to :func:`run_cells`, and get back
:class:`CellResult` values in order.  Execution policy — worker count,
cache reads/writes, where the cache lives — is a :class:`RunnerConfig`,
threaded through from the CLI's ``--jobs`` / ``--no-cache`` flags or the
benchmark harness.

Cells that declare an :class:`EnvSpec` additionally opt into warm-world
forking (:mod:`repro.runner.worldcache`): the first cell to need a
simulated world builds it and a :class:`WorldSnapshot` checkpoints it;
every sibling needing the same world forks the checkpoint instead of
rebuilding — byte-identically.
"""

from repro.errors import CellExecutionError
from repro.runner.cache import CACHE_DIR_ENV, CellCache, default_cache_dir
from repro.runner.cellspec import (
    CellResult,
    CellSpec,
    CellSpecError,
    cache_key,
    canonicalize,
)
from repro.runner.pool import RunnerConfig, RunStats, run_cells
from repro.runner.worldcache import (
    DEFAULT_WORLD_CACHE_SIZE,
    WORLD_CACHE_SIZE_ENV,
    EnvSpec,
    WorldCache,
    WorldSnapshot,
    current_world_cache,
    process_world_cache,
    reset_process_world_cache,
    world_cache_context,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CellCache",
    "CellExecutionError",
    "CellResult",
    "CellSpec",
    "CellSpecError",
    "DEFAULT_WORLD_CACHE_SIZE",
    "EnvSpec",
    "RunStats",
    "RunnerConfig",
    "WORLD_CACHE_SIZE_ENV",
    "WorldCache",
    "WorldSnapshot",
    "cache_key",
    "canonicalize",
    "current_world_cache",
    "default_cache_dir",
    "process_world_cache",
    "reset_process_world_cache",
    "run_cells",
    "world_cache_context",
]
