"""A datacenter: host fleet, serving pool, and placement shards.

The datacenter owns the physical substrate.  Its serving pool (the hosts
currently accepting new FaaS instances) slowly *rotates* through the fleet,
which is why a census across many launches keeps discovering new hosts while
any single moment shows far fewer (paper Fig. 12).  The serving pool is
partitioned into fixed *shards*; an account's base hosts are its shard
(Observations 3-4).
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cloud.topology import RegionProfile
from repro.errors import CloudError
from repro.hardware.host import HostFleetConfig, PhysicalHost, build_fleet
from repro.simtime.clock import SimClock


class DataCenter:
    """One region's worth of physical hosts plus placement structure.

    Parameters
    ----------
    profile:
        The region's calibration profile.
    clock:
        Shared simulated clock (drives serving-pool rotation).
    seed:
        Seed for fleet synthesis and rotation; fix it for reproducibility.
    """

    def __init__(self, profile: RegionProfile, clock: SimClock, seed: int = 0) -> None:
        self.profile = profile
        self.clock = clock
        self._rng = np.random.default_rng(seed)
        fleet_config = HostFleetConfig(n_hosts=profile.n_hosts)
        self.hosts: list[PhysicalHost] = build_fleet(
            fleet_config, clock.now(), self._rng, id_prefix=profile.name
        )
        self.hosts_by_id: dict[str, PhysicalHost] = {
            host.host_id: host for host in self.hosts
        }

        all_ids = [host.host_id for host in self.hosts]
        pool_idx = self._rng.choice(
            len(all_ids), size=profile.active_hosts, replace=False
        )
        self._serving_pool: list[str] = [all_ids[i] for i in pool_idx]
        self._rotated_out: list[str] = [
            host_id for host_id in all_ids if host_id not in set(self._serving_pool)
        ]
        # Shards are fixed at the initial pool membership: an account's base
        # hosts stay pinned even if they later rotate out of the pool.
        self._shards: list[list[str]] = [
            self._serving_pool[i * profile.shard_size : (i + 1) * profile.shard_size]
            for i in range(profile.n_shards)
        ]
        self._last_rotation = clock.now()

    # ------------------------------------------------------------------
    # Serving pool and rotation
    # ------------------------------------------------------------------
    def serving_pool(self) -> list[str]:
        """Current serving-pool host ids (rotates over time)."""
        self._maybe_rotate()
        return list(self._serving_pool)

    def _maybe_rotate(self) -> None:
        now = self.clock.now()
        period = self.profile.rotation_period
        while now - self._last_rotation >= period:
            self._last_rotation += period
            self._rotate_once()

    def _rotate_once(self) -> None:
        swap = int(round(self.profile.rotation_fraction * len(self._serving_pool)))
        swap = min(swap, len(self._rotated_out))
        if swap <= 0:
            return
        out_idx = self._rng.choice(len(self._serving_pool), size=swap, replace=False)
        in_idx = self._rng.choice(len(self._rotated_out), size=swap, replace=False)
        # Keep the swapped ids in RNG draw order, not set order: set iteration
        # follows string hashing, which varies with PYTHONHASHSEED and would
        # make the pool layout (and every later draw over it) irreproducible
        # across interpreter invocations.
        out_ids = [self._serving_pool[i] for i in out_idx]
        in_ids = [self._rotated_out[i] for i in in_idx]
        out_set = set(out_ids)
        in_set = set(in_ids)
        self._serving_pool = [h for h in self._serving_pool if h not in out_set]
        self._serving_pool.extend(in_ids)
        self._rotated_out = [h for h in self._rotated_out if h not in in_set]
        self._rotated_out.extend(out_ids)

    # ------------------------------------------------------------------
    # Shards and base-host assignment
    # ------------------------------------------------------------------
    def shard_hosts(self, shard_index: int) -> list[str]:
        """Host ids of one placement shard."""
        if not 0 <= shard_index < len(self._shards):
            raise CloudError(
                f"shard {shard_index} out of range (region has {len(self._shards)})"
            )
        return list(self._shards[shard_index])

    def shard_for_account(self, account_id: str) -> int:
        """Map an account to its placement shard.

        Evaluation accounts are pinned by the region profile's placement
        plan; any other account hashes deterministically.
        """
        pinned = self.profile.plan.account_shards.get(account_id)
        if pinned is not None:
            return pinned % len(self._shards)
        digest = hashlib.sha256(
            f"{self.profile.name}:{account_id}".encode()
        ).digest()
        return int.from_bytes(digest[:4], "big") % len(self._shards)

    def dynamism_for_account(self, account_id: str) -> float:
        """Per-account probability of scattering off base hosts."""
        if not self.profile.dynamic_placement:
            return 0.0
        return self.profile.plan.account_dynamism.get(
            account_id, self.profile.default_dynamism
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def host(self, host_id: str) -> PhysicalHost:
        """Return a host by id (simulator-internal)."""
        try:
            return self.hosts_by_id[host_id]
        except KeyError:
            raise CloudError(f"unknown host {host_id!r}") from None

    @property
    def rng(self) -> np.random.Generator:
        """The datacenter's randomness source (placement, rotation)."""
        return self._rng
