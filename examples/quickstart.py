#!/usr/bin/env python3
"""Quickstart: fingerprint hosts and verify co-location on a simulated FaaS.

This walks the paper's core loop in ~40 lines of API calls:

1. stand up a simulated Cloud Run-style region;
2. deploy a service and launch container instances;
3. fingerprint each instance's physical host through the TSC (Gen 1);
4. verify the fingerprint groups with the scalable covert-channel method;
5. compare against the simulator's ground truth.

Run:  python examples/quickstart.py
"""

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env


def main() -> None:
    # A fresh simulated us-east1 with three registered accounts.
    env = default_env("us-east1", seed=7)
    client = env.attacker

    # Deploy a service and force 200 concurrent instances via connections.
    service = client.deploy(ServiceConfig(name="quickstart", max_instances=400))
    handles = client.connect(service, 200)
    print(f"launched {len(handles)} instances in {client.region}")

    # Gen 1 fingerprint: (CPU model, boot time derived from rdtsc).
    tagged_pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    fingerprints = {fp for _h, fp in tagged_pairs}
    print(f"observed {len(fingerprints)} apparent hosts, e.g. {next(iter(fingerprints))}")

    # Verify co-location with the scalable group-testing method (§4.3).
    tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in tagged_pairs]
    channel = RngCovertChannel()
    report = ScalableVerifier(channel).verify(tagged)
    print(
        f"verified {report.n_hosts} hosts with {report.n_tests} covert-channel "
        f"tests in {report.busy_seconds:.0f} simulated seconds "
        f"(pairwise would need {len(handles) * (len(handles) - 1) // 2})"
    )

    # Score the fingerprints against the covert-channel ground truth.
    predicted = {h.instance_id: fp for h, fp in tagged_pairs}
    truth = report.cluster_index()
    confusion = pair_confusion(predicted, truth)
    print(
        f"fingerprint quality: FMI={confusion.fmi:.4f} "
        f"precision={confusion.precision:.4f} recall={confusion.recall:.4f}"
    )

    # And against the simulator's oracle (only possible in simulation).
    oracle = {
        h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles
    }
    oracle_confusion = pair_confusion(truth, oracle)
    print(
        f"verification vs oracle: precision={oracle_confusion.precision:.4f} "
        f"recall={oracle_confusion.recall:.4f}"
    )

    client.disconnect(service)
    print(f"total bill: ${client.cost_usd:.4f}")


if __name__ == "__main__":
    main()
