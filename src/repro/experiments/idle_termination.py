"""Figure 6: idle-instance termination behavior (Experiment 1, part 2).

Launch many instances, disconnect from all of them, and record when the
orchestrator terminates each one by capturing SIGTERM.

Paper reference: idle instances are preserved for the first ~2 minutes,
then gradually terminated; practically all are gone ~12 minutes after
disconnecting (the documented bound is 15 minutes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.services import ServiceConfig
from repro.experiments.base import default_env

PAPER_GRACE_MINUTES = 2.0
PAPER_ALL_GONE_MINUTES = 12.0


@dataclass(frozen=True)
class IdleTerminationConfig:
    """Configuration for the Fig. 6 experiment."""

    region: str = "us-east1"
    instances: int = 800
    observe_minutes: float = 16.0
    sample_every_s: float = 30.0
    seed: int = 400


@dataclass
class IdleTerminationResult:
    """Outcome of the Fig. 6 experiment."""

    #: ``(minutes since disconnect, idle instances remaining)`` series.
    series: list[tuple[float, int]] = field(default_factory=list)
    termination_times_min: list[float] = field(default_factory=list)
    instances: int = 0

    @property
    def remaining_at(self) -> dict[float, int]:
        return {t: n for t, n in self.series}

    def remaining_after(self, minutes: float) -> int:
        """Idle instances still alive ``minutes`` after disconnecting."""
        remaining = self.instances
        for t, n in self.series:
            if t <= minutes:
                remaining = n
        return remaining


def run(config: IdleTerminationConfig = IdleTerminationConfig()) -> IdleTerminationResult:
    """Run the Fig. 6 idle-termination experiment."""
    env = default_env(config.region, seed=config.seed)
    client = env.attacker
    service = client.deploy(
        ServiceConfig(name="idle-study", max_instances=max(100, config.instances))
    )
    handles = client.connect(service, config.instances)

    disconnect_time = client.now()
    terminations: list[float] = []
    for handle in handles:
        handle.on_sigterm(lambda when: terminations.append(when))
    client.disconnect(service)

    result = IdleTerminationResult(instances=len(handles))
    elapsed = 0.0
    horizon = config.observe_minutes * units.MINUTE
    result.series.append((0.0, len(handles)))
    while elapsed < horizon:
        client.wait(config.sample_every_s)
        elapsed += config.sample_every_s
        remaining = len(handles) - len(terminations)
        result.series.append((elapsed / units.MINUTE, remaining))
    result.termination_times_min = sorted(
        (when - disconnect_time) / units.MINUTE for when in terminations
    )
    return result
