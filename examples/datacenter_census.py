#!/usr/bin/env python3
"""Measuring the size of a FaaS datacenter from the outside (§5.2, Fig. 12).

Uses services from multiple accounts (each starting from its own base-host
set) primed with the optimized launching pattern, and counts cumulative
unique apparent hosts until the growth flattens.

Run:  python examples/datacenter_census.py [region]
"""

import sys

from repro.core.attack.census import estimate_cluster_size
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import VICTIM_ACCOUNTS, default_env


def main() -> None:
    region = sys.argv[1] if len(sys.argv) > 1 else "us-west1"
    env = default_env(region, seed=31)
    clients = [env.attacker] + [env.victim(a) for a in VICTIM_ACCOUNTS]

    print(f"censusing {region} with 24 services across 3 accounts...")
    result = estimate_cluster_size(
        clients,
        services_per_account=8,
        launches_per_service=4,
        instances_per_launch=800,
    )

    print("cumulative unique apparent hosts (every 8th launch):")
    for i in range(7, result.n_launches, 8):
        print(f"  after launch {i + 1:>2}: {result.cumulative_unique[i]}")
    print(f"estimated cluster size: {result.total_unique} hosts")

    # How much of that can one account hold at once?
    attack_env = default_env(region, seed=32)
    outcome = optimized_launch(attack_env.attacker)
    share = len(outcome.apparent_hosts) / result.total_unique
    print(
        f"a 6-service optimized attack occupies {len(outcome.apparent_hosts)} hosts "
        f"at once = {100 * share:.0f}% of the census, for ${outcome.cost_usd:.2f}"
    )


if __name__ == "__main__":
    main()
