"""Golden-trace scenarios and their checked-in canonical JSONL traces."""
