"""Figure 11a: victim instance coverage vs. number of victim instances.

Paper (optimized strategy, Small victims): coverage is high everywhere and
essentially independent of the victim fleet size — us-east1 97.7%/99.7%,
us-central1 61.3%/90.0%, us-west1 100%/100% (Accounts 2/3 at 100
instances).
"""

import numpy as np

from repro.experiments import coverage as cov
from repro.experiments.report import format_series, pct

from benchmarks.conftest import run_once

CONFIG = cov.MatrixConfig(
    victim_counts=(20, 50, 100, 200),
    repetitions=2,  # paper: 3
)


def test_fig11a_victim_count_sweep(benchmark, emit, runner):
    cells = run_once(benchmark, lambda: cov.run_matrix(CONFIG, runner=runner))

    rows = []
    for (region, account, n_victims, _size), cell in sorted(cells.items()):
        paper = cov.PAPER_OPTIMIZED_GEN1[(region, account)]
        rows.append((region, account, n_victims, pct(paper), pct(cell.mean)))
    emit(
        format_series(
            "Figure 11a — victim coverage vs #victim instances (paper col = 100-instance row)",
            ("region", "account", "victims", "paper", "measured"),
            rows,
        )
    )

    for (region, account, _n, _s), cell in cells.items():
        paper = cov.PAPER_OPTIMIZED_GEN1[(region, account)]
        assert abs(cell.mean - paper) < 0.2, (region, account, cell.mean, paper)

    # The number of victim instances has no significant influence.
    for region in CONFIG.regions:
        for account in CONFIG.victim_accounts:
            means = [
                cells[(region, account, n, "Small")].mean
                for n in CONFIG.victim_counts
            ]
            assert float(np.ptp(means)) < 0.25, (region, account, means)

    # Regional ordering: central (dynamic, huge) trails east and west.
    central = np.mean(
        [cells[("us-central1", a, 100, "Small")].mean for a in CONFIG.victim_accounts]
    )
    east = np.mean(
        [cells[("us-east1", a, 100, "Small")].mean for a in CONFIG.victim_accounts]
    )
    west = np.mean(
        [cells[("us-west1", a, 100, "Small")].mean for a in CONFIG.victim_accounts]
    )
    assert central < east <= 1.0
    assert central < west <= 1.0
