"""Figure 5: CDF of fingerprint expiration time.

Paper: drift is strongly linear (min |r| = 0.9997), most fingerprints last
days, and on average ~10% expire within about 2 days.
"""

from repro.experiments import expiration as exp
from repro.experiments.report import ComparisonRow, format_comparison, format_series

from benchmarks.conftest import run_once

CONFIG = exp.ExpirationConfig()
DAY_GRID = (0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0)


def test_fig05_expiration_cdf(benchmark, emit, runner):
    result = run_once(benchmark, lambda: exp.run(CONFIG, runner=runner))

    rows = []
    for region in result.regions:
        cdf = region.cdf(DAY_GRID)
        rows.extend(
            (region.region, day, fraction) for day, fraction in zip(DAY_GRID, cdf)
        )
    emit(
        format_series(
            "Figure 5 — CDF of fingerprint expiration time",
            ("region", "days", "fraction_expired"),
            rows,
        )
    )
    emit(
        format_comparison(
            "Figure 5 — headline numbers",
            [
                ComparisonRow("min |r| of drift fits", ">= 0.9997", f"{result.min_abs_r:.5f}"),
                ComparisonRow(
                    "avg days to 10% expired",
                    f"~{exp.PAPER_DAYS_TO_10PCT_EXPIRED:g}",
                    f"{result.mean_days_to_10pct_expired:.2f}",
                ),
            ],
        )
    )

    assert result.min_abs_r >= 0.999, "drift must be strongly linear"
    assert 0.5 < result.mean_days_to_10pct_expired < 6.0
    for region in result.regions:
        # Paper: most fingerprints survive multiple days.
        assert region.cdf((2.0,))[0] < 0.5
        assert region.n_histories >= 50  # paper: 66-79 per region
