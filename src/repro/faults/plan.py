"""Seeded, deterministic fault schedules for resilience testing.

Real co-location campaigns run against a noisy platform: launches fail or
stall, covert-channel tests flip verdicts under background contention, an
abuse monitor kills an instance mid-test, a worker process dies on one
experiment cell.  The simulator needs to *inject* those failures — and the
attack/experiment stack needs to *survive* them — without giving up the
reproducibility guarantees the runner depends on (serial vs. pooled runs
must stay byte-identical).

The core trick is that a :class:`FaultPlan` is **stateless**: every
decision is a pure function of ``(seed, site, token)`` hashed through
SHA-256, where the token names the event (an instance id plus attempt
number, a CTest batch slot, a cell cache key).  Two consequences:

* the same seed reproduces the same fault schedule exactly, regardless of
  execution order, process boundaries, or interleaving; and
* a *retry* of the same operation carries a new attempt number, so a
  bounded retry loop deterministically escapes transient faults.

Counters are the only mutable state, and they are advisory: they feed the
``[runner]`` / :class:`~repro.core.covert.ChannelStats` reporting, never a
decision.  (When a plan is pickled into a worker process the worker's
counter increments stay in the worker; parent-side accounting is derived
from structured results instead.)  Every increment is also mirrored to
the ambient :mod:`repro.telemetry` handle as a ``faults.*`` counter —
and because the runner merges each cell's telemetry back into the
parent, those counters *are* exhaustive under ``--jobs``, unlike the
plan's own in-process counters.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields, replace

from repro.errors import FaultSpecError
from repro.telemetry import current_telemetry

#: ``FaultSpec.parse`` aliases: short CLI-friendly names for spec fields.
_SPEC_ALIASES = {
    "launch": "launch_error_rate",
    "slow": "slow_launch_rate",
    "slow_seconds": "slow_launch_seconds",
    "ctest": "ctest_noise_rate",
    "death": "ctest_death_rate",
    "probe": "probe_noise_rate",
    "probe_seconds": "probe_noise_seconds",
    "cell": "cell_error_rate",
    "seed": "seed",
}


@dataclass(frozen=True)
class FaultSpec:
    """What to inject, how often, and under which seed.

    All rates are per-event probabilities in ``[0, 1]``; a rate of 0
    disables that fault site entirely.

    Attributes
    ----------
    launch_error_rate:
        Probability that one instance-launch attempt fails (retryable).
    slow_launch_rate / slow_launch_seconds:
        Probability that a successfully launched instance adds
        ``slow_launch_seconds`` of extra cold-start latency.
    ctest_noise_rate:
        Probability that one instance's verdict in one CTest is flipped
        (transient channel noise / background contention).
    ctest_death_rate:
        Probability that one instance dies mid-test (stops pressuring and
        reports nothing), as an abuse monitor or platform reap would cause.
    probe_noise_rate / probe_noise_seconds:
        Probability that one victim-latency probe response is delayed by
        ``probe_noise_seconds`` of unrelated platform noise (a routing
        hiccup, a GC pause in the victim) — the transient spikes the
        Target Victim Locator must filter out.
    cell_error_rate:
        Probability that one experiment-cell execution attempt raises.
    seed:
        Master seed of the schedule; same seed, same faults — everywhere.
    """

    launch_error_rate: float = 0.0
    slow_launch_rate: float = 0.0
    slow_launch_seconds: float = 5.0
    ctest_noise_rate: float = 0.0
    ctest_death_rate: float = 0.0
    probe_noise_rate: float = 0.0
    probe_noise_seconds: float = 0.25
    cell_error_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "launch_error_rate",
            "slow_launch_rate",
            "ctest_noise_rate",
            "ctest_death_rate",
            "probe_noise_rate",
            "cell_error_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_launch_seconds < 0.0:
            raise FaultSpecError(
                f"slow_launch_seconds must be >= 0, got {self.slow_launch_seconds}"
            )
        if self.probe_noise_seconds < 0.0:
            raise FaultSpecError(
                f"probe_noise_seconds must be >= 0, got {self.probe_noise_seconds}"
            )

    @property
    def enabled(self) -> bool:
        """Whether any fault site has a nonzero rate."""
        return any(
            getattr(self, name) > 0.0
            for name in (
                "launch_error_rate",
                "slow_launch_rate",
                "ctest_noise_rate",
                "ctest_death_rate",
                "probe_noise_rate",
                "cell_error_rate",
            )
        )

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse a ``key=value[,key=value...]`` spec string.

        Keys may be the short CLI aliases (``launch``, ``slow``,
        ``slow_seconds``, ``ctest``, ``death``, ``cell``, ``seed``) or the
        full field names.  Example: ``"launch=0.1,ctest=0.02,seed=7"``.
        """
        known = {f.name for f in fields(cls)}
        spec = cls()
        seen: set[str] = set()
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise FaultSpecError(
                    f"fault spec entry {part!r} is not of the form key=value"
                )
            name = _SPEC_ALIASES.get(key, key)
            if name not in known:
                raise FaultSpecError(
                    f"unknown fault spec key {key!r}; known: "
                    f"{', '.join(sorted(_SPEC_ALIASES))}"
                )
            if name in seen:
                raise FaultSpecError(f"duplicate fault spec key {key!r}")
            seen.add(name)
            try:
                parsed = int(value) if name == "seed" else float(value)
            except ValueError:
                raise FaultSpecError(
                    f"fault spec value for {key!r} is not a number: {value!r}"
                ) from None
            spec = replace(spec, **{name: parsed})
        return spec


@dataclass
class FaultCounters:
    """How many faults a plan injected (and retries it caused), per site."""

    launch_errors: int = 0
    launch_retries: int = 0
    slow_launches: int = 0
    ctest_noise: int = 0
    ctest_deaths: int = 0
    probe_noise: int = 0
    cell_errors: int = 0

    @property
    def total_injected(self) -> int:
        """All injected faults (retries are recovery, not injection)."""
        return (
            self.launch_errors
            + self.slow_launches
            + self.ctest_noise
            + self.ctest_deaths
            + self.probe_noise
            + self.cell_errors
        )

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        return (
            f"{self.total_injected} faults injected "
            f"(launch {self.launch_errors}, slow {self.slow_launches}, "
            f"ctest-noise {self.ctest_noise}, ctest-death {self.ctest_deaths}, "
            f"probe-noise {self.probe_noise}, cell {self.cell_errors}), "
            f"{self.launch_retries} launch retries"
        )


def hashed_uniform(seed: int, site: str, token: str) -> float:
    """A pure uniform ``[0, 1)`` draw for one named event.

    The draw is a SHA-256 hash of ``(seed, site, token)`` — no generator
    state — so the value depends only on the event's *name*, never on how
    many other draws happened first.  :class:`FaultPlan` decisions are
    built on this, and any subsystem that must stay deterministic under
    arbitrary event interleaving (e.g. background-traffic idle deadlines,
    :mod:`repro.cloud.traffic`) should draw from here rather than from a
    shared sequential RNG.
    """
    payload = f"{seed}|{site}|{token}".encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class FaultPlan:
    """Deterministic per-event fault decisions for one :class:`FaultSpec`.

    Every ``should``-style method hashes ``(seed, site, token)`` to a
    uniform draw in ``[0, 1)`` and compares it to the site's rate.  The
    plan itself holds no evolving randomness, so it can be pickled into
    worker processes and consulted in any order without changing the
    schedule.
    """

    def __init__(self, spec: FaultSpec | None = None) -> None:
        self.spec = spec if spec is not None else FaultSpec()
        self.counters = FaultCounters()

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Build a plan from a ``key=value,...`` spec string."""
        return cls(FaultSpec.parse(text))

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return self.spec.enabled

    # ------------------------------------------------------------------
    # The deterministic core
    # ------------------------------------------------------------------
    def uniform(self, site: str, token: str) -> float:
        """The plan's uniform ``[0, 1)`` draw for one named event."""
        return hashed_uniform(self.spec.seed, site, token)

    # ------------------------------------------------------------------
    # Site-specific decisions
    # ------------------------------------------------------------------
    def launch_fails(self, instance_id: str, attempt: int) -> bool:
        """Whether launch ``attempt`` (0-based) of an instance fails."""
        failed = (
            self.uniform("launch", f"{instance_id}#a{attempt}")
            < self.spec.launch_error_rate
        )
        if failed:
            self.counters.launch_errors += 1
            current_telemetry().count("faults.launch_errors")
        return failed

    def slow_launch_penalty(self, instance_id: str) -> float:
        """Extra cold-start seconds for one launched instance (0 if none)."""
        if self.uniform("slow-launch", instance_id) < self.spec.slow_launch_rate:
            self.counters.slow_launches += 1
            current_telemetry().count("faults.slow_launches")
            return self.spec.slow_launch_seconds
        return 0.0

    def ctest_noise(self, token: str) -> bool:
        """Whether one instance's verdict in one CTest is flipped."""
        flipped = self.uniform("ctest-noise", token) < self.spec.ctest_noise_rate
        if flipped:
            self.counters.ctest_noise += 1
            current_telemetry().count("faults.ctest_noise")
        return flipped

    def ctest_death_round(self, token: str, total_rounds: int) -> int | None:
        """The round at which an instance dies mid-test, or ``None``.

        The same draw that decides *whether* the instance dies also picks
        *when*: the sub-rate remainder maps uniformly onto the rounds.
        """
        rate = self.spec.ctest_death_rate
        draw = self.uniform("ctest-death", token)
        if rate <= 0.0 or draw >= rate:
            return None
        self.counters.ctest_deaths += 1
        current_telemetry().count("faults.ctest_deaths")
        return min(int(draw / rate * total_rounds), total_rounds - 1)

    def probe_delay_seconds(self, token: str) -> float:
        """Extra latency injected into one victim probe response (0 if none).

        The token should name the probe uniquely (service plus a probe
        sequence number), so a *re-probe* of the same measurement carries a
        fresh draw and a bounded retry loop escapes transient spikes.
        """
        if self.uniform("probe-noise", token) < self.spec.probe_noise_rate:
            self.counters.probe_noise += 1
            current_telemetry().count("faults.probe_noise")
            return self.spec.probe_noise_seconds
        return 0.0

    def cell_fails(self, cell_key: str, attempt: int) -> bool:
        """Whether execution ``attempt`` (0-based) of a cell raises."""
        failed = (
            self.uniform("cell", f"{cell_key}#a{attempt}")
            < self.spec.cell_error_rate
        )
        if failed:
            self.counters.cell_errors += 1
            current_telemetry().count("faults.cell_errors")
        return failed
