"""Property-based equivalence of the scalar and vectorized CTest engines.

For arbitrary placements, group shapes, thresholds, and fault-injected
mid-test deaths, twin worlds driven by the two engines must produce
identical :class:`~repro.core.covert.CTestResult` verdicts, identical
per-instance contention-hit counts, and identical sandbox RNG end states
— the engine-level byte-identity contract, explored randomly instead of
enumerated.
"""

from hypothesis import given, settings, strategies as st

from repro.cloud.services import ServiceConfig
from repro.core.covert import RngCovertChannel
from repro.experiments.base import default_env
from repro.faults import FaultPlan, FaultSpec

from tests.conftest import tiny_profile


@st.composite
def engine_cases(draw):
    seed = draw(st.integers(0, 60))
    n = draw(st.integers(2, 12))
    group_size = draw(st.integers(2, 5))
    threshold = draw(st.integers(2, 3))
    death_rate = draw(st.sampled_from([0.0, 0.2, 0.6]))
    total_rounds = draw(st.sampled_from([8, 31, 60]))
    return seed, n, group_size, threshold, death_rate, total_rounds


def run_world(vectorized, seed, n, group_size, threshold, death_rate, total_rounds):
    env = default_env(profile=tiny_profile(), seed=seed)
    client = env.attacker
    name = client.deploy(ServiceConfig(name="prop-engine"))
    handles = client.connect(name, n)
    channel = RngCovertChannel(
        total_rounds=total_rounds,
        required_rounds=(total_rounds + 1) // 2,
        fault_plan=FaultPlan(FaultSpec(ctest_death_rate=death_rate, seed=seed)),
        vectorized=vectorized,
    )
    groups = [handles[i : i + group_size] for i in range(0, n, group_size)]
    results = channel.ctest_batch(groups, threshold)
    return {
        "verdicts": [
            (tuple(h.instance_id for h in r.handles), r.positive) for r in results
        ],
        "hits": dict(channel._last_hits),
        "rng_states": {
            h.instance_id: h.run(lambda s: str(s._rng.bit_generator.state))
            for h in handles
        },
        "faults": channel.stats.faults_injected,
    }


@given(engine_cases())
@settings(max_examples=20, deadline=None)
def test_vectorized_engine_equals_scalar_loop(case):
    loop_world = run_world(False, *case)
    batched_world = run_world(True, *case)
    assert loop_world == batched_world
