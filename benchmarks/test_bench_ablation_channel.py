"""Ablation: covert-channel choice — RNG (paper) vs memory bus (prior work).

The paper builds its verification on RNG contention because background RNG
use is rare (<1% contention), while the memory bus — the channel prior
co-location studies used — is constantly exercised by ordinary tenants and
needs several seconds per test.  This bench verifies the same 800 instances
through both channels.
"""

from repro.analysis.metrics import pair_confusion
from repro.cloud.services import ServiceConfig
from repro.core.covert import MemoryBusCovertChannel, RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once


def verify_with(channel_cls):
    env = default_env("us-east1", seed=985)
    client = env.attacker
    service = client.deploy(ServiceConfig(name="channel", max_instances=800))
    handles = client.connect(service, 800)
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
    channel = channel_cls()
    report = ScalableVerifier(channel).verify(tagged)
    truth = {h.instance_id: env.orchestrator.true_host_of(h.instance_id) for h in handles}
    confusion = pair_confusion(report.cluster_index(), truth)
    return report, confusion


def test_ablation_covert_channel_choice(benchmark, emit):
    results = run_once(
        benchmark,
        lambda: {
            "rng": verify_with(RngCovertChannel),
            "memory_bus": verify_with(MemoryBusCovertChannel),
        },
    )

    emit(
        format_comparison(
            "Ablation — covert channel choice (verify 800 instances)",
            [
                ComparisonRow(
                    f"{name}: tests / minutes / FMI",
                    "-",
                    f"{report.n_tests} / {report.busy_seconds / 60:.1f} / "
                    f"{confusion.fmi:.4f}",
                )
                for name, (report, confusion) in results.items()
            ],
        )
    )

    rng_report, rng_confusion = results["rng"]
    bus_report, bus_confusion = results["memory_bus"]
    # Both channels verify correctly (the bus integrates longer)...
    assert rng_confusion.fmi > 0.999
    assert bus_confusion.fmi > 0.99
    # ...but the bus channel pays heavily in wall-clock time.
    assert bus_report.busy_seconds > 2.5 * rng_report.busy_seconds
