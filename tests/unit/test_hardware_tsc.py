"""Unit tests for the timestamp counter model."""

import pytest

from repro import units
from repro.errors import HardwareError
from repro.hardware.tsc import TimestampCounter


class TestTimestampCounter:
    def test_reads_zero_at_boot(self):
        tsc = TimestampCounter(boot_time=100.0, actual_frequency_hz=2e9)
        assert tsc.read(100.0) == 0

    def test_increments_at_actual_frequency(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9)
        assert tsc.read(1.0) == 2_000_000_000
        assert tsc.read(2.5) == 5_000_000_000

    def test_read_before_boot_rejected(self):
        tsc = TimestampCounter(boot_time=100.0, actual_frequency_hz=2e9)
        with pytest.raises(HardwareError):
            tsc.read(99.0)

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(HardwareError):
            TimestampCounter(boot_time=0.0, actual_frequency_hz=0.0)
        with pytest.raises(HardwareError):
            TimestampCounter(boot_time=0.0, actual_frequency_hz=-1.0)

    def test_uptime(self):
        tsc = TimestampCounter(boot_time=50.0, actual_frequency_hz=1e9)
        assert tsc.uptime(60.0) == 10.0

    def test_uptime_before_boot_rejected(self):
        tsc = TimestampCounter(boot_time=50.0, actual_frequency_hz=1e9)
        with pytest.raises(HardwareError):
            tsc.uptime(40.0)

    def test_guest_offset_equals_host_tsc_at_guest_boot(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9)
        assert tsc.offset_for_guest(10.0) == tsc.read(10.0)

    def test_offset_tsc_view_starts_at_zero(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9)
        guest_boot = 100.0
        offset = tsc.offset_for_guest(guest_boot)
        assert tsc.read(guest_boot) - offset == 0
        assert tsc.read(guest_boot + 1.0) - offset == 2_000_000_000

    def test_refined_frequency_rounds_to_1khz(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9 - 1_499.0)
        assert tsc.refined_frequency_hz() == 2e9 - 1_000.0

    def test_refined_frequency_rounds_down_small_error(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9 - 400.0)
        assert tsc.refined_frequency_hz() == 2e9

    def test_refined_frequency_custom_precision(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9 - 1_499.0)
        assert tsc.refined_frequency_hz(precision_hz=1.0) == 2e9 - 1_499.0

    def test_refined_frequency_rejects_bad_precision(self):
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2e9)
        with pytest.raises(HardwareError):
            tsc.refined_frequency_hz(precision_hz=0.0)

    def test_colocated_readers_see_identical_values(self):
        """Two guests on one host read the same counter (modulo offset)."""
        tsc = TimestampCounter(boot_time=0.0, actual_frequency_hz=2.2 * units.GHZ)
        assert tsc.read(500.0) == tsc.read(500.0)
