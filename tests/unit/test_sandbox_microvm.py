"""Unit tests for the Gen 2 (microVM) sandbox."""

import numpy as np
import pytest

from repro import units
from repro.sandbox.base import TscPolicy
from repro.sandbox.microvm import MicroVMSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def make_vm(host=None, clock=None, policy=TscPolicy.NATIVE, seed=5, sid="vm-1"):
    host = host or make_host()
    clock = clock or SimClock()
    vm = MicroVMSandbox(host, clock, np.random.default_rng(seed), sid, tsc_policy=policy)
    return vm, host, clock


class TestMicroVMSandbox:
    def test_generation_tag(self):
        vm, _h, _c = make_vm()
        assert vm.generation == "gen2"

    def test_tsc_offsetting_zeroes_counter_at_guest_boot(self):
        vm, _h, _c = make_vm()
        assert vm.rdtsc() == 0

    def test_guest_tsc_ticks_at_host_actual_rate(self):
        vm, host, clock = make_vm()
        clock.sleep(10.0)
        expected = 10.0 * host.tsc.actual_frequency_hz
        assert vm.rdtsc() == pytest.approx(expected, rel=1e-9)

    def test_boot_time_fingerprinting_fails_in_gen2(self):
        """Eq. 4.1 on a Gen 2 guest recovers the guest VM's boot time."""
        vm, host, clock = make_vm()
        clock.sleep(60.0)
        derived = clock.now() - vm.rdtsc() / host.cpu.reported_tsc_frequency_hz
        assert abs(derived - vm.boot_wall_time) < 1.0
        assert abs(derived - host.boot_time) > 1 * units.DAY

    def test_cpuid_is_virtualized(self):
        vm, host, _c = make_vm()
        assert vm.cpuid_model() != host.cpu.name
        assert vm.cpuid_model() == MicroVMSandbox.VIRTUALIZED_MODEL

    def test_kernel_exports_refined_host_frequency(self):
        vm, host, _c = make_vm()
        assert vm.kernel_tsc_khz() * 1e3 == host.tsc.refined_frequency_hz()

    def test_refined_frequency_has_1khz_precision(self):
        vm, _h, _c = make_vm()
        khz = vm.kernel_tsc_khz()
        assert khz == round(khz)

    def test_colocated_guests_read_identical_refined_frequency(self):
        """The Gen 2 fingerprint cannot produce false negatives."""
        host = make_host(epsilon_hz=3721.0)
        clock = SimClock()
        vm1, _, _ = make_vm(host, clock, seed=1, sid="a")
        clock.sleep(123.0)
        vm2, _, _ = make_vm(host, clock, seed=2, sid="b")
        assert vm1.kernel_tsc_khz() == vm2.kernel_tsc_khz()

    def test_different_guests_different_offsets(self):
        host = make_host()
        clock = SimClock()
        vm1, _, _ = make_vm(host, clock, sid="a")
        clock.sleep(100.0)
        vm2, _, _ = make_vm(host, clock, sid="b")
        # Same instant read, different boot offsets.
        assert vm1.rdtsc() != vm2.rdtsc()

    def test_proc_uptime_is_guest_relative(self):
        vm, _h, clock = make_vm()
        clock.sleep(7.0)
        assert vm.proc_uptime() == pytest.approx(7.0)


class TestMicroVMTscMitigation:
    def test_emulated_policy_masks_refined_frequency(self):
        host = make_host(epsilon_hz=5000.0)
        vm, _, _ = make_vm(host, policy=TscPolicy.EMULATED)
        assert vm.kernel_tsc_khz() * 1e3 == host.cpu.reported_tsc_frequency_hz

    def test_emulated_policy_tsc_ticks_at_reported_rate(self):
        host = make_host(epsilon_hz=5000.0)
        vm, _, clock = make_vm(host, policy=TscPolicy.EMULATED)
        clock.sleep(1.0)
        assert vm.rdtsc() == int(host.cpu.reported_tsc_frequency_hz)
