"""Unit tests for fingerprint data types and collection."""

import pytest

from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import (
    Gen1Fingerprint,
    Gen1Sample,
    Gen2Fingerprint,
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
    group_by_fingerprint,
)
from repro.errors import FingerprintError


class TestGen1Sample:
    def sample(self, tsc=2_000_000_000, wall=1000.0, freq=2e9):
        return Gen1Sample(
            cpu_model="Intel Xeon CPU @ 2.00GHz",
            tsc_value=tsc,
            wall_time=wall,
            reported_frequency_hz=freq,
        )

    def test_boot_time_equation(self):
        """Eq. 4.1: T_boot = T_w - tsc / f."""
        assert self.sample().boot_time() == pytest.approx(999.0)

    def test_fingerprint_rounds_boot_time(self):
        fp = self.sample(wall=1000.37).fingerprint(p_boot=1.0)
        assert fp.boot_time == 999.0

    def test_fingerprint_contains_model(self):
        fp = self.sample().fingerprint()
        assert fp.cpu_model == "Intel Xeon CPU @ 2.00GHz"


class TestGen1Fingerprint:
    def test_equality_within_precision(self):
        a = Gen1Fingerprint.from_boot_time("m", 100.2, 1.0)
        b = Gen1Fingerprint.from_boot_time("m", 100.4, 1.0)
        assert a == b

    def test_inequality_across_buckets(self):
        a = Gen1Fingerprint.from_boot_time("m", 100.2, 1.0)
        b = Gen1Fingerprint.from_boot_time("m", 101.2, 1.0)
        assert a != b

    def test_model_distinguishes(self):
        a = Gen1Fingerprint.from_boot_time("m1", 100.0, 1.0)
        b = Gen1Fingerprint.from_boot_time("m2", 100.0, 1.0)
        assert a != b

    def test_hashable(self):
        a = Gen1Fingerprint.from_boot_time("m", 100.2, 1.0)
        b = Gen1Fingerprint.from_boot_time("m", 100.4, 1.0)
        assert len({a, b}) == 1

    def test_precision_changes_bucketing(self):
        coarse = Gen1Fingerprint.from_boot_time("m", 104.0, 10.0)
        fine = Gen1Fingerprint.from_boot_time("m", 104.0, 1.0)
        assert coarse.boot_time == 100.0
        assert fine.boot_time == 104.0

    def test_invalid_precision_rejected(self):
        with pytest.raises(FingerprintError):
            Gen1Fingerprint.from_boot_time("m", 100.0, 0.0)


class TestGen2Fingerprint:
    def test_from_khz_rounds(self):
        assert Gen2Fingerprint.from_khz(1999998.6).tsc_khz == 1999999

    def test_equality(self):
        assert Gen2Fingerprint.from_khz(2e6) == Gen2Fingerprint.from_khz(2e6)


class TestCollection:
    def test_gen1_collection_per_instance(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(name, 8)
        tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
        assert len(tagged) == 8
        assert all(isinstance(fp, Gen1Fingerprint) for _h, fp in tagged)

    def test_colocated_instances_share_gen1_fingerprint(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(name, 20)
        tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
        orch = tiny_env.orchestrator
        by_host: dict[str, set] = {}
        for handle, fp in tagged:
            by_host.setdefault(orch.true_host_of(handle.instance_id), set()).add(fp)
        assert all(len(fps) == 1 for fps in by_host.values())

    def test_gen2_collection(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc2", generation="gen2"))
        handles = client.connect(name, 6)
        tagged = fingerprint_gen2_instances(handles)
        assert len(tagged) == 6
        assert all(isinstance(fp, Gen2Fingerprint) for _h, fp in tagged)

    def test_group_by_fingerprint(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="svc"))
        handles = client.connect(name, 10)
        tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
        groups = group_by_fingerprint(tagged)
        assert sum(len(g) for g in groups.values()) == 10
