"""A datacenter: host fleet, serving pool, and placement shards.

The datacenter owns the physical substrate.  Its serving pool (the hosts
currently accepting new FaaS instances) slowly *rotates* through the fleet,
which is why a census across many launches keeps discovering new hosts while
any single moment shows far fewer (paper Fig. 12).  The serving pool is
partitioned into fixed *shards*; an account's base hosts are its shard
(Observations 3-4).

Fleet-scalar state (pool membership, shard assignment, capacity and load
slots) lives in the columnar :class:`~repro.fleet.FleetStore`; the rich
:class:`~repro.hardware.host.PhysicalHost` objects keep only the non-scalar
hardware surfaces (CPU identity, TSC, RNG/memory-bus contention domains,
noise models).  Pool rotation and shard lookup are index operations, and
``serving_pool()``/``shard_hosts()`` return cached immutable tuples instead
of fresh list copies.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.cloud.platform import PlatformProfile
from repro.cloud.topology import RegionProfile
from repro.errors import CloudError
from repro.fleet import FleetStore, FleetView, HostHandle
from repro.hardware.host import HostFleetConfig, PhysicalHost, build_fleet
from repro.simtime.clock import SimClock


class DataCenter:
    """One region's worth of physical hosts plus placement structure.

    Parameters
    ----------
    profile:
        The region's calibration profile.
    clock:
        Shared simulated clock (drives serving-pool rotation).
    seed:
        Seed for fleet synthesis and rotation; fix it for reproducibility.
    platform:
        Optional :class:`~repro.cloud.platform.PlatformProfile`; its
        per-channel noise multipliers shape every host's contention
        domains.  ``None`` (and the neutral ``default`` profile) build a
        byte-identical fleet.
    """

    def __init__(
        self,
        profile: RegionProfile,
        clock: SimClock,
        seed: int = 0,
        platform: PlatformProfile | None = None,
    ) -> None:
        self.profile = profile
        self.clock = clock
        self.platform = platform
        self._rng = np.random.default_rng(seed)
        fleet_config = HostFleetConfig(
            n_hosts=profile.n_hosts,
            channel_noise=platform.channel_noise if platform is not None else (),
        )
        self.hosts: list[PhysicalHost] = build_fleet(
            fleet_config, clock.now(), self._rng, id_prefix=profile.name
        )
        self.hosts_by_id: dict[str, PhysicalHost] = {
            host.host_id: host for host in self.hosts
        }
        # The columnar store is authoritative for all per-host scalars from
        # here on; the synthesis values on PhysicalHost are only the seed.
        self.fleet = FleetStore(
            host_ids=[host.host_id for host in self.hosts],
            capacity_slots=[host.capacity_slots for host in self.hosts],
            problematic_timing=[host.problematic_timing for host in self.hosts],
        )
        self.fleet_view = FleetView(self.fleet)

        pool_idx = self._rng.choice(
            profile.n_hosts, size=profile.active_hosts, replace=False
        )
        self.fleet.set_pool(pool_idx)
        # Shards are fixed at the initial pool membership: an account's base
        # hosts stay pinned even if they later rotate out of the pool.
        self.fleet.assign_shards(profile.shard_size, profile.n_shards)
        self._last_rotation = clock.now()

    # ------------------------------------------------------------------
    # Serving pool and rotation
    # ------------------------------------------------------------------
    def serving_pool(self) -> tuple[str, ...]:
        """Current serving-pool host ids (rotates over time).

        Returns a cached immutable tuple; between rotations repeated calls
        are O(1).
        """
        self._maybe_rotate()
        return self.fleet_view.serving_pool_ids()

    def serving_pool_indices(self) -> np.ndarray:
        """Current serving-pool host indices in pool order (read-only)."""
        self._maybe_rotate()
        return self.fleet.pool_order

    def _maybe_rotate(self) -> None:
        now = self.clock.now()
        period = self.profile.rotation_period
        while now - self._last_rotation >= period:
            self._last_rotation += period
            self._rotate_once()

    def _rotate_once(self) -> None:
        pool_size = len(self.fleet.pool_order)
        rotated_size = len(self.fleet.rotated_order)
        swap = int(round(self.profile.rotation_fraction * pool_size))
        swap = min(swap, rotated_size)
        if swap <= 0:
            return
        # Draw positions into the *ordered* pool/rotated index arrays so
        # the swap is independent of PYTHONHASHSEED (set iteration would
        # follow string hashing and change the layout across interpreter
        # invocations).
        out_pos = self._rng.choice(pool_size, size=swap, replace=False)
        in_pos = self._rng.choice(rotated_size, size=swap, replace=False)
        self.fleet.rotate(out_pos, in_pos)

    # ------------------------------------------------------------------
    # Shards and base-host assignment
    # ------------------------------------------------------------------
    def shard_hosts(self, shard_index: int) -> tuple[str, ...]:
        """Host ids of one placement shard (cached immutable tuple)."""
        if not 0 <= shard_index < self.fleet.n_shards:
            raise CloudError(
                f"shard {shard_index} out of range (region has {self.fleet.n_shards})"
            )
        return self.fleet_view.shard_ids(shard_index)

    def shard_for_account(self, account_id: str) -> int:
        """Map an account to its placement shard.

        Evaluation accounts are pinned by the region profile's placement
        plan; any other account hashes deterministically.
        """
        pinned = self.profile.plan.account_shards.get(account_id)
        if pinned is not None:
            return pinned % self.fleet.n_shards
        digest = hashlib.sha256(
            f"{self.profile.name}:{account_id}".encode()
        ).digest()
        return int.from_bytes(digest[:4], "big") % self.fleet.n_shards

    def dynamism_for_account(self, account_id: str) -> float:
        """Per-account probability of scattering off base hosts."""
        if not self.profile.dynamic_placement:
            return 0.0
        return self.profile.plan.account_dynamism.get(
            account_id, self.profile.default_dynamism
        )

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def host(self, host_id: str) -> PhysicalHost:
        """Return a host by id (simulator-internal)."""
        try:
            return self.hosts_by_id[host_id]
        except KeyError:
            raise CloudError(f"unknown host {host_id!r}") from None

    def host_handle(self, host_id: str) -> HostHandle:
        """A per-host scalar-state cursor into the fleet store."""
        return HostHandle(self.fleet, self.fleet.index_of(host_id))

    @property
    def rng(self) -> np.random.Generator:
        """The datacenter's randomness source (placement, rotation)."""
        return self._rng
