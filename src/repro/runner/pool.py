"""Fan experiment cells out across worker processes, with cell caching.

:func:`run_cells` is the shared entry point every multi-cell experiment
driver routes through.  The default (``parallelism=0``) executes cells
serially in-process — exactly the behavior the drivers had before the
runner existed, preserving determinism and debuggability (breakpoints,
tracebacks, profilers all see one process).  With ``parallelism=N`` the
uncached cells are submitted to a ``ProcessPoolExecutor`` of ``N`` workers;
because every cell derives all randomness from its own seed, pooled and
serial runs produce byte-identical results.

Per-cell timing and cache-hit counters accumulate on the
:class:`RunnerConfig`'s :class:`RunStats`, so callers (the CLI, the
benchmark harness) can report the achieved speedup.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.runner.cache import CellCache
from repro.runner.cellspec import CellResult, CellSpec


@dataclass
class RunStats:
    """Aggregated counters for one runner's cell executions."""

    cells: int = 0
    cache_hits: int = 0
    computed_seconds: float = 0.0
    saved_seconds: float = 0.0
    wall_seconds: float = 0.0
    parallelism: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of cells restored from the cache."""
        return self.cache_hits / self.cells if self.cells else 0.0

    def summary(self) -> str:
        """One-line human-readable report of the counters."""
        return (
            f"{self.cells} cells, {self.cache_hits} cache hits "
            f"({100.0 * self.hit_rate:.0f}%), computed "
            f"{self.computed_seconds:.1f}s, saved ~{self.saved_seconds:.1f}s, "
            f"wall {self.wall_seconds:.1f}s, jobs {self.parallelism}"
        )


@dataclass
class RunnerConfig:
    """How an experiment's cells should be executed.

    The default is the conservative library behavior: serial, in-process,
    no cache — indistinguishable from calling the cell functions directly.
    The CLI and benchmark harness opt into workers and caching explicitly.

    Attributes
    ----------
    parallelism:
        0 runs cells serially in-process; ``N >= 1`` fans uncached cells
        out to ``N`` worker processes.
    cache_read:
        Restore completed cells from the on-disk cache.
    cache_write:
        Store newly computed cells.  ``--no-cache`` maps to
        ``cache_read=False, cache_write=True``: bypass reads, still write.
    cache_dir:
        Cache location override (default: ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro-runner``).
    stats:
        Mutable accumulator shared across every ``run_cells`` call made
        with this config.
    """

    parallelism: int = 0
    cache_read: bool = False
    cache_write: bool = False
    cache_dir: str | Path | None = None
    stats: RunStats = field(default_factory=RunStats)

    @classmethod
    def from_cli(
        cls, jobs: int = 0, no_cache: bool = False,
        cache_dir: str | Path | None = None,
    ) -> "RunnerConfig":
        """The CLI mapping: caching on by default, ``--no-cache`` skips reads."""
        return cls(
            parallelism=jobs,
            cache_read=not no_cache,
            cache_write=True,
            cache_dir=cache_dir,
        )


def _execute_cell(spec: CellSpec) -> CellResult:
    """Run one cell and time it (top-level so worker processes can load it)."""
    start = time.perf_counter()
    value = spec.fn(spec.config, spec.seed)
    elapsed = time.perf_counter() - start
    return CellResult(
        experiment=spec.experiment,
        seed=spec.seed,
        label=spec.label,
        key=spec.key(),
        value=value,
        elapsed_s=elapsed,
    )


def run_cells(
    specs: Sequence[CellSpec], runner: RunnerConfig | None = None
) -> list[CellResult]:
    """Execute every cell, reusing cached results, in spec order.

    Cache reads and writes happen in the parent process only, so worker
    processes never contend on the cache directory.
    """
    if runner is None:
        runner = RunnerConfig()
    specs = list(specs)
    wall_start = time.perf_counter()
    cache = (
        CellCache(runner.cache_dir)
        if (runner.cache_read or runner.cache_write)
        else None
    )

    results: list[CellResult | None] = [None] * len(specs)
    misses: list[tuple[int, CellSpec]] = []
    for index, spec in enumerate(specs):
        key = spec.key()
        if cache is not None and runner.cache_read:
            hit, value, stored_elapsed = cache.get(key)
            if hit:
                results[index] = CellResult(
                    experiment=spec.experiment,
                    seed=spec.seed,
                    label=spec.label,
                    key=key,
                    value=value,
                    elapsed_s=stored_elapsed,
                    cached=True,
                )
                continue
        misses.append((index, spec))

    if misses:
        miss_specs = [spec for _index, spec in misses]
        if runner.parallelism >= 1:
            with ProcessPoolExecutor(max_workers=runner.parallelism) as pool:
                computed = list(pool.map(_execute_cell, miss_specs))
        else:
            computed = [_execute_cell(spec) for spec in miss_specs]
        for (index, _spec), result in zip(misses, computed):
            results[index] = result
            if cache is not None and runner.cache_write:
                cache.put(result.key, result.value, result.elapsed_s)

    stats = runner.stats
    stats.parallelism = runner.parallelism
    stats.wall_seconds += time.perf_counter() - wall_start
    for result in results:
        stats.cells += 1
        if result.cached:
            stats.cache_hits += 1
            stats.saved_seconds += result.elapsed_s
        else:
            stats.computed_seconds += result.elapsed_s
    return results
