"""Channel x platform matrix: every covert channel on every platform.

The paper validates one channel (hardware RNG) on one platform (Cloud
Run).  This extension sweeps the full registry cross-product: each
registered covert-channel kind (``rng``, ``bus``, ``llc``, ``dvfs``)
verifies co-location on each platform personality (neutral baseline,
``aws_lambda_like``, ``azure_functions_like``), and every cell scores the
verified clustering against the placement oracle.

One cell = one (channel, platform, repetition): build a small region
under the platform profile, launch a batch of attacker instances across
two services, fingerprint them the way the platform's instance-identity
exposure allows (Gen1 boot-time fingerprints or Gen2 unique IDs), then
run the fingerprint-guided :class:`~repro.core.verification.ScalableVerifier`
over the selected channel.  Accuracy is the pairwise Fowlkes-Mallows
index of verified clusters vs true hosts; cost is the channel's CTest
count and busy seconds.

The platform *name* travels inside the cell params, so distinct platforms
produce distinct cell cache keys.  Every cell also declares the
:class:`~repro.runner.EnvSpec` of the world it builds: cells that share a
(platform, seed) pair — every channel times every repetition — fork one
warm snapshot of the region instead of rebuilding it per cell.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import pair_confusion
from repro.cloud.platform import platform_profile
from repro.cloud.services import ServiceConfig
from repro.cloud.topology import AccountPlacementPlan, RegionProfile
from repro.core.covert import covert_channel_for
from repro.core.fingerprint import (
    fingerprint_gen1_instances,
    fingerprint_gen2_instances,
)
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.runner import CellSpec, EnvSpec, RunnerConfig, run_cells
from repro.telemetry import current_telemetry

#: Matrix axes: registry channel kinds x platform profile names.
DEFAULT_CHANNELS = ("rng", "bus", "llc", "dvfs")
DEFAULT_PLATFORMS = ("default", "aws_lambda_like", "azure_functions_like")


@dataclass(frozen=True)
class MatrixConfig:
    """One channel x platform sweep."""

    channels: tuple[str, ...] = DEFAULT_CHANNELS
    platforms: tuple[str, ...] = DEFAULT_PLATFORMS
    repetitions: int = 2
    n_hosts: int = 24
    n_services: int = 2
    instances_per_service: int = 8
    base_seed: int = 820


@dataclass
class MatrixPoint:
    """Aggregated outcomes for one (channel, platform) pair."""

    channel: str
    platform: str
    fmi: list[float] = field(default_factory=list)
    precision: list[float] = field(default_factory=list)
    recall: list[float] = field(default_factory=list)
    n_tests: list[int] = field(default_factory=list)
    busy_seconds: list[float] = field(default_factory=list)

    @property
    def mean_fmi(self) -> float:
        return float(np.mean(self.fmi)) if self.fmi else 0.0

    @property
    def mean_precision(self) -> float:
        return float(np.mean(self.precision)) if self.precision else 0.0

    @property
    def mean_recall(self) -> float:
        return float(np.mean(self.recall)) if self.recall else 0.0

    @property
    def mean_tests(self) -> float:
        return float(np.mean(self.n_tests)) if self.n_tests else 0.0

    @property
    def mean_busy_seconds(self) -> float:
        return float(np.mean(self.busy_seconds)) if self.busy_seconds else 0.0


@dataclass
class MatrixSummary:
    """Sweep result: one :class:`MatrixPoint` per matrix cell, in
    channel-major order."""

    points: list[MatrixPoint] = field(default_factory=list)

    def point(self, channel: str, platform: str) -> MatrixPoint:
        for p in self.points:
            if p.channel == channel and p.platform == platform:
                return p
        raise KeyError(f"no matrix point for ({channel!r}, {platform!r})")


def _scaled_profile(n_hosts: int) -> RegionProfile:
    """A paper-shaped region scaled down to ``n_hosts`` total hosts."""
    active = max(10, (2 * n_hosts) // 3)
    return RegionProfile(
        name=f"matrix-{n_hosts}",
        n_hosts=n_hosts,
        active_hosts=active,
        shard_size=5,
        helper_recruit_fraction=0.25,
        helper_pool_cap=max(12, active // 2),
        hot_min_concurrency=8,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    )


def _matrix_cell(params: dict, seed: int) -> dict:
    """One (channel, platform) verification run, oracle-scored."""
    platform = platform_profile(params["platform"])
    env = default_env(
        profile=_scaled_profile(params["n_hosts"]),
        seed=seed,
        platform=platform,
    )
    attacker = env.attacker
    handles = []
    for index in range(params["n_services"]):
        name = attacker.deploy(ServiceConfig(name=f"matrix-{index}"))
        handles.extend(attacker.connect(name, params["instances_per_service"]))
    handles = [handle for handle in handles if handle.alive]

    # Fingerprint the way this platform's instance identity leaks: Gen2
    # exposure gives collision-free unique IDs (no false negatives), Gen1
    # gives boot-time fingerprints that step 3 must double-check.
    if platform.instance_id_exposure == "gen2":
        tagged = [
            TaggedInstance(handle, fingerprint)
            for handle, fingerprint in fingerprint_gen2_instances(handles)
            if handle.alive
        ]
        assume_no_false_negatives = True
    else:
        tagged = [
            TaggedInstance(handle, fingerprint, fingerprint.cpu_model)
            for handle, fingerprint in fingerprint_gen1_instances(
                handles, p_boot=1.0
            )
            if handle.alive
        ]
        assume_no_false_negatives = False

    channel = covert_channel_for(params["channel"])
    verifier = ScalableVerifier(
        channel, assume_no_false_negatives=assume_no_false_negatives
    )
    report = verifier.verify(tagged)

    # Oracle scoring only: the verifier above never sees a host id.
    predicted = report.cluster_index()
    orchestrator = env.orchestrator
    truth = {
        instance_id: orchestrator.true_host_of(instance_id)
        for instance_id in predicted
    }
    confusion = pair_confusion(predicted, truth)
    return {
        "fmi": confusion.fmi,
        "precision": confusion.precision,
        "recall": confusion.recall,
        "n_instances": len(tagged),
        "n_clusters": report.n_hosts,
        "n_true_hosts": len(set(truth.values())),
        "n_tests": report.n_tests,
        "busy_seconds": report.busy_seconds,
    }


def _cell_params(config: MatrixConfig, channel: str, platform: str) -> dict:
    return {
        "channel": channel,
        "platform": platform,
        "n_hosts": config.n_hosts,
        "n_services": config.n_services,
        "instances_per_service": config.instances_per_service,
    }


def run(
    config: MatrixConfig = MatrixConfig(),
    runner: RunnerConfig | None = None,
) -> MatrixSummary:
    """Run the matrix; every (channel, platform, rep) is one cell."""
    specs = [
        CellSpec(
            experiment="channel-matrix",
            fn=_matrix_cell,
            config=_cell_params(config, channel, platform),
            seed=config.base_seed + rep,
            label=f"{channel}/{platform}/rep{rep}",
            # Cells that differ only in channel share a (platform, seed)
            # world: declare it so the runner warm-forks instead of
            # rebuilding the region for every channel.
            env=EnvSpec(
                seed=config.base_seed + rep,
                profile=_scaled_profile(config.n_hosts),
                platform=platform_profile(platform),
            ),
        )
        for channel in config.channels
        for platform in config.platforms
        for rep in range(config.repetitions)
    ]
    with current_telemetry().span(
        "channel_matrix.sweep",
        cells=len(specs),
        channels=list(config.channels),
        platforms=list(config.platforms),
    ):
        results = run_cells(specs, runner)

    summary = MatrixSummary()
    cursor = 0
    for channel in config.channels:
        for platform in config.platforms:
            point = MatrixPoint(channel=channel, platform=platform)
            for result in results[cursor : cursor + config.repetitions]:
                value = result.value
                point.fmi.append(value["fmi"])
                point.precision.append(value["precision"])
                point.recall.append(value["recall"])
                point.n_tests.append(value["n_tests"])
                point.busy_seconds.append(value["busy_seconds"])
            cursor += config.repetitions
            summary.points.append(point)
    return summary
