"""Boot-time drift fitting and fingerprint expiration (paper §4.4.2).

Because the reported TSC frequency carries a constant error, the derived
boot time drifts *linearly* with real-world time (Eq. 4.2).  Fitting a line
to a host's fingerprint history therefore (a) confirms the linear-drift
hypothesis (the paper finds |r| >= 0.9997 on every history) and (b) lets us
extrapolate when the rounded boot time will cross a rounding boundary —
the fingerprint's *expiration time*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats


@dataclass(frozen=True)
class DriftFit:
    """Linear fit of derived boot time against measurement wall time.

    Attributes
    ----------
    slope:
        Drift rate in seconds of boot-time change per second of real time
        (``epsilon / f_r`` in the paper's notation).
    intercept:
        Fitted boot time at wall time zero.
    r_value:
        Pearson correlation coefficient of the fit.
    """

    slope: float
    intercept: float
    r_value: float

    def boot_time_at(self, wall_time: float) -> float:
        """Fitted (unrounded) boot time at a given wall time."""
        return self.intercept + self.slope * wall_time


def fit_boot_time_drift(
    wall_times: Sequence[float], boot_times: Sequence[float]
) -> DriftFit:
    """Least-squares fit of a fingerprint history.

    Parameters
    ----------
    wall_times:
        Measurement times (seconds since epoch).
    boot_times:
        Derived (unrounded) boot times at those measurements.
    """
    if len(wall_times) != len(boot_times):
        raise ValueError("wall_times and boot_times must have equal length")
    if len(wall_times) < 3:
        raise ValueError("need at least 3 points to fit a drift line")
    result = stats.linregress(wall_times, boot_times)
    r_value = float(result.rvalue) if not math.isnan(result.rvalue) else 1.0
    return DriftFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        r_value=r_value,
    )


def estimate_expiration_time(
    fit: DriftFit, at_wall_time: float, p_boot: float
) -> float:
    """Time until the rounded boot time changes, from ``at_wall_time``.

    The fingerprint expires when the drifting boot time crosses the nearest
    rounding boundary in the drift direction.  Returns ``math.inf`` for a
    host with no measurable drift.
    """
    if p_boot <= 0:
        raise ValueError(f"p_boot must be positive, got {p_boot!r}")
    if fit.slope == 0.0:
        return math.inf
    boot_now = fit.boot_time_at(at_wall_time)
    bucket = round(boot_now / p_boot)
    if fit.slope > 0:
        boundary = (bucket + 0.5) * p_boot
        distance = boundary - boot_now
    else:
        boundary = (bucket - 0.5) * p_boot
        distance = boot_now - boundary
    return max(0.0, distance / abs(fit.slope))
