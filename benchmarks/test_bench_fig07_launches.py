"""Figure 7: apparent hosts across repeated cold launches (Experiment 2).

Paper: each of six launches (45-minute interval) occupies a similar number
of apparent hosts and the cumulative count barely grows — the account's
*base hosts*.  The same pattern holds with a fresh service per launch.
"""

from repro.experiments import launch_behavior as lb
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = lb.LaunchSeriesConfig()  # 6 launches x 800 instances, 45-min interval


def test_fig07_repeated_cold_launches(benchmark, emit):
    result = run_once(benchmark, lambda: lb.run_launch_series(CONFIG))

    emit(
        format_series(
            "Figure 7 — apparent hosts per launch (same service)",
            ("launch", "apparent_hosts", "cumulative"),
            [
                (i + 1, per, cum)
                for i, (per, cum) in enumerate(zip(result.per_launch, result.cumulative))
            ],
        )
    )

    assert len(result.per_launch) == 6
    spread = max(result.per_launch) - min(result.per_launch)
    assert spread <= 5, "per-launch footprint stays constant"
    assert result.growth <= 8, "cumulative growth is minimal (base hosts)"


def test_fig07_fresh_service_per_launch(benchmark, emit):
    config = lb.LaunchSeriesConfig(fresh_service_per_launch=True, seed=511)
    result = run_once(benchmark, lambda: lb.run_launch_series(config))

    emit(
        format_series(
            "Figure 7 variant — a fresh service (new image) per launch",
            ("launch", "apparent_hosts", "cumulative"),
            [
                (i + 1, per, cum)
                for i, (per, cum) in enumerate(zip(result.per_launch, result.cumulative))
            ],
        )
    )
    # Rebuilding images does not change the footprint: base hosts are a
    # property of the account, not of image caching.
    assert result.growth <= 8
