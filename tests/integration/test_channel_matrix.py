"""Integration tests for the channel x platform matrix experiment."""

from __future__ import annotations

import pytest

from repro.experiments import channel_matrix
from repro.experiments.channel_matrix import MatrixConfig, MatrixSummary
from repro.experiments.registry import run_experiment


@pytest.fixture(scope="module")
def summary() -> MatrixSummary:
    """One small full-matrix sweep shared by the assertions below."""
    config = MatrixConfig(repetitions=1, n_hosts=18, instances_per_service=6)
    return channel_matrix.run(config)


class TestMatrixSweep:
    def test_every_cell_present_in_channel_major_order(self, summary):
        pairs = [(p.channel, p.platform) for p in summary.points]
        assert pairs == [
            (channel, platform)
            for channel in ("rng", "bus", "llc", "dvfs")
            for platform in ("default", "aws_lambda_like", "azure_functions_like")
        ]

    def test_new_channels_reach_nonzero_accuracy_on_multiple_platforms(
        self, summary
    ):
        for channel in ("llc", "dvfs"):
            platforms_with_signal = [
                p.platform
                for p in summary.points
                if p.channel == channel and p.mean_fmi > 0.0
            ]
            assert len(platforms_with_signal) >= 2, (
                f"{channel} found signal on {platforms_with_signal} only"
            )

    def test_scores_are_valid_rates(self, summary):
        for point in summary.points:
            for value in (point.mean_fmi, point.mean_precision, point.mean_recall):
                assert 0.0 <= value <= 1.0
            assert point.mean_tests > 0
            assert point.mean_busy_seconds > 0.0

    def test_point_lookup(self, summary):
        point = summary.point("llc", "aws_lambda_like")
        assert point.channel == "llc"
        with pytest.raises(KeyError):
            summary.point("llc", "gcp")


class TestRegistryEntry:
    def test_quick_channel_matrix_produces_report(self):
        report = run_experiment("channel_matrix", scale="quick")
        assert "channel" in report
        assert "aws-lambda" in report
        assert "azure-func" in report
        for channel in ("rng", "bus", "llc", "dvfs"):
            assert channel in report
