"""All-day surveillance: sustained co-location against a live victim.

The paper's evaluation measures co-location at a single instant.  Real
victims breathe with their traffic and the platform reaps idle attacker
instances within ~12 minutes, so monitoring a victim for a whole day needs
the keep-alive loop of :mod:`repro.core.attack.residency`.  This experiment
primes the attacker once, then tracks victim-instance coverage hour by hour
while the victim's diurnal traffic scales its fleet up and down — and
accounts the full-day bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import DiurnalLoad
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env


@dataclass(frozen=True)
class SurveillanceConfig:
    """Configuration for the all-day surveillance experiment."""

    region: str = "us-east1"
    duration_hours: float = 24.0
    sample_every_hours: float = 1.0
    victim_trough: int = 10
    victim_peak: int = 100
    refresh_period_s: float = 100.0
    seed: int = 1100


@dataclass
class SurveillanceResult:
    """Hour-by-hour coverage plus the day's bill."""

    #: ``(hour, victim_instances, coverage)`` samples.
    series: list[tuple[float, int, float]] = field(default_factory=list)
    setup_cost_usd: float = 0.0
    maintenance_cost_usd: float = 0.0

    @property
    def min_coverage(self) -> float:
        return min(c for _h, _n, c in self.series)

    @property
    def mean_coverage(self) -> float:
        return sum(c for _h, _n, c in self.series) / len(self.series)

    @property
    def total_cost_usd(self) -> float:
        return self.setup_cost_usd + self.maintenance_cost_usd


def run(config: SurveillanceConfig = SurveillanceConfig()) -> SurveillanceResult:
    """Run the surveillance experiment (oracle-scored for speed)."""
    env = default_env(config.region, seed=config.seed)
    attacker = env.attacker
    victim = env.victim("account-2")
    orchestrator = env.orchestrator

    outcome = optimized_launch(attacker)
    # Release the fleet to idle; keep-alive blips keep it alive cheaply.
    for name in outcome.service_names:
        attacker.disconnect(name)

    victim_service = orchestrator.deploy_service(
        "account-2",
        ServiceConfig(name="victim-diurnal", max_instances=2 * config.victim_peak),
    )
    scaler = Autoscaler(orchestrator, victim_service)
    load = DiurnalLoad(
        trough=config.victim_trough,
        peak=config.victim_peak,
        period_s=config.duration_hours * units.HOUR,
    )

    result = SurveillanceResult(setup_cost_usd=outcome.cost_usd)
    maintenance_cost = 0.0
    start = attacker.now()
    attacker_services = [
        orchestrator.services[f"{attacker.account_id}/{name}"]
        for name in outcome.service_names
    ]
    hours_done = 0.0
    while hours_done < config.duration_hours:
        window_h = min(config.sample_every_hours, config.duration_hours - hours_done)
        window_end = attacker.now() + window_h * units.HOUR
        # Victim autoscaling and attacker keep-alive interleave on the
        # refresh cadence.
        while attacker.now() < window_end:
            tick_start = attacker.now()
            target = scaler.target_for(load.concurrency_at(tick_start - start))
            orchestrator.scale_to(victim_service, target)
            cost_before = attacker.cost_usd
            for name in outcome.service_names:
                attacker.connect(name, 800)
                attacker.wait(1.0)
                attacker.disconnect(name)
            maintenance_cost += attacker.cost_usd - cost_before
            next_tick = tick_start + config.refresh_period_s
            attacker.wait(max(0.0, next_tick - attacker.now()))
        hours_done += window_h

        attacker_hosts = {
            instance.host_id
            for service in attacker_services
            for instance in orchestrator.alive_instances(service)
        }
        victims = orchestrator.alive_instances(victim_service)
        covered = sum(1 for i in victims if i.host_id in attacker_hosts)
        coverage = covered / len(victims) if victims else 0.0
        result.series.append((hours_done, len(victims), coverage))

    result.maintenance_cost_usd = maintenance_cost
    return result
