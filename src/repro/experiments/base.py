"""Shared experiment infrastructure: one simulated region + three accounts.

Every experiment builds a fresh :class:`SimulationEnv` so runs are
independent and reproducible from their seed.  The environment mirrors the
paper's setup (§5): Account 1 is the attacker, Accounts 2 and 3 are
victims.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cloud.accounts import Account
from repro.cloud.api import FaaSClient
from repro.cloud.datacenter import DataCenter
from repro.cloud.orchestrator import Orchestrator
from repro.cloud.platform import (
    PlatformProfile,
    current_platform,
    platform_profile,
)
from repro.cloud.topology import RegionProfile, region_profile
from repro.cloud.traffic import BackgroundDriver, TenantPopulation, TrafficConfig
from repro.faults import (
    DEFAULT_LAUNCH_RETRY,
    FaultPlan,
    RetryPolicy,
    current_fault_plan,
)
from repro.runner.worldcache import EnvSpec, current_world_cache
from repro.sandbox.base import TscPolicy
from repro.simtime.clock import SimClock
from repro.telemetry import current_telemetry

#: The accounts used throughout the paper's evaluation.
ATTACKER_ACCOUNT = "account-1"
VICTIM_ACCOUNTS = ("account-2", "account-3")


@dataclass
class SimulationEnv:
    """One simulated region with the paper's three evaluation accounts."""

    clock: SimClock
    datacenter: DataCenter
    orchestrator: Orchestrator
    clients: dict[str, FaaSClient] = field(default_factory=dict)
    #: Live background-tenant traffic, or ``None`` for a quiet region.
    background: BackgroundDriver | None = None

    @property
    def attacker(self) -> FaaSClient:
        """Client for the attacker account (Account 1)."""
        return self.clients[ATTACKER_ACCOUNT]

    def victim(self, account_id: str = "account-2") -> FaaSClient:
        """Client for a victim account."""
        return self.clients[account_id]

    @property
    def region(self) -> str:
        return self.datacenter.profile.name


def host_coverage(
    env: SimulationEnv, attacker_handles, victim_handles
) -> tuple[float, int]:
    """Oracle-scored co-location coverage, as index-mask math.

    Resolves every instance's true host to its fleet index and intersects
    a boolean attacker-presence mask with the victim index array — no
    per-campaign host-id set churn.  Returns ``(coverage, attacker_hosts)``
    where coverage is the fraction of *live* victim instances landing on a
    host that also runs a live attacker instance.

    Dead-instance semantics (both sides filtered identically): terminated
    attacker instances no longer pressure anything, so they contribute no
    host to the attacker mask; terminated victim instances are no longer
    co-locatable targets, so they leave the denominator instead of
    counting as misses (or raising on a reaped ``true_host_of`` lookup).
    Empty inputs — either side — yield zero coverage, never an error.
    """
    fleet = env.datacenter.fleet
    orch = env.orchestrator
    attacker_idx = fleet.indices_of(
        orch.true_host_of(handle.instance_id)
        for handle in attacker_handles
        if handle.alive
    )
    attacker_mask = fleet.mask_for_indices(attacker_idx)
    victim_idx = fleet.indices_of(
        orch.true_host_of(handle.instance_id)
        for handle in victim_handles
        if handle.alive
    )
    if victim_idx.size == 0:
        return 0.0, int(attacker_mask.sum())
    return float(attacker_mask[victim_idx].mean()), int(attacker_mask.sum())


def default_env(
    region: str = "us-east1",
    seed: int = 0,
    tsc_policy: TscPolicy = TscPolicy.NATIVE,
    profile: RegionProfile | None = None,
    fault_plan: FaultPlan | None = None,
    retry_policy: RetryPolicy | None = None,
    background: TrafficConfig | None = None,
    platform: PlatformProfile | str | None = None,
) -> SimulationEnv:
    """Build (or warm-fork) a simulated region with the evaluation accounts.

    Parameters
    ----------
    region:
        Region profile name (ignored when ``profile`` is given).
    seed:
        Master seed; different seeds model different measurement days.
    tsc_policy:
        Host TSC exposure (``EMULATED`` enables the §6 mitigation).
    profile:
        Explicit profile override (used by scaled-down tests).
    fault_plan:
        Deterministic platform-fault schedule wired into the orchestrator
        (launch errors, slow launches).  Defaults to the ambient plan
        (:func:`~repro.faults.current_fault_plan`), so experiment cells
        running under ``--faults`` inherit it without extra plumbing.
    retry_policy:
        Launch-retry discipline for the orchestrator and the clients.
        When faults are active and no policy is given, clients get the
        default launch-retry policy so one exhausted platform retry
        budget doesn't kill a whole campaign.
    background:
        Optional :class:`~repro.cloud.traffic.TrafficConfig`: the region
        comes up *live*, with that tenant population already deployed and
        autoscaling in the background of whatever the experiment does.
        ``None`` (the default) keeps the historical quiet region —
        byte-identical traces, guaranteed.
    platform:
        Optional :class:`~repro.cloud.platform.PlatformProfile` (or its
        registry name) giving the region a non-Google orchestrator
        personality.  ``None`` resolves the ambient profile
        (:func:`~repro.cloud.platform.current_platform`) — set by the
        runner under ``--platform`` — and falls back to the neutral
        baseline, which builds a byte-identical environment.

    When an ambient :class:`~repro.runner.worldcache.WorldCache` is
    active (the runner arms one around cells that declare an
    :class:`~repro.runner.worldcache.EnvSpec`), the fully built world —
    including the warmed background population — is checkpointed on
    first construction and every later call with the same resolved
    inputs *forks* the checkpoint instead of rebuilding.  Forked and
    fresh worlds are byte-identical (state, traces, and every subsequent
    RNG draw); see ``docs/DESIGN.md`` ("warm-world contract").  Worlds
    shaped by an enabled fault plan are never forked: their injection
    counters accumulate on the ambient plan object, which a restored
    copy would detach from.
    """
    if isinstance(platform, str):
        platform = platform_profile(platform)
    if platform is None:
        platform = current_platform()
    if fault_plan is None:
        fault_plan = current_fault_plan()

    cache = current_world_cache()
    if cache is not None:
        spec = EnvSpec(
            region=region,
            seed=seed,
            tsc_policy=tsc_policy.value,
            profile=profile,
            background=background,
            platform=platform,
            fault_spec=fault_plan.spec if fault_plan is not None else None,
            retry_policy=retry_policy,
        )
        if spec.forkable:
            return cache.build_or_fork(
                spec,
                lambda: _build_env(
                    region, seed, tsc_policy, profile, fault_plan,
                    retry_policy, background, platform,
                ),
            )
    return _build_env(
        region, seed, tsc_policy, profile, fault_plan,
        retry_policy, background, platform,
    )


def _build_env(
    region: str,
    seed: int,
    tsc_policy: TscPolicy,
    profile: RegionProfile | None,
    fault_plan: FaultPlan | None,
    retry_policy: RetryPolicy | None,
    background: TrafficConfig | None,
    platform: PlatformProfile | None,
) -> SimulationEnv:
    """The fresh-construction path (fault plan and platform pre-resolved)."""
    clock = SimClock()
    current_telemetry().use_clock(clock)
    resolved = profile if profile is not None else region_profile(region)
    datacenter = DataCenter(resolved, clock, seed=seed, platform=platform)
    orchestrator = Orchestrator(
        datacenter,
        tsc_policy=tsc_policy,
        fault_plan=fault_plan,
        retry_policy=retry_policy,
    )
    client_retry = retry_policy
    if client_retry is None and fault_plan is not None and fault_plan.enabled:
        client_retry = DEFAULT_LAUNCH_RETRY
    env = SimulationEnv(clock=clock, datacenter=datacenter, orchestrator=orchestrator)
    for account_id in (ATTACKER_ACCOUNT, *VICTIM_ACCOUNTS):
        orchestrator.register_account(Account(account_id))
        env.clients[account_id] = FaaSClient(
            orchestrator, account_id, retry_policy=client_retry
        )
    if background is not None:
        env.background = BackgroundDriver(
            orchestrator, TenantPopulation.generate(background)
        )
        env.background.start()
    return env
