"""Edge cases around fingerprint collection and placement stability."""


from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.hardware.cpu import CPUModel


class TestCollectionRobustness:
    def test_instances_without_reported_frequency_skipped(self, tiny_env):
        """A host whose model name lacks a labeled frequency cannot yield a
        Gen 1 fingerprint; collection skips it instead of failing."""
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="edge"))
        handles = client.connect(name, 10)
        # Sabotage one instance's host model (simulating an exotic SKU).
        orch = tiny_env.orchestrator
        host_id = orch.true_host_of(handles[0].instance_id)
        host = tiny_env.datacenter.host(host_id)
        original = host.cpu
        host.cpu = CPUModel("Mystery CPU", original.base_frequency_hz)
        try:
            tagged = fingerprint_gen1_instances(handles, p_boot=1.0)
        finally:
            host.cpu = original
        skipped = sum(
            1 for h in handles if orch.true_host_of(h.instance_id) == host_id
        )
        assert len(tagged) == len(handles) - skipped
        assert skipped >= 1

    def test_fingerprints_stable_across_time_of_day(self, tiny_env):
        """§5.1 'Other factors': launching at different times of day finds
        the same base hosts (fingerprints drift slightly but match at the
        default rounding)."""
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="tod"))
        morning = {
            fp for _h, fp in fingerprint_gen1_instances(client.connect(name, 10), 1.0)
        }
        client.disconnect(name)
        client.wait(9 * units.HOUR)  # same day, evening
        evening = {
            fp for _h, fp in fingerprint_gen1_instances(client.connect(name, 10), 1.0)
        }
        assert len(morning & evening) >= 0.8 * len(morning)


class TestScaleFromZero:
    def test_invoke_scales_cold_service(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="cold"))
        client.invoke(name, processing_seconds=0.1)
        service = tiny_env.orchestrator.services["account-1/cold"]
        assert len(tiny_env.orchestrator.alive_instances(service)) == 1

    def test_invocations_spread_round_robin(self, tiny_env):
        client = tiny_env.attacker
        name = client.deploy(ServiceConfig(name="rr"))
        handles = client.connect(name, 4)
        for _ in range(8):
            client.invoke(name, processing_seconds=100.0)
        # All four instances should be busy (2 requests each, queued).
        orch = tiny_env.orchestrator
        service = orch.services["account-1/rr"]
        now = tiny_env.clock.now()
        for instance in orch.alive_instances(service):
            host = tiny_env.datacenter.host(instance.host_id)
            assert host.cpu_activity.busy_count(now) >= 1
