"""§5.2: financial cost of the optimized attack.

Paper: six services x six launches x 800 instances costs on average
$24 / $23 / $27 in us-east1 / us-central1 / us-west1 — idle time is free,
only launch activity bills.
"""

from repro.experiments import attack_cost as ac
from repro.experiments.report import ComparisonRow, format_comparison

from benchmarks.conftest import run_once

CONFIG = ac.AttackCostConfig(repetitions=2)  # paper: 3


def test_sec52_attack_cost(benchmark, emit):
    result = run_once(benchmark, lambda: ac.run(CONFIG))

    emit(
        format_comparison(
            "§5.2 — cost of the optimized co-location attack",
            [
                ComparisonRow(
                    f"{region}: attack cost",
                    f"${ac.PAPER_COST_USD[region]:.0f}",
                    f"${result.mean_cost_usd[region]:.2f}",
                )
                for region in CONFIG.regions
            ],
        )
    )

    for region in CONFIG.regions:
        measured = result.mean_cost_usd[region]
        paper = ac.PAPER_COST_USD[region]
        # Same order of magnitude, within ~2x.
        assert paper / 2 < measured < paper * 2, (region, measured)
    # The attack is cheap in absolute terms — tens of dollars.
    assert all(cost < 60 for cost in result.mean_cost_usd.values())


def test_sec52_cost_footprint_ablation(benchmark, emit):
    """Ablation: more services / launches buy a wider footprint for more
    money; the paper's 6x6 configuration sits on the knee of the curve."""
    results = run_once(benchmark, lambda: ac.run_ablation(ac.AblationConfig()))

    emit(
        format_comparison(
            "§5.2 ablation — (services, launches) -> cost / apparent hosts",
            [
                ComparisonRow(
                    f"services={s}, launches={l}",
                    "-",
                    f"${cost:.2f} / {hosts} hosts",
                )
                for (s, l), (cost, hosts) in sorted(results.items())
            ],
        )
    )

    # Footprint grows with both knobs.
    assert results[(6, 6)][1] > results[(1, 6)][1]
    assert results[(6, 6)][1] > results[(6, 2)][1]
    # Cost scales roughly linearly with services x launches.
    assert results[(6, 6)][0] > 4 * results[(1, 2)][0]
