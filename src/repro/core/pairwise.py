"""Conventional pairwise covert-channel verification (the baseline).

Prior work verifies co-location by testing instances two at a time, which
costs O(N^2) serialized tests.  The *Single Instance Elimination* (SIE)
pre-filter tests all instances simultaneously and drops negatives first —
effective in VM clouds where most instances are alone on their host, but
useless in FaaS environments, where the orchestrator packs many instances of
a service onto each host so nothing tests negative (paper §4.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cloud.api import InstanceHandle
from repro.core.clusters import DisjointSet
from repro.core.covert import CovertChannel
from repro.telemetry import current_telemetry


@dataclass
class PairwiseReport:
    """Outcome of a pairwise verification run."""

    clusters: list[list[InstanceHandle]]
    n_tests: int
    busy_seconds: float
    eliminated_by_sie: int = 0

    @property
    def n_hosts(self) -> int:
        """Number of verified distinct hosts (clusters)."""
        return len(self.clusters)


class PairwiseVerifier:
    """O(N^2) pairwise verification, optionally with an SIE pre-filter."""

    def __init__(self, channel: CovertChannel, use_sie: bool = False) -> None:
        self.channel = channel
        self.use_sie = use_sie

    def verify(self, handles: Sequence[InstanceHandle]) -> PairwiseReport:
        """Verify co-location of ``handles`` with serialized pairwise tests."""
        before = self.channel.stats.snapshot()

        with current_telemetry().span(
            "verify.pairwise", instances=len(handles), sie=self.use_sie
        ) as span:
            candidates = list(handles)
            eliminated = 0
            if self.use_sie and len(candidates) > 2:
                result = self.channel.ctest(candidates, threshold_m=2)
                kept = [h for h, p in zip(result.handles, result.positive) if p]
                eliminated = len(candidates) - len(kept)
                candidates = kept

            ds = DisjointSet(h.instance_id for h in handles)
            by_id = {h.instance_id: h for h in handles}
            for i in range(len(candidates)):
                for j in range(i + 1, len(candidates)):
                    if ds.same(candidates[i].instance_id, candidates[j].instance_id):
                        continue  # already known co-located via transitivity
                    result = self.channel.ctest(
                        [candidates[i], candidates[j]], threshold_m=2
                    )
                    if all(result.positive):
                        ds.union(
                            candidates[i].instance_id, candidates[j].instance_id
                        )

            clusters = [[by_id[iid] for iid in cluster] for cluster in ds.clusters()]
            delta = self.channel.stats.since(before)
            span.set(clusters=len(clusters), eliminated_by_sie=eliminated)
            return PairwiseReport(
                clusters=clusters,
                n_tests=int(delta.get("tests", 0)),
                busy_seconds=float(delta.get("busy_seconds", 0.0)),
                eliminated_by_sie=eliminated,
            )
