"""Unit tests for the guest-side probe programs."""

import numpy as np
import pytest

from repro import units
from repro.core import probes
from repro.sandbox.base import TscPolicy
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.microvm import MicroVMSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def gen1_sandbox(host=None, policy=TscPolicy.NATIVE):
    host = host or make_host()
    return GVisorSandbox(host, SimClock(), np.random.default_rng(0), "g1", tsc_policy=policy)


def gen2_sandbox(host=None):
    host = host or make_host()
    return MicroVMSandbox(host, SimClock(), np.random.default_rng(0), "g2")


class TestGen1Probe:
    def test_sample_fields(self):
        host = make_host()
        sample = probes.gen1_fingerprint_probe(gen1_sandbox(host))
        assert sample.cpu_model == host.cpu.name
        assert sample.reported_frequency_hz == host.cpu.reported_tsc_frequency_hz
        assert sample.tsc_value > 0

    def test_derived_boot_time_near_host_boot(self):
        """With a small frequency error, the derived boot time lands within
        seconds of the true host boot time."""
        host = make_host(boot_age_s=10 * units.DAY, epsilon_hz=1000.0)
        sample = probes.gen1_fingerprint_probe(gen1_sandbox(host))
        # Drift error: uptime * eps / f = 10d * 1e3/2e9 ~ 0.43 s.
        assert sample.boot_time() == pytest.approx(host.boot_time, abs=2.0)

    def test_colocated_probes_agree(self):
        host = make_host()
        clock = SimClock()
        s1 = GVisorSandbox(host, clock, np.random.default_rng(1), "a")
        s2 = GVisorSandbox(host, clock, np.random.default_rng(2), "b")
        b1 = probes.gen1_fingerprint_probe(s1).boot_time()
        b2 = probes.gen1_fingerprint_probe(s2).boot_time()
        assert b1 == pytest.approx(b2, abs=0.1)

    def test_mitigated_host_defeats_probe(self):
        """Under TSC emulation the derived 'boot time' is the sandbox's
        own creation time, which is useless as a host fingerprint."""
        host = make_host()
        sandbox = gen1_sandbox(host, policy=TscPolicy.EMULATED)
        sample = probes.gen1_fingerprint_probe(sandbox)
        assert abs(sample.boot_time() - host.boot_time) > units.DAY


class TestGen2Probe:
    def test_reads_refined_khz(self):
        host = make_host(epsilon_hz=2499.0)
        khz = probes.gen2_fingerprint_probe(gen2_sandbox(host))
        assert khz * units.KHZ == host.tsc.refined_frequency_hz()


class TestEnvironmentProbe:
    def test_gen1_environment_conceals_host(self):
        host = make_host()
        info = probes.environment_probe(gen1_sandbox(host))
        assert info["generation"] == "gen1"
        assert info["proc_cpuinfo_model"] != host.cpu.name
        assert info["proc_uptime"] < 60.0

    def test_gen2_environment(self):
        info = probes.environment_probe(gen2_sandbox())
        assert info["generation"] == "gen2"


class TestMeasuredFrequencyProbe:
    def test_returns_estimate(self):
        estimate = probes.measured_frequency_probe(gen1_sandbox(), repetitions=5)
        assert estimate.repetitions == 5
        assert estimate.mean_hz > 1e9
