"""Integration: the planner's analytic predictions vs. actual execution.

Infers the policy black-box, plans a schedule, executes it, and checks the
predicted footprint and cost land near the measured ones.
"""

import pytest

from repro import units
from repro.analysis.policy_inference import IdlePolicyEstimate
from repro.core.attack.planner import AttackPlanner, LaunchSchedule, PolicyModel
from repro.core.attack.strategies import optimized_launch
from repro.experiments.base import default_env


def east_policy() -> PolicyModel:
    return PolicyModel(
        base_set_size=75,
        idle=IdlePolicyEstimate(grace_s=120.0, deadline_s=720.0),
        hot_window_s=30 * units.MINUTE,
        recruit_rate=0.064,
        helper_pool_cap=250,
        candidate_pool_size=225,
    )


class TestPlannerVsExecution:
    @pytest.mark.parametrize(
        ("n_services", "launches"),
        [(1, 6), (3, 4), (6, 6)],
    )
    def test_footprint_prediction_matches_execution(self, n_services, launches):
        planner = AttackPlanner(east_policy())
        schedule = LaunchSchedule(
            n_services=n_services,
            launches=launches,
            instances_per_service=800,
            interval_s=10 * units.MINUTE,
        )
        prediction = planner.predict(schedule)

        env = default_env("us-east1", seed=700 + n_services)
        outcome = optimized_launch(
            env.attacker,
            n_services=n_services,
            launches=launches,
            instances_per_service=800,
            interval_s=schedule.interval_s,
        )
        measured = len(outcome.apparent_hosts)
        assert measured == pytest.approx(prediction.expected_hosts, rel=0.20)

    def test_cost_prediction_matches_execution(self):
        planner = AttackPlanner(east_policy())
        schedule = LaunchSchedule(
            n_services=6, launches=6, instances_per_service=800,
            interval_s=10 * units.MINUTE,
        )
        prediction = planner.predict(schedule)
        env = default_env("us-east1", seed=710)
        outcome = optimized_launch(env.attacker)
        assert outcome.cost_usd == pytest.approx(prediction.cost_usd, rel=0.5)
