"""Columnar fleet-state core.

One indexed :class:`FleetStore` owns every per-host scalar the simulator
tracks — capacity and load slots, per-service instance counts, serving-pool
and rotated-out membership, shard index, and the problematic-timing flag —
as NumPy columns with a stable host-id <-> index mapping.  The cloud layers
(:class:`~repro.cloud.datacenter.DataCenter`,
:class:`~repro.cloud.placement.PlacementPolicy`,
:class:`~repro.cloud.orchestrator.Orchestrator`) resolve hosts to indices
once and run their hot loops as array operations instead of dict churn.

Callers never reach into raw columns directly: reads go through
:class:`FleetView`, per-host mutations through :class:`HostHandle`, and
fleet-wide mutations through the store's narrow method surface.  The
representation is an implementation detail; identical seeds reproduce the
pre-columnar placement sequences byte-for-byte (see the golden-trace
regression tests).
"""

from repro.fleet.service_state import ServiceStateStore
from repro.fleet.store import FleetSnapshot, FleetStore, SparseServiceCounts
from repro.fleet.view import FleetView, HostHandle

__all__ = [
    "FleetSnapshot",
    "FleetStore",
    "FleetView",
    "HostHandle",
    "ServiceStateStore",
    "SparseServiceCounts",
]
