"""Property-based tests for clustering metrics."""

import math

from hypothesis import given, strategies as st

from repro.analysis.metrics import pair_confusion, victim_instance_coverage

labelings = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=2, max_size=40
)


def to_maps(pairs):
    predicted = {f"i{k}": p for k, (p, _t) in enumerate(pairs)}
    truth = {f"i{k}": t for k, (_p, t) in enumerate(pairs)}
    return predicted, truth


@given(labelings)
def test_confusion_counts_nonnegative_and_sum_to_total(pairs):
    predicted, truth = to_maps(pairs)
    c = pair_confusion(predicted, truth)
    n = len(predicted)
    assert min(c.true_positive, c.false_positive, c.true_negative, c.false_negative) >= 0
    assert (
        c.true_positive + c.false_positive + c.true_negative + c.false_negative
        == n * (n - 1) // 2
    )


@given(labelings)
def test_metric_bounds(pairs):
    predicted, truth = to_maps(pairs)
    c = pair_confusion(predicted, truth)
    assert 0.0 <= c.precision <= 1.0
    assert 0.0 <= c.recall <= 1.0
    assert 0.0 <= c.fmi <= 1.0
    assert c.fmi == math.sqrt(c.precision * c.recall)


@given(labelings)
def test_perfect_when_compared_to_self(pairs):
    predicted, _ = to_maps(pairs)
    c = pair_confusion(predicted, predicted)
    assert c.false_positive == 0
    assert c.false_negative == 0
    assert c.fmi == 1.0


@given(labelings)
def test_swapping_roles_transposes_errors(pairs):
    predicted, truth = to_maps(pairs)
    forward = pair_confusion(predicted, truth)
    backward = pair_confusion(truth, predicted)
    assert forward.true_positive == backward.true_positive
    assert forward.false_positive == backward.false_negative
    assert forward.false_negative == backward.false_positive


@given(
    st.lists(st.integers(0, 6), min_size=1, max_size=20),
    st.lists(st.integers(0, 6), max_size=20),
)
def test_coverage_bounds_and_monotonicity(victim_hosts, attacker_hosts):
    cluster_of = {}
    victim_ids = []
    for k, host in enumerate(victim_hosts):
        vid = f"v{k}"
        victim_ids.append(vid)
        cluster_of[vid] = host
    attacker_ids = []
    for k, host in enumerate(attacker_hosts):
        aid = f"a{k}"
        attacker_ids.append(aid)
        cluster_of[aid] = host

    coverage = victim_instance_coverage(victim_ids, attacker_ids, cluster_of)
    assert 0.0 <= coverage <= 1.0
    # Adding attackers never reduces coverage.
    extra_id = "a-extra"
    cluster_of[extra_id] = victim_hosts[0]
    more = victim_instance_coverage(victim_ids, attacker_ids + [extra_id], cluster_of)
    assert more >= coverage
