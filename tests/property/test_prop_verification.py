"""Property-based tests for group-testing invariants of the verifier.

These drive the verifier against a *synthetic* covert channel whose ground
truth is drawn by hypothesis, checking exact cluster recovery regardless of
how instances are distributed over hosts and how fingerprints lie.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import given, settings, strategies as st

from repro.core.covert import CovertChannel, CTestResult
from repro.core.verification import ScalableVerifier, TaggedInstance


@dataclass(frozen=True)
class FakeHandle:
    """Minimal stand-in for an InstanceHandle."""

    instance_id: str


class OracleChannel(CovertChannel):
    """A noise-free covert channel driven by a known host map."""

    def __init__(self, host_of: dict[str, int]) -> None:
        super().__init__()
        self.host_of = host_of

    def ctest_batch(self, groups, threshold_m):
        if isinstance(threshold_m, int):
            thresholds = [threshold_m] * len(groups)
        else:
            thresholds = list(threshold_m)
        flat = [h for group in groups for h in group]
        counts: dict[int, int] = {}
        for handle in flat:
            host = self.host_of[handle.instance_id]
            counts[host] = counts.get(host, 0) + 1
        self.stats.record_batch([len(g) for g in groups], 1.0)
        results = []
        for group, threshold in zip(groups, thresholds):
            positive = tuple(
                counts[self.host_of[h.instance_id]] >= threshold for h in group
            )
            results.append(CTestResult(handles=tuple(group), positive=positive))
        return results


@st.composite
def scenarios(draw):
    n = draw(st.integers(min_value=1, max_value=40))
    n_hosts = draw(st.integers(min_value=1, max_value=10))
    host_of = {f"i{k}": draw(st.integers(0, n_hosts - 1)) for k in range(n)}
    # Fingerprints may be arbitrarily wrong: each instance gets a label
    # loosely correlated (or not) with its host.
    lie = draw(st.booleans())
    fingerprints = {}
    for iid, host in host_of.items():
        if lie:
            fingerprints[iid] = draw(st.integers(0, n_hosts))
        else:
            fingerprints[iid] = host
    return host_of, fingerprints


def true_clusters(host_of):
    clusters: dict[int, set] = {}
    for iid, host in host_of.items():
        clusters.setdefault(host, set()).add(iid)
    return {frozenset(members) for members in clusters.values()}


@given(scenarios())
@settings(max_examples=80, deadline=None)
def test_verifier_recovers_exact_clusters(scenario):
    host_of, fingerprints = scenario
    tagged = [
        TaggedInstance(handle=FakeHandle(iid), fingerprint=fingerprints[iid])
        for iid in host_of
    ]
    channel = OracleChannel(host_of)
    report = ScalableVerifier(channel).verify(tagged)
    found = {
        frozenset(h.instance_id for h in cluster) for cluster in report.clusters
    }
    assert found == true_clusters(host_of)


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_verifier_never_exceeds_pairwise_cost(scenario):
    host_of, fingerprints = scenario
    tagged = [
        TaggedInstance(handle=FakeHandle(iid), fingerprint=fingerprints[iid])
        for iid in host_of
    ]
    channel = OracleChannel(host_of)
    report = ScalableVerifier(channel).verify(tagged)
    n = len(host_of)
    # Even with adversarial fingerprints, cost stays within a small factor
    # of the pairwise bound (fallbacks are per-group).
    assert report.n_tests <= n * (n - 1) // 2 + 2 * n + 1


@given(scenarios())
@settings(max_examples=40, deadline=None)
def test_accurate_fingerprints_cost_linear_in_hosts(scenario):
    host_of, _ = scenario
    tagged = [
        TaggedInstance(handle=FakeHandle(iid), fingerprint=host_of[iid])
        for iid in host_of
    ]
    channel = OracleChannel(host_of)
    report = ScalableVerifier(channel).verify(tagged)
    n_hosts = len(set(host_of.values()))
    n = len(host_of)
    # O(M)-ish: chunk tests + merge tests + the step-3 sweep.
    assert report.n_tests <= 2 * (n // 2 + n_hosts) + 1
