"""Sandboxed execution environments.

Cloud Run offers two sandbox generations (paper §2.3):

* **Gen 1** (:class:`~repro.sandbox.gvisor.GVisorSandbox`): gVisor-style
  userspace kernel around a Linux container.  No hardware virtualization —
  unprivileged instructions like ``rdtsc`` and ``cpuid`` hit real hardware,
  while ``/proc`` and system calls are emulated.
* **Gen 2** (:class:`~repro.sandbox.microvm.MicroVMSandbox`): lightweight VM
  with hardware virtualization.  ``rdtsc`` is subject to TSC offsetting and
  ``cpuid`` is trapped, but the guest kernel exports the host's refined TSC
  frequency and the user has guest-root privileges.

Guest probe programs (see :mod:`repro.core.probes`) run against the common
:class:`~repro.sandbox.base.Sandbox` interface.  Neither generation
virtualizes the shared-hardware contention surface, so the covert-channel
ports (:class:`~repro.sandbox.base.ChannelPort`) used by the vectorized
CTest engine are generation-independent.
"""

from repro.sandbox.base import ChannelPort, Sandbox, TscPolicy
from repro.sandbox.gvisor import GVisorSandbox
from repro.sandbox.microvm import MicroVMSandbox
from repro.sandbox.syscalls import SyscallLayer

__all__ = [
    "ChannelPort",
    "Sandbox",
    "TscPolicy",
    "GVisorSandbox",
    "MicroVMSandbox",
    "SyscallLayer",
]
