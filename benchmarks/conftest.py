"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at full scale
(800-instance launches, the three US datacenters), prints a
paper-vs-measured comparison, and asserts the reproduction band: we match
*shape* — who wins, by roughly what factor, where crossovers fall — not the
authors' absolute testbed numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Append ``-s`` to see the regenerated tables inline.

The multi-cell benchmarks route through :mod:`repro.runner`; set
``REPRO_BENCH_JOBS=N`` to fan their simulation cells over N worker
processes and ``REPRO_BENCH_CACHE=1`` to reuse completed cells from the
on-disk cache (off by default — a cached benchmark measures cache reads,
not the simulation).
"""

from __future__ import annotations

import os

import pytest

from repro.runner import RunnerConfig


def bench_runner() -> RunnerConfig:
    """Runner policy for one benchmark, from the environment."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
    cache = os.environ.get("REPRO_BENCH_CACHE", "") == "1"
    return RunnerConfig(parallelism=jobs, cache_read=cache, cache_write=cache)


@pytest.fixture
def runner() -> RunnerConfig:
    """A fresh env-configured RunnerConfig; stats cover just this test."""
    return bench_runner()


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one timed execution.

    Experiment drivers are deterministic end-to-end simulations; repeating
    them only re-measures the same code path, so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def emit():
    """Print a regenerated table so `-s` shows it inline."""

    def _emit(text: str) -> None:
        print()
        print(text)

    return _emit
