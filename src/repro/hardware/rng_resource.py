"""Shared hardware random-number-generator contention resource.

The paper's co-location verification uses a covert channel built on
contention for the host's hardware RNG (RDRAND), chosen because the RNG is
rarely used by background workloads so the false-contention rate is under 1%
(paper §4.4.1).

The model: every container instance that currently *pressures* the RNG
registers itself here.  A pressuring instance observing the channel sees a
contention level equal to the total number of co-located pressurers
(including itself), occasionally perturbed by background activity.
"""

from __future__ import annotations

import numpy as np


class RngContentionResource:
    """Per-host RDRAND contention domain.

    Parameters
    ----------
    background_rate:
        Per-observation probability that unrelated host activity adds one
        unit of contention (paper: "less than 1%").
    drop_rate:
        Per-observation probability that scheduling noise makes a pressurer
        miss the contention it should have seen (its own unit still counts).
    """

    def __init__(self, background_rate: float = 0.005, drop_rate: float = 0.02) -> None:
        if not 0.0 <= background_rate < 1.0:
            raise ValueError(f"background_rate out of range: {background_rate!r}")
        if not 0.0 <= drop_rate < 1.0:
            raise ValueError(f"drop_rate out of range: {drop_rate!r}")
        self.background_rate = background_rate
        self.drop_rate = drop_rate
        self._pressurers: set[str] = set()

    def start_pressure(self, instance_id: str) -> None:
        """Register ``instance_id`` as actively hammering the RNG."""
        self._pressurers.add(instance_id)

    def stop_pressure(self, instance_id: str) -> None:
        """Unregister ``instance_id`` (no-op if it was not pressuring)."""
        self._pressurers.discard(instance_id)

    @property
    def pressurer_count(self) -> int:
        """Number of instances currently pressuring this host's RNG."""
        return len(self._pressurers)

    def current_pressurers(self) -> frozenset[str]:
        """Ids of the instances currently pressuring (provider telemetry)."""
        return frozenset(self._pressurers)

    def observe(self, instance_id: str, rng: np.random.Generator) -> int:
        """Return the contention level seen by one pressuring instance.

        The observation is the number of co-located pressurers (including
        the observer itself, which must be pressuring to measure), minus
        occasional scheduling drops of *other* pressurers' contributions,
        plus occasional background contention.
        """
        if instance_id not in self._pressurers:
            raise ValueError(
                f"instance {instance_id!r} must pressure the RNG before observing it"
            )
        others = len(self._pressurers) - 1
        seen_others = sum(1 for _ in range(others) if rng.random() >= self.drop_rate)
        background = 1 if rng.random() < self.background_rate else 0
        return 1 + seen_others + background
