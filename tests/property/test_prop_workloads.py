"""Property tests for the vectorized request-pattern series.

The background-traffic engine precomputes whole tenant schedules through
:meth:`~repro.cloud.workloads.RequestPattern.concurrency_series`; for every
deterministic pattern that series must agree point-by-point with the
scalar :meth:`~repro.cloud.workloads.RequestPattern.concurrency_at` the
foreground autoscaler calls.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cloud.workloads import (
    BurstLoad,
    ConstantLoad,
    DiurnalLoad,
    PoissonLoad,
    TraceLoad,
)

times_strategy = st.lists(
    st.floats(0.0, 1e6, allow_nan=False, allow_infinity=False),
    min_size=1,
    max_size=40,
)


def assert_series_matches_scalar(pattern, times):
    times = np.asarray(times, dtype=np.float64)
    series = pattern.concurrency_series(times)
    assert series.dtype == np.int64
    assert series.shape == times.shape
    expected = [pattern.concurrency_at(float(t)) for t in times]
    assert series.tolist() == expected
    assert (series >= 0).all()


@given(concurrency=st.integers(0, 50), times=times_strategy)
def test_constant_series_matches_scalar(concurrency, times):
    assert_series_matches_scalar(ConstantLoad(concurrency), times)


@given(
    trough=st.integers(0, 20),
    span=st.integers(0, 30),
    period_h=st.floats(0.5, 48.0),
    phase_h=st.floats(0.0, 48.0),
    times=times_strategy,
)
def test_diurnal_series_matches_scalar(trough, span, period_h, phase_h, times):
    pattern = DiurnalLoad(
        trough=trough,
        peak=trough + span,
        period_s=period_h * 3600.0,
        phase_s=phase_h * 3600.0,
    )
    assert_series_matches_scalar(pattern, times)
    series = pattern.concurrency_series(np.asarray(times))
    assert (series >= trough).all() and (series <= trough + span).all()


@given(
    base=st.integers(0, 10),
    extra=st.integers(0, 40),
    start=st.floats(0.0, 1e4),
    duration=st.floats(0.0, 1e4),
    times=times_strategy,
)
def test_burst_series_matches_scalar(base, extra, start, duration, times):
    pattern = BurstLoad(
        base=base,
        burst=base + extra,
        burst_start_s=start,
        burst_duration_s=duration,
    )
    assert_series_matches_scalar(pattern, times)


@given(
    samples=st.lists(
        st.tuples(st.floats(0.0, 1e5), st.integers(0, 100)),
        min_size=1,
        max_size=30,
    ),
    times=times_strategy,
)
def test_trace_series_matches_scalar(samples, times):
    samples = sorted(samples)
    pattern = TraceLoad([t for t, _ in samples], [c for _, c in samples])
    assert_series_matches_scalar(pattern, times)


def test_burst_boundaries_are_half_open():
    pattern = BurstLoad(base=1, burst=9, burst_start_s=10.0, burst_duration_s=5.0)
    series = pattern.concurrency_series(np.asarray([9.999, 10.0, 14.999, 15.0]))
    assert series.tolist() == [1, 9, 9, 1]


@given(rate=st.floats(0.0, 10.0), service_s=st.floats(0.0, 30.0))
def test_poisson_series_is_reproducible_per_seed(rate, service_s):
    times = np.arange(32, dtype=np.float64)
    a = PoissonLoad(rate, service_s, rng=np.random.default_rng(5))
    b = PoissonLoad(rate, service_s, rng=np.random.default_rng(5))
    series_a = a.concurrency_series(times)
    assert np.array_equal(series_a, b.concurrency_series(times))
    assert (series_a >= 0).all()


class TestValidation:
    def test_negative_constant_rejected(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1)

    def test_diurnal_trough_above_peak_rejected(self):
        with pytest.raises(ValueError):
            DiurnalLoad(trough=5, peak=4)

    def test_diurnal_nonpositive_period_rejected(self):
        with pytest.raises(ValueError):
            DiurnalLoad(trough=1, peak=2, period_s=0.0)

    def test_burst_below_base_rejected(self):
        with pytest.raises(ValueError):
            BurstLoad(base=5, burst=4, burst_start_s=0.0, burst_duration_s=1.0)

    def test_trace_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceLoad([0.0, 1.0], [1])

    def test_trace_descending_times_rejected(self):
        with pytest.raises(ValueError):
            TraceLoad([1.0, 0.0], [1, 2])

    def test_trace_negative_concurrency_rejected(self):
        with pytest.raises(ValueError):
            TraceLoad([0.0], [-1])

    def test_poisson_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonLoad(-1.0, 1.0)
