"""Figure 6: idle instances after disconnecting from 800 instances.

Paper: preserved for the first ~2 minutes, then gradually terminated;
practically all gone ~12 minutes after disconnecting.
"""

from repro.experiments import idle_termination as it
from repro.experiments.report import format_series

from benchmarks.conftest import run_once

CONFIG = it.IdleTerminationConfig()


def test_fig06_idle_termination(benchmark, emit):
    result = run_once(benchmark, lambda: it.run(CONFIG))

    emit(
        format_series(
            "Figure 6 — idle instances vs time since disconnecting",
            ("minutes", "idle_instances"),
            [(t, n) for t, n in result.series if t == int(t)],
        )
    )

    assert result.remaining_after(1.9) == CONFIG.instances, "grace period holds"
    mid = result.remaining_after(7.0)
    assert 0 < mid < CONFIG.instances, "termination is gradual"
    assert result.remaining_after(12.5) <= 0.01 * CONFIG.instances
    assert result.remaining_after(15.0) == 0, "documented 15-minute bound"
    # Decay is monotone.
    counts = [n for _t, n in result.series]
    assert all(a >= b for a, b in zip(counts, counts[1:]))
