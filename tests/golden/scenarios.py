"""Canonical telemetry scenarios behind the golden-trace regression tests.

Each scenario runs a small, fully seeded workload through the *real*
stack — experiment span, :func:`~repro.runner.pool.run_cells`, campaign
phases, launches, CTest batches, verification waves — under an enabled
:class:`~repro.telemetry.Telemetry` handle, and returns the handle for
export.  Because every simulated timestamp and span id derives from the
seeds alone, the deterministic JSONL export must be byte-identical run
to run; the checked-in ``*.jsonl`` files pin that down.

Cell functions live at module level so worker processes can unpickle
them: the scenarios are exercised serially *and* pooled, and the two
traces must not differ.
"""

from __future__ import annotations

from repro import units
from repro.cloud.services import ServiceConfig
from repro.cloud.topology import AccountPlacementPlan, RegionProfile
from repro.core.attack.campaign import ColocationCampaign
from repro.core.attack.locator import TargetVictimLocator, probe_latency_threshold
from repro.core.attack.strategies import optimized_launch
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.experiments.base import default_env
from repro.faults import FaultPlan, FaultSpec
from repro.runner import CellSpec, RunnerConfig, run_cells
from repro.telemetry import Telemetry, telemetry_context


def _tiny_profile() -> RegionProfile:
    """The test suite's standard tiny region (see ``tests/conftest.py``)."""
    return RegionProfile(
        name="tiny",
        n_hosts=30,
        active_hosts=20,
        shard_size=5,
        helper_recruit_fraction=0.25,
        helper_pool_cap=12,
        hot_min_concurrency=8,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    )


def _strategy(client):
    return optimized_launch(
        client,
        n_services=2,
        launches=3,
        instances_per_service=12,
        interval_s=10 * units.MINUTE,
    )


def attack_cell(config, seed):
    """One end-to-end co-location campaign on the tiny profile."""
    env = default_env(profile=_tiny_profile(), seed=seed)
    campaign = ColocationCampaign(
        attacker=env.attacker,
        victim=env.victim("account-2"),
        strategy=_strategy,
    )
    result = campaign.run(n_victim_instances=int(config["victims"]))
    return {
        "coverage": result.coverage,
        "shared_hosts": result.shared_hosts,
        "tests": result.verification.n_tests,
    }


def verification_cell(config, seed):
    """Fingerprint + scalable verification of one fleet on the tiny profile."""
    env = default_env(profile=_tiny_profile(), seed=seed)
    client = env.attacker
    service = client.deploy(ServiceConfig(name="golden"))
    handles = client.connect(service, int(config["instances"]))
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    tagged = [TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs]
    report = ScalableVerifier(RngCovertChannel()).verify(tagged)
    return {"hosts": report.n_hosts, "tests": report.n_tests}


def locator_cell(config, seed):
    """One uncontrolled-victim localization on the tiny profile."""
    env = default_env(profile=_tiny_profile(), seed=seed)
    outcome = _strategy(env.attacker)
    victim = env.victim("account-2")
    victim.deploy(ServiceConfig(name="victim"))
    victim.connect("victim", 1)
    pairs = fingerprint_gen1_instances(outcome.handles, p_boot=1.0)
    tagged = [
        TaggedInstance(h, fp, fp.cpu_model) for h, fp in pairs if h.alive
    ]
    processing = float(config["processing"])
    locator = TargetVictimLocator(
        probe=lambda: env.attacker.probe("account-2/victim", processing),
        latency_threshold_s=probe_latency_threshold(processing),
        verifier=ScalableVerifier(RngCovertChannel()),
    )
    result = locator.locate(tagged)
    return {
        "converged": result.converged,
        "failure": result.failure,
        "rounds": result.rounds,
        "probes": result.probes,
    }


def attack_trace(
    parallelism: int = 0, cache_dir=None, cache: bool = False
) -> Telemetry:
    """Tiny-profile end-to-end attack, two campaign cells."""
    telemetry = Telemetry()
    with telemetry_context(telemetry):
        runner = RunnerConfig(
            parallelism=parallelism,
            cache_read=cache,
            cache_write=cache,
            cache_dir=cache_dir,
        )
        specs = [
            CellSpec(
                experiment="golden-attack",
                fn=attack_cell,
                config={"victims": 24},
                seed=seed,
                label=f"seed{seed}",
            )
            for seed in (11, 12)
        ]
        with telemetry.span("experiment", experiment="golden-attack", scale="tiny"):
            run_cells(specs, runner)
    return telemetry


def faulted_verification_trace(parallelism: int = 0) -> Telemetry:
    """Fault-injected verification run (launch errors, CTest noise/deaths,
    cell failures with retries) — exercises the recovery paths' spans."""
    telemetry = Telemetry()
    with telemetry_context(telemetry):
        plan = FaultPlan(
            FaultSpec(
                launch_error_rate=0.05,
                ctest_noise_rate=0.08,
                ctest_death_rate=0.04,
                cell_error_rate=0.25,
                seed=2,
            )
        )
        runner = RunnerConfig(
            parallelism=parallelism, fault_plan=plan, max_retries=3
        )
        specs = [
            CellSpec(
                experiment="golden-faulted",
                fn=verification_cell,
                config={"instances": 18},
                seed=seed,
                label=f"seed{seed}",
            )
            for seed in (3, 4)
        ]
        with telemetry.span(
            "experiment", experiment="golden-faulted", scale="tiny"
        ):
            run_cells(specs, runner)
    return telemetry


def locator_trace(parallelism: int = 0) -> Telemetry:
    """Tiny-profile victim localization, two cells — pins the ``locate``
    and ``locate.round`` span structure alongside the campaign spans."""
    telemetry = Telemetry()
    with telemetry_context(telemetry):
        runner = RunnerConfig(parallelism=parallelism)
        specs = [
            CellSpec(
                experiment="golden-locator",
                fn=locator_cell,
                config={"processing": 0.05},
                seed=seed,
                label=f"seed{seed}",
            )
            for seed in (21, 22)
        ]
        with telemetry.span(
            "experiment", experiment="golden-locator", scale="tiny"
        ):
            run_cells(specs, runner)
    return telemetry


SCENARIOS = {
    "attack_trace": attack_trace,
    "faulted_verification_trace": faulted_verification_trace,
    "locator_trace": locator_trace,
}
