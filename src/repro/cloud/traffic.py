"""Open-loop multi-tenant background traffic for a live datacenter.

Every coverage, census, and locator experiment historically ran against a
dead-quiet region: the only load was whatever the attacker launched.  Real
serverless campaigns contend with thousands of other tenants whose
services scale up and down continuously (the recruiter, autoscaler, and
idle-termination machinery of §2.2/§5.1 exist *because* regions are
busy).  This module adds that background world:

* :class:`TenantPopulation` — a batched tenant generator.  Service
  configurations are NumPy-sampled in a few array draws, and each
  tenant's demand schedule is precomputed up front as one vectorized
  :meth:`~repro.cloud.workloads.RequestPattern.concurrency_series` call —
  no per-tick Python in the simulation loop.
* :class:`BackgroundDriver` — an event-driven autoscale driver.  Instead
  of the blocking :meth:`~repro.cloud.autoscaler.Autoscaler.drive` loop
  (one tenant owns the clock), evaluation events are registered on the
  orchestrator's :class:`~repro.simtime.scheduler.EventScheduler`, so
  thousands of tenants and the attack interleave on one
  :class:`~repro.simtime.clock.SimClock`.  Tenants sharing an evaluation
  phase are batched: one event reads their targets as a fancy-indexed
  slice of the precomputed schedule matrix, compares against the columnar
  :class:`~repro.fleet.ServiceStateStore` ACTIVE counts, and only
  tenants whose target actually changed pay for an orchestrator call.

Determinism contract
--------------------
Interleaved tenants must not perturb the foreground's randomness, and
traffic runs must reproduce under any event ordering (``--jobs``,
``PYTHONHASHSEED``).  Three rules deliver that:

* tenant *configurations* are drawn once, up front, from a dedicated
  seeded generator (fixed draw order at build time);
* tenant *schedules* come from per-tenant generators seeded by hashing
  ``(seed, tenant)`` — FaultPlan-style — so one tenant's series never
  depends on another's;
* runtime randomness (idle-reap deadlines) is routed through
  :meth:`~repro.cloud.orchestrator.Orchestrator.set_idle_deadline_stream`
  to pure :func:`repro.faults.hashed_uniform` draws keyed by instance id,
  consuming nothing from the shared RNG.  With traffic off, no shared-RNG
  draw order changes anywhere — the golden traces stay byte-identical.

The engine is *open-loop*: schedules are fixed ahead of time and scale
operations never sleep the shared clock (``sleep_startup=False``), so a
background cold start does not stall the foreground.  Demand the platform
rejects (:class:`~repro.errors.NoCapacityError` under extreme
utilization) is dropped and counted, not retried.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.cloud.accounts import Account
from repro.cloud.orchestrator import Orchestrator
from repro.cloud.services import CONTAINER_SIZES, Service, ServiceConfig
from repro.cloud.workloads import (
    ConstantLoad,
    DiurnalLoad,
    PoissonLoad,
    RequestPattern,
    TraceLoad,
)
from repro.errors import CloudError, LaunchError, NoCapacityError
from repro.faults import hashed_uniform
from repro.simtime.scheduler import ScheduledEvent
from repro.telemetry import current_telemetry

#: Pattern kinds a tenant may be assigned, in weight order.
PATTERN_KINDS = ("constant", "diurnal", "bursty", "poisson")


def _tenant_seed(seed: int, name: str) -> int:
    """Per-tenant generator seed, hashed so tenants are independent."""
    return int(hashed_uniform(seed, "traffic-tenant", name) * 2**63)


def _idle_stream(seed: int, instance_id: str) -> float:
    """The population's idle-deadline stream (module-level + partial, not a
    closure, so orchestrator state stays picklable for world snapshots)."""
    return hashed_uniform(seed, "traffic-idle", instance_id)


@dataclass(frozen=True)
class TrafficConfig:
    """Shape of one background-tenant population.

    Attributes
    ----------
    n_tenants:
        Number of background services (one service per tenant account).
    seed:
        Master seed; every configuration and schedule draw derives from it.
    duration_s:
        How long evaluation events keep firing after :meth:`start`.
    evaluation_period_s:
        Per-tenant autoscale cadence (matches the foreground autoscaler).
    mean_concurrency:
        Mean *instance-level* demand per tenant; individual tenants draw a
        mean in ``[0.5, 1.5]`` of this.
    pattern_weights:
        Sampling weights over :data:`PATTERN_KINDS`.
    concurrency_choices:
        Per-instance request concurrency options (the paper pins the
        victim's to 1; background services are under no such constraint).
    size_names / size_weights:
        Container-size mix (:data:`~repro.cloud.services.CONTAINER_SIZES`).
    max_instances:
        Per-tenant autoscale cap.
    phase_groups:
        Distinct evaluation phases within one period.  Tenants in the
        same group are evaluated by one batched event.
    """

    n_tenants: int = 200
    seed: int = 0
    duration_s: float = 2 * units.HOUR
    evaluation_period_s: float = 15.0
    mean_concurrency: float = 2.0
    pattern_weights: tuple[float, ...] = (0.15, 0.35, 0.25, 0.25)
    concurrency_choices: tuple[int, ...] = (1, 2, 4)
    size_names: tuple[str, ...] = ("Pico", "Small", "Medium")
    size_weights: tuple[float, ...] = (0.30, 0.55, 0.15)
    max_instances: int = 20
    phase_groups: int = 15

    def __post_init__(self) -> None:
        if self.n_tenants < 0:
            raise CloudError(f"n_tenants must be >= 0, got {self.n_tenants}")
        if self.duration_s <= 0:
            raise CloudError(f"duration_s must be positive, got {self.duration_s}")
        if self.evaluation_period_s <= 0:
            raise CloudError(
                f"evaluation_period_s must be positive, got {self.evaluation_period_s}"
            )
        if len(self.pattern_weights) != len(PATTERN_KINDS):
            raise CloudError(
                f"pattern_weights needs {len(PATTERN_KINDS)} entries "
                f"(one per {PATTERN_KINDS}), got {len(self.pattern_weights)}"
            )
        if len(self.size_names) != len(self.size_weights):
            raise CloudError("size_names and size_weights must have equal length")
        for name in self.size_names:
            if name not in CONTAINER_SIZES:
                raise CloudError(f"unknown container size {name!r}")
        if not 1 <= self.phase_groups:
            raise CloudError(f"phase_groups must be >= 1, got {self.phase_groups}")
        if self.max_instances < 1:
            raise CloudError(f"max_instances must be >= 1, got {self.max_instances}")


@dataclass(frozen=True)
class TenantSpec:
    """One generated background tenant."""

    index: int
    account_id: str
    kind: str
    size: str
    concurrency: int
    phase_s: float

    @property
    def service_name(self) -> str:
        return "svc"


class TenantPopulation:
    """Batch-generated tenants with precomputed demand schedules.

    ``demand[i, k]`` is tenant ``i``'s request concurrency at its ``k``-th
    evaluation slot (nominal time ``phase_s + k * evaluation_period_s``)
    and ``targets[i, k]`` the resulting instance target,
    ``ceil(demand / concurrency)`` clamped to ``max_instances`` — the same
    arithmetic as :meth:`~repro.cloud.autoscaler.Autoscaler.target_for`.
    Both are ``(n_tenants, n_slots)`` int64 matrices, built by one
    vectorized ``concurrency_series`` call per tenant at generation time.
    """

    def __init__(
        self,
        config: TrafficConfig,
        specs: list[TenantSpec],
        patterns: list[RequestPattern],
        demand: np.ndarray,
        targets: np.ndarray,
    ) -> None:
        self.config = config
        self.specs = specs
        self.patterns = patterns
        self.demand = demand
        self.targets = targets

    @property
    def n_tenants(self) -> int:
        return len(self.specs)

    @property
    def n_slots(self) -> int:
        return int(self.targets.shape[1])

    @classmethod
    def generate(cls, config: TrafficConfig) -> "TenantPopulation":
        """Sample a population (a few array draws, then one series per
        tenant — no per-tick work)."""
        n = config.n_tenants
        period = config.evaluation_period_s
        n_slots = int(math.floor(config.duration_s / period + 1e-9)) + 1

        rng = np.random.default_rng(_tenant_seed(config.seed, "population"))
        pattern_p = np.asarray(config.pattern_weights, dtype=np.float64)
        pattern_p = pattern_p / pattern_p.sum()
        kinds = rng.choice(len(PATTERN_KINDS), size=n, p=pattern_p)
        size_p = np.asarray(config.size_weights, dtype=np.float64)
        size_p = size_p / size_p.sum()
        sizes = rng.choice(len(config.size_names), size=n, p=size_p)
        concurrency = rng.choice(
            np.asarray(config.concurrency_choices, dtype=np.int64), size=n
        )
        means = rng.uniform(0.5, 1.5, size=n) * config.mean_concurrency
        phases = (
            rng.integers(0, config.phase_groups, size=n)
            * (period / config.phase_groups)
        )
        diurnal_periods = rng.uniform(2 * units.HOUR, 26 * units.HOUR, size=n)
        diurnal_phases = rng.uniform(0.0, 1.0, size=n) * diurnal_periods

        specs: list[TenantSpec] = []
        patterns: list[RequestPattern] = []
        demand = np.zeros((n, n_slots), dtype=np.int64)
        slots = np.arange(n_slots, dtype=np.float64) * period
        # Poisson demand is held for a minute's worth of slots so targets
        # wander instead of flapping on every evaluation.
        hold = max(1, int(round(60.0 / period)))
        held_slots = slots[::hold]

        for i in range(n):
            spec = TenantSpec(
                index=i,
                account_id=f"bg-{i:05d}",
                kind=PATTERN_KINDS[int(kinds[i])],
                size=config.size_names[int(sizes[i])],
                concurrency=int(concurrency[i]),
                phase_s=float(phases[i]),
            )
            # Request-level mean: instance-level mean times the per-instance
            # concurrency, so the expected instance target is size-invariant.
            mean = float(means[i]) * spec.concurrency
            tenant_rng = np.random.default_rng(
                _tenant_seed(config.seed, spec.account_id)
            )
            pattern = _build_pattern(
                spec.kind, mean, tenant_rng,
                duration_s=config.duration_s,
                diurnal_period_s=float(diurnal_periods[i]),
                diurnal_phase_s=float(diurnal_phases[i]),
            )
            if spec.kind == "poisson":
                series = np.repeat(
                    pattern.concurrency_series(held_slots), hold
                )[:n_slots]
            else:
                series = pattern.concurrency_series(slots + spec.phase_s)
            demand[i] = series
            specs.append(spec)
            patterns.append(pattern)

        conc = np.asarray([s.concurrency for s in specs], dtype=np.int64)
        if n:
            targets = np.minimum(
                -(-demand // conc[:, None]),  # ceil division
                config.max_instances,
            )
        else:
            targets = np.zeros((0, n_slots), dtype=np.int64)
        return cls(config, specs, patterns, demand, targets)


def _build_pattern(
    kind: str,
    mean: float,
    rng: np.random.Generator,
    *,
    duration_s: float,
    diurnal_period_s: float,
    diurnal_phase_s: float,
) -> RequestPattern:
    """One tenant's request pattern, reusing the workloads.py models."""
    if kind == "constant":
        return ConstantLoad(max(0, int(round(mean))))
    if kind == "diurnal":
        trough = int(round(0.25 * mean))
        peak = max(trough, int(round(1.75 * mean)))
        return DiurnalLoad(
            trough=trough,
            peak=peak,
            period_s=diurnal_period_s,
            phase_s=diurnal_phase_s,
        )
    if kind == "bursty":
        return TraceLoad.bursty(
            duration_s=duration_s + units.MINUTE,
            step_s=units.MINUTE,
            base=max(1, int(round(mean))),
            rng=rng,
        )
    if kind == "poisson":
        return PoissonLoad(arrivals_per_s=mean / 10.0, service_time_s=10.0, rng=rng)
    raise CloudError(f"unknown pattern kind {kind!r}")


@dataclass
class TrafficStats:
    """Driver-side counters (the telemetry ``traffic.*`` counters mirror
    these when a telemetry handle is installed)."""

    evaluations: int = 0
    requests: int = 0
    scale_outs: int = 0
    scale_ins: int = 0
    rejected: int = 0


@dataclass
class _PhaseGroup:
    """Tenants sharing an evaluation phase, driven by one event chain."""

    phase_s: float
    tenants: np.ndarray
    event: ScheduledEvent | None = None
    next_slot: int = 0


@dataclass
class BackgroundDriver:
    """Event-driven autoscaling of a whole tenant population.

    Construction is cheap; :meth:`start` deploys every tenant service and
    registers the per-phase evaluation events.  From then on the tenants
    live entirely inside the scheduler: any ``clock.sleep`` — the
    attacker's launches, CTest windows, probe waits — drains whichever
    evaluations came due, exactly once each, in ``(when, registration)``
    order.
    """

    orchestrator: Orchestrator
    population: TenantPopulation
    stats: TrafficStats = field(default_factory=TrafficStats)

    def __post_init__(self) -> None:
        self._services: list[Service] = []
        self._state_idx = np.zeros(self.population.n_tenants, dtype=np.int64)
        self._last_record = np.full(self.population.n_tenants, -np.inf)
        self._groups: list[_PhaseGroup] = []
        self._t0 = 0.0
        self._started = False
        profile = self.orchestrator.datacenter.profile
        # Steady tenants refresh their demand history at half the hotness
        # window so is_hot still sees them without per-slot scale calls.
        self._refresh_s = profile.hot_window / 2.0

    @property
    def started(self) -> bool:
        return self._started

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Deploy the population and begin open-loop evaluation."""
        if self._started:
            raise CloudError("background driver already started")
        self._started = True
        orch = self.orchestrator
        config = self.population.config
        idle_stream = functools.partial(_idle_stream, config.seed)

        for spec in self.population.specs:
            orch.register_account(Account(spec.account_id))
            service = orch.deploy_service(
                spec.account_id,
                ServiceConfig(
                    name=spec.service_name,
                    size=CONTAINER_SIZES[spec.size],
                    max_instances=config.max_instances,
                    concurrency=spec.concurrency,
                ),
            )
            orch.set_idle_deadline_stream(service, idle_stream)
            self._state_idx[spec.index] = orch.service_state.index_of(
                service.qualified_name
            )
            self._services.append(service)

        self._t0 = orch.clock.now()
        by_phase: dict[float, list[int]] = {}
        for spec in self.population.specs:
            by_phase.setdefault(spec.phase_s, []).append(spec.index)
        for phase in sorted(by_phase):
            group = _PhaseGroup(
                phase_s=phase,
                tenants=np.asarray(by_phase[phase], dtype=np.int64),
            )
            self._groups.append(group)
            self._schedule(group)

    def stop(self) -> None:
        """Cancel all pending evaluation events (instances stay up)."""
        for group in self._groups:
            if group.event is not None:
                group.event.cancel()
                group.event = None

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _schedule(self, group: _PhaseGroup) -> None:
        when = self._t0 + group.phase_s + group.next_slot * (
            self.population.config.evaluation_period_s
        )
        in_horizon = (
            group.next_slot < self.population.n_slots
            and when - self._t0 <= self.population.config.duration_s
        )
        if not in_horizon:
            group.event = None
            return
        # A partial of the bound method (not a lambda) keeps the pending
        # event picklable for world snapshots.
        group.event = self.orchestrator.scheduler.call_at(
            when, functools.partial(self._evaluate, group)
        )

    def _evaluate(self, group: _PhaseGroup) -> None:
        slot = group.next_slot
        tenants = group.tenants
        now = self.orchestrator.clock.now()
        telemetry = current_telemetry()

        targets = self.population.targets[tenants, slot]
        demand = self.population.demand[tenants, slot]
        active = self.orchestrator.service_state.active_for(
            self._state_idx[tenants]
        )
        requested = int(demand.sum())
        telemetry.count("traffic.evaluations", int(tenants.size))
        telemetry.count("traffic.requests", requested)
        self.stats.evaluations += int(tenants.size)
        self.stats.requests += requested

        for pos in np.flatnonzero(targets != active):
            tenant = int(tenants[pos])
            target = int(targets[pos])
            try:
                self.orchestrator.scale_to_count(
                    self._services[tenant], target, sleep_startup=False
                )
            except (NoCapacityError, LaunchError):
                # Open loop: unservable demand is dropped, not retried.
                self.stats.rejected += 1
                telemetry.count("traffic.rejected_scales")
                continue
            if target > int(active[pos]):
                self.stats.scale_outs += 1
            else:
                self.stats.scale_ins += 1
            self._last_record[tenant] = now

        stale = (
            (targets == active)
            & (targets > 0)
            & (now - self._last_record[tenants] >= self._refresh_s)
        )
        for pos in np.flatnonzero(stale):
            tenant = int(tenants[pos])
            self.orchestrator.note_demand(
                self._services[tenant], int(targets[pos])
            )
            self._last_record[tenant] = now

        group.next_slot = slot + 1
        self._schedule(group)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of serving-pool capacity slots currently committed."""
        fleet = self.orchestrator.fleet
        pool = fleet.pool_order
        capacity = float(fleet.capacity_slots[pool].sum())
        if capacity <= 0.0:
            return 0.0
        return float(fleet.load_slots[pool].sum()) / capacity

    def background_instances(self) -> int:
        """Alive background instances across the whole population."""
        state = self.orchestrator.service_state
        return sum(
            state.alive_count(int(idx))
            for idx in self._state_idx[: len(self._services)]
        )
