"""Figure 5: fingerprint expiration time CDF (§4.4.2).

Track one long-running instance per apparent host for a week, recording the
derived boot time every hour; fit the linear drift and extrapolate when the
rounded boot time crosses a rounding boundary.

Paper reference: drift is strongly linear (minimum |r| = 0.9997 across all
histories); most fingerprints last several days; on average ~10% expire
within about 2 days.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import units
from repro.analysis.distributions import cdf_at
from repro.core.attack.tracking import HostTracker
from repro.experiments.base import default_env

PAPER_MIN_ABS_R = 0.9997
PAPER_DAYS_TO_10PCT_EXPIRED = 2.0


@dataclass(frozen=True)
class ExpirationConfig:
    """Configuration for the Fig. 5 expiration study."""

    regions: tuple[str, ...] = ("us-east1", "us-central1", "us-west1")
    n_launch: int = 100
    duration_days: float = 7.0
    cadence_hours: float = 1.0
    p_boot: float = 1.0
    base_seed: int = 300


@dataclass
class RegionExpiration:
    """Per-region expiration statistics."""

    region: str
    n_histories: int
    min_abs_r: float
    expiration_days: list[float] = field(default_factory=list)

    def cdf(self, day_grid: tuple[float, ...]) -> list[float]:
        """Fraction of fingerprints expired by each day mark."""
        return cdf_at(self.expiration_days, list(day_grid))

    @property
    def days_to_10pct_expired(self) -> float:
        """Time until 10% of fingerprints have expired."""
        return float(np.percentile(self.expiration_days, 10))


@dataclass
class ExpirationResult:
    """Outcome of the Fig. 5 experiment."""

    regions: list[RegionExpiration] = field(default_factory=list)

    @property
    def min_abs_r(self) -> float:
        return min(r.min_abs_r for r in self.regions)

    @property
    def mean_days_to_10pct_expired(self) -> float:
        return float(np.mean([r.days_to_10pct_expired for r in self.regions]))


def run(config: ExpirationConfig = ExpirationConfig()) -> ExpirationResult:
    """Run the Fig. 5 fingerprint-expiration study."""
    result = ExpirationResult()
    for idx, region in enumerate(config.regions):
        env = default_env(region, seed=config.base_seed + idx)
        tracker = HostTracker(env.attacker, n_launch=config.n_launch)
        histories = tracker.run(
            duration_s=config.duration_days * units.DAY,
            cadence_s=config.cadence_hours * units.HOUR,
        )
        fits = [history.fit_drift() for history in histories]
        expirations = [
            history.expiration_seconds(config.p_boot) / units.DAY
            for history in histories
        ]
        result.regions.append(
            RegionExpiration(
                region=region,
                n_histories=len(histories),
                min_abs_r=min(abs(fit.r_value) for fit in fits),
                expiration_days=expirations,
            )
        )
    return result
