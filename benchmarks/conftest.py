"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at full scale
(800-instance launches, the three US datacenters), prints a
paper-vs-measured comparison, and asserts the reproduction band: we match
*shape* — who wins, by roughly what factor, where crossovers fall — not the
authors' absolute testbed numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Append ``-s`` to see the regenerated tables inline.

The multi-cell benchmarks route through :mod:`repro.runner`; set
``REPRO_BENCH_JOBS=N`` to fan their simulation cells over N worker
processes and ``REPRO_BENCH_CACHE=1`` to reuse completed cells from the
on-disk cache (off by default — a cached benchmark measures cache reads,
not the simulation).

Set ``REPRO_BENCH_METRICS_DIR=DIR`` to collect telemetry during each
benchmark and drop a per-figure metric snapshot (counters, gauges,
timing histograms) as ``DIR/BENCH_<test>.metrics.json`` — handy for
comparing instance-launch volume, CTest counts, or cell timings across
harness revisions.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path

import pytest

from repro.runner import RunnerConfig
from repro.telemetry import Telemetry, metrics_snapshot, telemetry_context


def bench_runner() -> RunnerConfig:
    """Runner policy for one benchmark, from the environment."""
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "0"))
    cache = os.environ.get("REPRO_BENCH_CACHE", "") == "1"
    return RunnerConfig(parallelism=jobs, cache_read=cache, cache_write=cache)


@pytest.fixture
def runner() -> RunnerConfig:
    """A fresh env-configured RunnerConfig; stats cover just this test."""
    return bench_runner()


def run_once(benchmark, fn):
    """Benchmark ``fn`` with exactly one timed execution.

    Experiment drivers are deterministic end-to-end simulations; repeating
    them only re-measures the same code path, so one round suffices.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(autouse=True)
def _bench_metrics(request):
    """Snapshot each benchmark's telemetry metrics when asked to.

    With ``REPRO_BENCH_METRICS_DIR`` unset this activates nothing: the
    ambient handle stays :data:`~repro.telemetry.NULL_TELEMETRY` and the
    benchmark measures the uninstrumented path.
    """
    directory = os.environ.get("REPRO_BENCH_METRICS_DIR")
    if not directory:
        yield
        return
    telemetry = Telemetry()
    with telemetry_context(telemetry):
        yield
    out_dir = Path(directory)
    out_dir.mkdir(parents=True, exist_ok=True)
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    path = out_dir / f"BENCH_{name}.metrics.json"
    path.write_text(
        json.dumps(metrics_snapshot(telemetry), indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


@pytest.fixture
def emit():
    """Print a regenerated table so `-s` shows it inline."""

    def _emit(text: str) -> None:
        print()
        print(text)

    return _emit
