"""Unit tests for request workload patterns and the autoscaler."""

import numpy as np
import pytest

from repro import units
from repro.cloud.autoscaler import Autoscaler
from repro.cloud.services import ServiceConfig
from repro.cloud.workloads import (
    BurstLoad,
    ConstantLoad,
    DiurnalLoad,
    PoissonLoad,
    TraceLoad,
)


class TestPatterns:
    def test_constant(self):
        assert ConstantLoad(7).concurrency_at(0) == 7
        assert ConstantLoad(7).concurrency_at(1e6) == 7

    def test_constant_rejects_negative(self):
        with pytest.raises(ValueError):
            ConstantLoad(-1)

    def test_diurnal_trough_and_peak(self):
        load = DiurnalLoad(trough=10, peak=100, period_s=units.DAY)
        assert load.concurrency_at(0) == 10
        assert load.concurrency_at(units.DAY / 2) == 100
        assert load.concurrency_at(units.DAY) == 10

    def test_diurnal_midpoint(self):
        load = DiurnalLoad(trough=0, peak=100, period_s=units.DAY)
        assert load.concurrency_at(units.DAY / 4) == 50

    def test_diurnal_validation(self):
        with pytest.raises(ValueError):
            DiurnalLoad(trough=10, peak=5)
        with pytest.raises(ValueError):
            DiurnalLoad(trough=1, peak=2, period_s=0)

    def test_burst_window(self):
        load = BurstLoad(base=5, burst=50, burst_start_s=100.0, burst_duration_s=60.0)
        assert load.concurrency_at(99.0) == 5
        assert load.concurrency_at(100.0) == 50
        assert load.concurrency_at(159.0) == 50
        assert load.concurrency_at(160.0) == 5

    def test_burst_validation(self):
        with pytest.raises(ValueError):
            BurstLoad(base=10, burst=5, burst_start_s=0, burst_duration_s=1)

    def test_trace_holds_last_value(self):
        trace = TraceLoad([0.0, 10.0, 20.0], [5, 8, 3])
        assert trace.concurrency_at(0.0) == 5
        assert trace.concurrency_at(9.9) == 5
        assert trace.concurrency_at(10.0) == 8
        assert trace.concurrency_at(15.0) == 8
        assert trace.concurrency_at(99.0) == 3

    def test_trace_validation(self):
        with pytest.raises(ValueError):
            TraceLoad([0.0, 1.0], [1])
        with pytest.raises(ValueError):
            TraceLoad([], [])
        with pytest.raises(ValueError):
            TraceLoad([1.0, 0.5], [1, 2])

    def test_bursty_trace_generator(self):
        trace = TraceLoad.bursty(
            duration_s=600.0, step_s=10.0, base=20,
            rng=np.random.default_rng(3),
        )
        values = [trace.concurrency_at(t) for t in range(0, 600, 10)]
        assert all(v >= 0 for v in values)
        # The baseline hovers near base and bursts exceed it sharply.
        assert 10 < np.median(values) < 30
        assert max(values) > 2 * np.median(values)

    def test_poisson_mean(self):
        load = PoissonLoad(
            arrivals_per_s=50.0, service_time_s=0.2, rng=np.random.default_rng(1)
        )
        samples = [load.concurrency_at(t) for t in range(500)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.15)


class TestAutoscaler:
    def make(self, env, concurrency=1, max_instances=100):
        service = env.orchestrator.deploy_service(
            "account-1",
            ServiceConfig(name="auto", concurrency=concurrency, max_instances=max_instances),
        )
        return Autoscaler(env.orchestrator, service, evaluation_period_s=15.0), service

    def test_follows_constant_load(self, tiny_env):
        scaler, _service = self.make(tiny_env)
        trace = scaler.drive(ConstantLoad(12), duration_s=60.0)
        assert all(p.active_instances == 12 for p in trace.points[1:])

    def test_target_respects_per_instance_concurrency(self, tiny_env):
        scaler, _service = self.make(tiny_env, concurrency=10)
        assert scaler.target_for(95) == 10
        assert scaler.target_for(100) == 10
        assert scaler.target_for(101) == 11

    def test_target_clamped_to_max_instances(self, tiny_env):
        scaler, _service = self.make(tiny_env, max_instances=20)
        assert scaler.target_for(10_000) == 20

    def test_scale_out_and_in_on_burst(self, tiny_env):
        scaler, service = self.make(tiny_env)
        pattern = BurstLoad(base=4, burst=20, burst_start_s=60.0, burst_duration_s=120.0)
        trace = scaler.drive(pattern, duration_s=300.0)
        assert trace.peak_instances == 20
        active_after = [p.active_instances for p in trace.points if p.elapsed_s > 200]
        assert all(a == 4 for a in active_after)

    def test_scaled_in_instances_idle_then_die(self, tiny_env):
        scaler, service = self.make(tiny_env)
        scaler.drive(ConstantLoad(15), duration_s=30.0)
        orch = tiny_env.orchestrator
        orch.scale_to(service, 5)
        alive = orch.alive_instances(service)
        assert len(alive) == 15  # extras idle, not dead
        tiny_env.clock.sleep(tiny_env.datacenter.profile.idle_deadline + 1)
        assert len(orch.alive_instances(service)) == 5

    def test_diurnal_trace_shape(self, tiny_env):
        scaler, _service = self.make(tiny_env)
        pattern = DiurnalLoad(trough=2, peak=16, period_s=20 * units.MINUTE)
        trace = scaler.drive(pattern, duration_s=20 * units.MINUTE)
        assert trace.peak_instances >= 15
        assert trace.trough_instances <= 3

    def test_invalid_period_rejected(self, tiny_env):
        _scaler, service = self.make(tiny_env)
        with pytest.raises(ValueError):
            Autoscaler(tiny_env.orchestrator, service, evaluation_period_s=0)
