"""Unit tests for the Gen 1 (gVisor) sandbox."""

import numpy as np
import pytest

from repro import units
from repro.errors import PrivilegeError
from repro.sandbox.base import TscPolicy
from repro.sandbox.gvisor import GVisorSandbox
from repro.simtime.clock import SimClock

from tests.conftest import make_host


def make_sandbox(host=None, clock=None, policy=TscPolicy.NATIVE, seed=5, sid="sb-1"):
    host = host or make_host()
    clock = clock or SimClock()
    return GVisorSandbox(host, clock, np.random.default_rng(seed), sid, tsc_policy=policy), host, clock


class TestGVisorSandbox:
    def test_generation_tag(self):
        sandbox, _h, _c = make_sandbox()
        assert sandbox.generation == "gen1"

    def test_rdtsc_returns_raw_host_tsc(self):
        sandbox, host, clock = make_sandbox()
        assert sandbox.rdtsc() == host.tsc.read(clock.now())

    def test_rdtsc_advances_with_time(self):
        sandbox, host, clock = make_sandbox()
        before = sandbox.rdtsc()
        clock.sleep(1.0)
        after = sandbox.rdtsc()
        assert after - before == pytest.approx(host.tsc.actual_frequency_hz, rel=1e-9)

    def test_cpuid_exposes_real_host_model(self):
        sandbox, host, _c = make_sandbox()
        assert sandbox.cpuid_model() == host.cpu.name

    def test_cpuid_tsc_leaf_not_enumerated(self):
        sandbox, _h, _c = make_sandbox()
        assert sandbox.cpuid_tsc_frequency() is None

    def test_proc_cpuinfo_conceals_model(self):
        sandbox, host, _c = make_sandbox()
        assert sandbox.proc_cpuinfo_model() != host.cpu.name

    def test_proc_uptime_is_sandbox_relative(self):
        sandbox, host, clock = make_sandbox()
        clock.sleep(30.0)
        assert sandbox.proc_uptime() == pytest.approx(30.0)
        # Host uptime is 10 days; the sandbox must not reveal it.
        assert sandbox.proc_uptime() < 0.001 * host.tsc.uptime(clock.now())

    def test_kernel_tsc_khz_unavailable(self):
        sandbox, _h, _c = make_sandbox()
        with pytest.raises(PrivilegeError):
            sandbox.kernel_tsc_khz()

    def test_wall_clock_is_close_to_true_time(self):
        sandbox, _h, clock = make_sandbox()
        assert sandbox.wall_clock() == pytest.approx(clock.now(), abs=0.05)

    def test_wall_clock_offset_consistent_within_sandbox(self):
        """Per-sandbox offset is constant; only tiny per-call jitter varies."""
        sandbox, _h, _c = make_sandbox()
        readings = [sandbox.wall_clock() for _ in range(20)]
        assert max(readings) - min(readings) < 1e-3

    def test_two_sandboxes_have_different_offsets(self):
        host = make_host()
        clock = SimClock()
        s1, _, _ = make_sandbox(host, clock, seed=1, sid="a")
        s2, _, _ = make_sandbox(host, clock, seed=2, sid="b")
        assert s1.syscalls.sandbox_offset != s2.syscalls.sandbox_offset

    def test_sleep_advances_wall_clock(self):
        sandbox, _h, clock = make_sandbox()
        t0 = clock.now()
        sandbox.sleep(2.0)
        assert clock.now() >= t0 + 2.0

    def test_rng_pressure_and_observe(self):
        host = make_host()
        host.rng_resource.background_rate = 0.0
        host.rng_resource.drop_rate = 0.0
        clock = SimClock()
        s1, _, _ = make_sandbox(host, clock, sid="a")
        s2, _, _ = make_sandbox(host, clock, sid="b")
        s1.start_rng_pressure()
        s2.start_rng_pressure()
        assert s1.observe_rng_contention() == 2
        s2.stop_rng_pressure()
        assert s1.observe_rng_contention() == 1


class TestGVisorTscMitigation:
    def test_emulated_tsc_starts_near_zero(self):
        sandbox, _h, _c = make_sandbox(policy=TscPolicy.EMULATED)
        assert sandbox.rdtsc() == 0

    def test_emulated_tsc_ticks_at_reported_frequency(self):
        sandbox, host, clock = make_sandbox(policy=TscPolicy.EMULATED)
        clock.sleep(1.0)
        assert sandbox.rdtsc() == int(host.cpu.reported_tsc_frequency_hz)

    def test_emulated_tsc_hides_host_boot_time(self):
        """Deriving T_boot from an emulated TSC recovers the *sandbox*
        boot time, not the host's — the mitigation works."""
        sandbox, host, clock = make_sandbox(policy=TscPolicy.EMULATED)
        clock.sleep(5.0)
        tsc = sandbox.rdtsc()
        derived = clock.now() - tsc / host.cpu.reported_tsc_frequency_hz
        assert abs(derived - sandbox.boot_wall_time) < 0.01
        assert abs(derived - host.boot_time) > 1 * units.DAY

    def test_emulated_tsc_charges_syscall_cost(self):
        sandbox, _h, _c = make_sandbox(policy=TscPolicy.EMULATED)
        calls_before = sandbox.syscalls.call_count
        sandbox.rdtsc()
        assert sandbox.syscalls.call_count == calls_before + 1
