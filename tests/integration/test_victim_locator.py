"""Integration tests for the Target Victim Locator.

The acceptance bar from the campaign design: on a paper-scale tiny
profile the locator must name the co-resident attacker instance
(oracle-checked) in >= 95% of a 32-seed matrix, within O(log n_servers)
lock/probe rounds, with and without fault injection — and every
non-convergence must be a *structured* failure, never an exception.
"""

import math

import pytest

from repro import units
from repro.cloud.services import ServiceConfig
from repro.core.attack.locator import TargetVictimLocator, probe_latency_threshold
from repro.core.attack.strategies import optimized_launch
from repro.core.covert import RngCovertChannel
from repro.core.fingerprint import fingerprint_gen1_instances
from repro.core.verification import ScalableVerifier, TaggedInstance
from repro.faults import FaultPlan, FaultSpec, RetryPolicy

PROCESSING = 0.05
VICTIM_URL = "account-2/victim"
N_SEEDS = 32


def _campaign(tiny_env_factory, seed, fault_plan=None):
    """Optimized attacker launch + a one-instance uncontrolled victim."""
    env = tiny_env_factory(seed=seed, fault_plan=fault_plan)
    outcome = optimized_launch(
        env.attacker,
        n_services=3,
        launches=4,
        instances_per_service=16,
        interval_s=10 * units.MINUTE,
    )
    victim = env.victim()
    victim.deploy(ServiceConfig(name="victim"))
    victim.connect("victim", 1)
    return env, outcome


def _victim_host(env):
    orch = env.orchestrator
    instance = orch.alive_instances(orch.services[VICTIM_URL])[0]
    return orch.true_host_of(instance.instance_id)


def _tagged(handles):
    pairs = fingerprint_gen1_instances(handles, p_boot=1.0)
    return [
        TaggedInstance(handle, fp, fp.cpu_model)
        for handle, fp in pairs
        if handle.alive
    ]


def _locator(env, **overrides):
    kwargs = dict(
        probe=lambda: env.attacker.probe(VICTIM_URL, PROCESSING),
        latency_threshold_s=probe_latency_threshold(PROCESSING),
        verifier=ScalableVerifier(RngCovertChannel()),
        probes_per_measure=3,
    )
    kwargs.update(overrides)
    return TargetVictimLocator(**kwargs)


def _oracle_clusters(env, handles):
    """Ground-truth dedup (test-side only): live handles grouped by host."""
    orch = env.orchestrator
    groups = {}
    for handle in handles:
        if handle.alive:
            groups.setdefault(orch.true_host_of(handle.instance_id), []).append(handle)
    return list(groups.values())


def _is_co_resident(env, handle, victim_host):
    return env.orchestrator.true_host_of(handle.instance_id) == victim_host


def _rounds_bound(result):
    """O(log n) budget: per attempt, the all-locked pre-check + the
    cluster-level descent + the within-cluster descent + confirmation."""
    log_n = math.ceil(math.log2(max(2, result.initial_candidates)))
    return result.attempts * (log_n + 4)


class TestSeedMatrix:
    @pytest.mark.parametrize(
        "fault_rate", [0.0, 0.05], ids=["clean", "probe-noise"]
    )
    def test_locator_meets_acceptance_bar(self, tiny_env_factory, fault_rate):
        """32 seeds: >=95% oracle-confirmed hits among co-resident runs,
        every outcome correct, rounds within the O(log n) budget."""
        hits = co_resident_runs = correct = 0
        for seed in range(N_SEEDS):
            plan = None
            if fault_rate:
                plan = FaultPlan(FaultSpec(probe_noise_rate=fault_rate, seed=seed))
            env, outcome = _campaign(tiny_env_factory, seed, plan)
            result = _locator(env).locate(_tagged(outcome.handles))
            victim_host = _victim_host(env)
            truly_co_resident = any(
                _is_co_resident(env, handle, victim_host)
                for handle in outcome.handles
                if handle.alive
            )

            assert result.rounds <= _rounds_bound(result)
            assert result.dedup is not None
            assert result.initial_candidates == len(result.dedup.clusters)
            if truly_co_resident:
                co_resident_runs += 1
                if result.converged and _is_co_resident(
                    env, result.located, victim_host
                ):
                    hits += 1
                    correct += 1
            elif not result.converged and result.failure == "no_colocation":
                correct += 1

        assert co_resident_runs > 0
        assert hits / co_resident_runs >= 0.95
        assert correct == N_SEEDS


class TestStructuredFailures:
    def test_no_colocation_reported_not_raised(self, tiny_env_factory):
        """A cold-launched attacker stays in its account's shard, disjoint
        from the victim's shard — the all-locked pre-check must prove the
        negative in one round instead of searching."""
        env = tiny_env_factory(seed=7)
        env.attacker.deploy(ServiceConfig(name="cold"))
        handles = env.attacker.connect("cold", 8)
        env.victim().deploy(ServiceConfig(name="victim"))
        env.victim().connect("victim", 1)
        victim_host = _victim_host(env)
        assert not any(_is_co_resident(env, h, victim_host) for h in handles)

        result = _locator(env).locate(_tagged(handles))
        assert not result.converged
        assert result.located is None
        assert result.failure == "no_colocation"
        assert result.locked_latency_s < probe_latency_threshold(PROCESSING)

    def test_all_candidates_dead_before_search(self, tiny_env_factory):
        env, outcome = _campaign(tiny_env_factory, seed=3)
        clusters = _oracle_clusters(env, outcome.handles)
        for cluster in clusters:
            for handle in cluster:
                env.orchestrator._terminate(handle._instance, env.clock.now())
        result = _locator(env).locate_clusters(clusters)
        assert not result.converged
        assert result.failure == "candidates_died"
        assert result.probes == 0

    def test_all_candidates_die_mid_search(self, tiny_env_factory):
        """Killing every candidate mid-descent must end in a structured
        ``candidates_died`` — dead lockers release their bus pressure, so
        no exception and no phantom slow probes."""
        env, outcome = _campaign(tiny_env_factory, seed=5)
        clusters = _oracle_clusters(env, outcome.handles)
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            if calls["n"] == 7:  # first probe of the first descent round
                for cluster in clusters:
                    for handle in cluster:
                        if handle.alive:
                            env.orchestrator._terminate(
                                handle._instance, env.clock.now()
                            )
            return env.attacker.probe(VICTIM_URL, PROCESSING)

        locator = TargetVictimLocator(
            probe=probe,
            latency_threshold_s=probe_latency_threshold(PROCESSING),
            probes_per_measure=3,
        )
        result = locator.locate_clusters(clusters)
        assert not result.converged
        assert result.located is None
        assert result.failure == "candidates_died"


class TestFaultTolerance:
    def test_survives_innocent_candidate_death_mid_search(self, tiny_env_factory):
        """A non-co-resident cluster dying mid-search just drops out;
        the descent still pins the true co-resident instance."""
        env, outcome = _campaign(tiny_env_factory, seed=11)
        victim_host = _victim_host(env)
        clusters = _oracle_clusters(env, outcome.handles)
        innocent = next(
            cluster
            for cluster in clusters
            if not _is_co_resident(env, cluster[0], victim_host)
        )
        calls = {"n": 0}

        def probe():
            calls["n"] += 1
            if calls["n"] == 8:  # mid first descent round
                for handle in innocent:
                    if handle.alive:
                        env.orchestrator._terminate(handle._instance, env.clock.now())
            return env.attacker.probe(VICTIM_URL, PROCESSING)

        locator = TargetVictimLocator(
            probe=probe,
            latency_threshold_s=probe_latency_threshold(PROCESSING),
            probes_per_measure=3,
        )
        result = locator.locate_clusters(clusters)
        assert result.converged
        assert _is_co_resident(env, result.located, victim_host)

    def test_survives_dedup_merge_error(self, tiny_env_factory):
        """An over-merged cluster (two servers fused) is corrected by the
        within-cluster phase: the located instance is truly co-resident,
        not just a member of the hot merged blob."""
        env, outcome = _campaign(tiny_env_factory, seed=13)
        victim_host = _victim_host(env)
        clusters = _oracle_clusters(env, outcome.handles)
        hot_index = next(
            i
            for i, cluster in enumerate(clusters)
            if _is_co_resident(env, cluster[0], victim_host)
        )
        other_index = (hot_index + 1) % len(clusters)
        merged = [clusters[hot_index] + clusters[other_index]] + [
            cluster
            for i, cluster in enumerate(clusters)
            if i not in (hot_index, other_index)
        ]

        result = _locator(env).locate_clusters(merged)
        assert result.converged
        assert _is_co_resident(env, result.located, victim_host)

    def test_survives_dedup_split_error(self, tiny_env_factory):
        """An over-split server (its instances scattered into singleton
        clusters) still converges — one of the fragments wins."""
        env, outcome = _campaign(tiny_env_factory, seed=17)
        victim_host = _victim_host(env)
        clusters = _oracle_clusters(env, outcome.handles)
        split = []
        for cluster in clusters:
            if _is_co_resident(env, cluster[0], victim_host):
                split.extend([handle] for handle in cluster)
            else:
                split.append(cluster)

        result = _locator(env).locate_clusters(split)
        assert result.converged
        assert _is_co_resident(env, result.located, victim_host)

    def test_clean_and_faulted_campaigns_agree(self, tiny_env_factory):
        """PR-2 convergence convention: the same seed run clean and under
        combined probe-noise + ctest-noise faults locates the same host,
        and the fault plan demonstrably fired."""
        seed = 3

        def run(plan):
            env, outcome = _campaign(tiny_env_factory, seed, plan)
            channel = RngCovertChannel() if plan is None else RngCovertChannel(
                fault_plan=plan
            )
            verifier = (
                ScalableVerifier(channel)
                if plan is None
                else ScalableVerifier(channel, retry_policy=RetryPolicy(max_retries=4))
            )
            result = _locator(env, verifier=verifier).locate(_tagged(outcome.handles))
            assert result.converged
            return env.orchestrator.true_host_of(result.located.instance_id)

        clean_host = run(None)
        plan = FaultPlan(
            FaultSpec(probe_noise_rate=0.1, ctest_noise_rate=0.05, seed=seed)
        )
        faulted_host = run(plan)
        assert faulted_host == clean_host
        assert plan.counters.total_injected > 0
