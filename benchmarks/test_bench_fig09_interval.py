"""Figure 9: launches at a 10-minute interval recruit helper hosts.

Paper: with a 10-minute interval both the per-launch and cumulative curves
grow drastically, reaching ~264 hosts after six launches (+177 vs. launch
1); a 2-minute interval adds only ~12 hosts; intervals >= 30 minutes
behave like Figure 7.
"""

from repro import units
from repro.experiments import launch_behavior as lb
from repro.experiments.report import ComparisonRow, format_comparison, format_series

from benchmarks.conftest import run_once


def test_fig09_ten_minute_interval(benchmark, emit):
    config = lb.LaunchSeriesConfig(interval=10 * units.MINUTE, seed=513)
    result = run_once(benchmark, lambda: lb.run_launch_series(config))

    emit(
        format_series(
            "Figure 9 — apparent hosts per launch (10-minute interval)",
            ("launch", "apparent_hosts", "cumulative"),
            [
                (i + 1, per, cum)
                for i, (per, cum) in enumerate(zip(result.per_launch, result.cumulative))
            ],
        )
    )
    emit(
        format_comparison(
            "Figure 9 — headline numbers",
            [
                ComparisonRow(
                    "cumulative hosts after 6 launches",
                    f"~{lb.PAPER_FIG9_CUMULATIVE_AFTER_6}",
                    str(result.cumulative[-1]),
                ),
                ComparisonRow("growth vs launch 1", "~+177", f"+{result.growth}"),
            ],
        )
    )

    assert 200 <= result.cumulative[-1] <= 330
    assert result.growth >= 120
    # Both curves track each other (the difference between them is small).
    gaps = [cum - per for per, cum in zip(result.per_launch, result.cumulative)]
    assert max(gaps) <= 40


def test_fig09_interval_sweep(benchmark, emit, runner):
    config = lb.IntervalSweepConfig()
    results = run_once(benchmark, lambda: lb.run_interval_sweep(config, runner=runner))

    emit(
        format_series(
            "Figure 9 companion — footprint growth vs launch interval",
            ("interval_min", "growth_after_6_launches"),
            [(minutes, results[minutes].growth) for minutes in sorted(results)],
        )
    )

    # 2-minute interval: few instances die between launches -> ~+12 hosts.
    assert results[2.0].growth <= 40
    # 10 minutes is the sweet spot.
    assert results[10.0].growth > 3 * max(results[2.0].growth, 1)
    # >= 30 minutes: the demand window has passed; no helper recruitment.
    assert results[45.0].growth <= 8
    assert results[30.0].growth <= results[10.0].growth
