"""The covert-channel kind registry.

Every covert channel the CTest pipeline can run over is described once,
here, by a :class:`ChannelKind`: the contention-domain parameters a
:class:`~repro.hardware.host.PhysicalHost` needs to build the shared
resource, and the (optional) legacy sandbox method names the generic
:meth:`~repro.sandbox.base.Sandbox.channel_port` dispatch must route
through.  Hosts, sandboxes, and :class:`~repro.core.covert.CovertChannel`
subclasses all resolve a kind through this registry instead of hard-coded
string branches, so adding a channel is one :func:`register_channel_kind`
call plus a resource/verdict model — nothing in the host, sandbox, or
engine layers changes.

Extension contract (what keeps a new kind *vector-safe*, i.e. eligible for
the batched ``observe_rounds`` engine):

* the resource class must not override
  :meth:`~repro.hardware.rng_resource.ContentionResource.observe` or
  :meth:`~repro.hardware.rng_resource.ContentionResource.observe_rounds`
  (the engine compares the method identities before consuming randomness);
* channel physics beyond background/drop rates must be expressed as pure
  post-draw transforms (``saturation`` clamping, the DVFS level-to-frequency
  map) so draw order stays byte-identical to the scalar reference;
* registering a kind must not build any resource eagerly — hosts
  instantiate per-kind resources lazily on first use, so registration can
  never perturb existing kinds' RNG draw order (pinned by a Hypothesis
  property test).

The four built-in kinds: ``rng`` (the paper's RDRAND channel), ``bus``
(the Wu et al. memory-bus channel), ``llc`` (cache-occupancy contention per
Zhao & Fletcher — coarse per-round signal, higher cross-tenant noise
floor), and ``dvfs`` (frequency-step contention per Dipta et al. — the
observation is a sustained-load frequency trace).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.rng_resource import ContentionResource


class LlcOccupancyResource(ContentionResource):
    """Last-level-cache occupancy contention domain (Zhao & Fletcher).

    A pressurer sweeps a buffer sized to the LLC; an observer infers
    co-located sweepers from its own eviction rate.  Two properties set it
    apart from the RNG channel: ordinary tenant working sets keep the cache
    warm (a much higher background-contention floor), and occupancy stops
    resolving individual sweepers once the cache is fully thrashed (the
    observation *saturates*).  Both are parameters of the shared
    :class:`~repro.hardware.rng_resource.ContentionResource` model — no
    method is overridden, so the vectorized engine's stream-identity check
    keeps passing and the batched path stays available.
    """

    def __init__(
        self,
        background_rate: float = 0.12,
        drop_rate: float = 0.10,
        saturation: int | None = 8,
    ) -> None:
        super().__init__(
            background_rate=background_rate,
            drop_rate=drop_rate,
            saturation=saturation,
        )


class DvfsFrequencyResource(ContentionResource):
    """DVFS frequency-step contention domain (Dipta et al.).

    Sustained load on co-located cores drives the package power budget
    down, stepping the core frequency; an instance running a calibrated
    spin loop reads its own achieved frequency and infers co-located
    sustained loads from the step depth.  The contention *level* follows
    the shared draw model; :meth:`frequency_of_level` is the pure post-hoc
    map from a level to the steady-state frequency the guest would time —
    applied after the draws, so the channel stays vector-safe.

    Parameters
    ----------
    base_frequency_hz:
        Unthrottled sustained-load frequency of one core.
    step_fraction:
        Fractional frequency drop per concurrent sustained load.
    floor_fraction:
        Thermal floor: the frequency never drops below this fraction of
        base, however many tenants pile on.
    """

    def __init__(
        self,
        background_rate: float = 0.06,
        drop_rate: float = 0.04,
        saturation: int | None = None,
        base_frequency_hz: float = 3.0e9,
        step_fraction: float = 0.05,
        floor_fraction: float = 0.4,
    ) -> None:
        super().__init__(
            background_rate=background_rate,
            drop_rate=drop_rate,
            saturation=saturation,
        )
        if not 0.0 < step_fraction < 1.0:
            raise ValueError(f"step_fraction out of range: {step_fraction!r}")
        if not 0.0 < floor_fraction <= 1.0:
            raise ValueError(f"floor_fraction out of range: {floor_fraction!r}")
        self.base_frequency_hz = base_frequency_hz
        self.step_fraction = step_fraction
        self.floor_fraction = floor_fraction

    def frequency_of_level(self, level):
        """Steady-state sustained-load frequency at a contention level.

        Pure and monotone decreasing in ``level`` (until the thermal
        floor), so thresholding a frequency trace at
        ``frequency_of_level(m)`` is equivalent to thresholding the level
        trace at ``m`` — which is how
        :class:`~repro.core.covert.DvfsFingerprintChannel` keeps the CTest
        verdict machinery unchanged.  Accepts a scalar or an array.
        """
        scale = np.maximum(
            self.floor_fraction, 1.0 - self.step_fraction * np.asarray(level)
        )
        result = self.base_frequency_hz * scale
        return float(result) if np.ndim(level) == 0 else result


@dataclass(frozen=True)
class ChannelKind:
    """Descriptor of one registered covert-channel kind.

    Attributes
    ----------
    name:
        Registry key (``"rng"``, ``"bus"``, ...).
    description:
        One-line human-readable summary.
    background_rate / drop_rate:
        Default contention-model rates for the kind's shared resource.
    resource_cls:
        Class instantiated per host (a
        :class:`~repro.hardware.rng_resource.ContentionResource` or a
        subclass that keeps ``observe``/``observe_rounds`` untouched).
    sandbox_start / sandbox_stop / sandbox_observe:
        Names of legacy per-kind :class:`~repro.sandbox.base.Sandbox`
        methods the generic channel surface must dispatch through (so
        subclass customizations of those methods keep working, and the
        port guard can detect them).  ``None`` routes directly to the
        host's channel resource.
    """

    name: str
    description: str
    background_rate: float
    drop_rate: float
    resource_cls: type[ContentionResource] = ContentionResource
    sandbox_start: str | None = None
    sandbox_stop: str | None = None
    sandbox_observe: str | None = None

    def build_resource(self, noise_multiplier: float = 1.0) -> ContentionResource:
        """Instantiate the kind's per-host shared resource.

        ``noise_multiplier`` scales the background-contention rate (the
        per-channel knob of a
        :class:`~repro.cloud.platform.PlatformProfile`), capped below 1.
        A multiplier of exactly 1.0 reproduces the default rate bit-for-bit
        (``x * 1.0 == x`` in IEEE 754), preserving byte-identity for the
        default platform.
        """
        if noise_multiplier <= 0.0:
            raise ValueError(
                f"noise multiplier for channel {self.name!r} must be > 0, "
                f"got {noise_multiplier!r}"
            )
        return self.resource_cls(
            background_rate=min(0.95, self.background_rate * noise_multiplier),
            drop_rate=self.drop_rate,
        )


_CHANNEL_KINDS: dict[str, ChannelKind] = {}


def register_channel_kind(kind: ChannelKind) -> ChannelKind:
    """Register (or error on re-registering) a covert-channel kind.

    Registration is metadata-only: no resource is built until a host first
    serves the kind, so registering can never perturb existing kinds' RNG
    draw order.
    """
    if kind.name in _CHANNEL_KINDS:
        raise ValueError(f"covert-channel kind {kind.name!r} already registered")
    _CHANNEL_KINDS[kind.name] = kind
    return kind


def unregister_channel_kind(name: str) -> None:
    """Remove a registered kind (test scaffolding; built-ins stay put)."""
    if name in _BUILTIN_KINDS:
        raise ValueError(f"built-in covert-channel kind {name!r} cannot be removed")
    _CHANNEL_KINDS.pop(name, None)


def channel_kind(name: str) -> ChannelKind:
    """Look up a kind descriptor; unknown names list what *is* registered."""
    try:
        return _CHANNEL_KINDS[name]
    except KeyError:
        known = ", ".join(sorted(_CHANNEL_KINDS))
        raise ValueError(
            f"unknown covert-channel resource kind: {name!r}; "
            f"registered kinds: {known}"
        ) from None


def registered_channel_kinds() -> tuple[str, ...]:
    """Names of every registered kind, in registration order."""
    return tuple(_CHANNEL_KINDS)


register_channel_kind(
    ChannelKind(
        name="rng",
        description="hardware-RNG (RDRAND) contention — the paper's channel",
        background_rate=0.005,
        drop_rate=0.02,
        sandbox_start="start_rng_pressure",
        sandbox_stop="stop_rng_pressure",
        sandbox_observe="observe_rng_contention",
    )
)
register_channel_kind(
    ChannelKind(
        name="bus",
        description="memory-bus locking contention (Wu et al.)",
        background_rate=0.18,
        drop_rate=0.05,
        sandbox_start="start_bus_pressure",
        sandbox_stop="stop_bus_pressure",
        sandbox_observe="observe_bus_contention",
    )
)
register_channel_kind(
    ChannelKind(
        name="llc",
        description="LLC cache-occupancy contention (Zhao & Fletcher)",
        background_rate=0.12,
        drop_rate=0.10,
        resource_cls=LlcOccupancyResource,
    )
)
register_channel_kind(
    ChannelKind(
        name="dvfs",
        description="DVFS frequency-step contention (Dipta et al.)",
        background_rate=0.06,
        drop_rate=0.04,
        resource_cls=DvfsFrequencyResource,
    )
)

#: Kinds that ship with the package (and may not be unregistered).
_BUILTIN_KINDS = frozenset(_CHANNEL_KINDS)
