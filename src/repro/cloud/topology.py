"""Region topology profiles.

Each :class:`RegionProfile` packages the datacenter-scale calibration inputs
for the simulator: fleet size, serving-pool size and rotation, placement
shards, helper-host recruitment aggressiveness, idle-termination window, and
(for us-central1) placement dynamism.  Values are derived from the paper's
published measurements:

* observed apparent hosts (Fig. 12): 474 (us-east1), 1702 (us-central1),
  199 (us-west1) — our fleets are slightly larger since a census never sees
  every host;
* ~75 hosts serve 800 instances of one account at ~10-11 each (Exp. 1);
* 6 launches at a 10-minute interval reach ~264 hosts, a 2-minute interval
  adds only ~12 (Exp. 4);
* the attacker footprint at once is ~59% / 53% / 82% of the census
  (904 hosts in us-central1);
* us-central1 exhibits "more dynamic" placement (§5.1, Other factors).

These numbers are *inputs*: the attack pipeline measures them back out
through black-box experiments, which is the reproduction's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import CloudError


@dataclass(frozen=True)
class AccountPlacementPlan:
    """Evaluation-account calibration for one region.

    ``account_shards`` pins the shard index each well-known evaluation
    account maps to (unknown accounts hash deterministically instead), and
    ``account_dynamism`` gives the per-account probability that an instance
    is scattered off the account's base hosts (only meaningful in regions
    with ``dynamic_placement``).

    The pins reproduce the paper's observed base-host overlaps: in
    us-west1 accounts 1 and 2 happen to share base hosts (naive strategy
    achieves 100% coverage), in us-central1 accounts 1 and 3 overlap
    (naive ~81%), and in us-east1 all three accounts are disjoint (naive 0%).
    """

    account_shards: dict[str, int] = field(default_factory=dict)
    account_dynamism: dict[str, float] = field(default_factory=dict)


@dataclass(frozen=True)
class RegionProfile:
    """Calibration profile of one datacenter region.

    Attributes
    ----------
    name:
        Region name (e.g. ``"us-east1"``).
    n_hosts:
        Total fleet size, including hosts currently rotated out of serving.
    active_hosts:
        Size of the serving pool at any instant; placement only targets
        these (plus pinned base hosts).
    shard_size:
        Hosts per placement shard; an account's base hosts are exactly its
        shard, so ``shard_size`` is also the base-set size (~75, Exp. 1).
    helper_recruit_fraction:
        Helper hosts recruited per newly created instance on a hot launch.
    helper_pool_cap:
        Maximum helper hosts one service accumulates.
    hot_window:
        Demand-history lookback; repeated high demand inside this window
        makes a service "hot" (paper: <30 minutes).
    hot_min_concurrency:
        Minimum past concurrency for a demand event to count.
    idle_grace / idle_deadline:
        Idle instances are preserved for at least ``idle_grace`` and all
        terminated by ``idle_deadline`` after disconnecting (Fig. 6: ~2 and
        ~12 minutes).
    rotation_period / rotation_fraction:
        Every period, this fraction of the serving pool is swapped with
        rotated-out hosts; drives census growth across launches (Fig. 12).
    dynamic_placement:
        us-central1 flag: instances scatter off base hosts with per-account
        probability (see :class:`AccountPlacementPlan`).
    default_dynamism:
        Scatter probability for accounts not pinned in the plan.
    baseline_startup / per_instance_startup:
        Cold-start latency model for instance creation.
    plan:
        Evaluation-account calibration (shard pins, dynamism).
    defense:
        Scheduling-based co-location defense (paper §6): ``"none"``
        (default), ``"randomized_base"`` (base hosts re-sampled per launch,
        destroying the stable footprints of Observation 3), or
        ``"tenant_isolation"`` (each account confined to an exclusive host
        partition, making cross-account co-location impossible at the cost
        of fleet utilization).
    """

    name: str
    n_hosts: int
    active_hosts: int
    shard_size: int = 75
    helper_recruit_fraction: float = 0.064
    helper_pool_cap: int = 250
    hot_window: float = 30 * units.MINUTE
    hot_min_concurrency: int = 200
    idle_grace: float = 2 * units.MINUTE
    idle_deadline: float = 12 * units.MINUTE
    rotation_period: float = 20 * units.MINUTE
    rotation_fraction: float = 0.02
    dynamic_placement: bool = False
    default_dynamism: float = 0.0
    baseline_startup: float = 1.5
    per_instance_startup: float = 0.02
    plan: AccountPlacementPlan = field(default_factory=AccountPlacementPlan)
    defense: str = "none"

    def __post_init__(self) -> None:
        if self.defense not in ("none", "randomized_base", "tenant_isolation"):
            raise CloudError(
                f"{self.name}: unknown defense {self.defense!r}; expected "
                "'none', 'randomized_base', or 'tenant_isolation'"
            )
        if self.active_hosts > self.n_hosts:
            raise CloudError(
                f"{self.name}: active_hosts ({self.active_hosts}) cannot exceed "
                f"n_hosts ({self.n_hosts})"
            )
        if self.shard_size > self.active_hosts:
            raise CloudError(
                f"{self.name}: shard_size ({self.shard_size}) cannot exceed "
                f"active_hosts ({self.active_hosts})"
            )

    @property
    def n_shards(self) -> int:
        """Number of whole placement shards in the serving pool."""
        return self.active_hosts // self.shard_size


#: The three evaluated regions plus a small profile for fast tests.
REGION_PROFILES: dict[str, RegionProfile] = {
    "us-east1": RegionProfile(
        name="us-east1",
        n_hosts=520,
        active_hosts=300,
        rotation_fraction=0.03,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    ),
    "us-central1": RegionProfile(
        name="us-central1",
        n_hosts=1850,
        active_hosts=975,
        helper_recruit_fraction=0.082,
        helper_pool_cap=300,
        dynamic_placement=True,
        default_dynamism=0.35,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 2, "account-2": 9, "account-3": 2},
            account_dynamism={
                "account-1": 0.02,
                "account-2": 0.65,
                "account-3": 0.18,
            },
        ),
    ),
    "us-west1": RegionProfile(
        name="us-west1",
        n_hosts=215,
        active_hosts=165,
        helper_recruit_fraction=0.06,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 0, "account-3": 1},
        ),
    ),
    # The remaining six US Cloud Run regions.  The paper reports that all
    # nine US datacenters behave like us-east1 except us-central1 (§5.1,
    # "Other factors"); sizes here are plausible interpolations, not
    # published measurements — only the three profiles above are calibrated
    # against the paper's numbers.
    "us-east4": RegionProfile(
        name="us-east4",
        n_hosts=430,
        active_hosts=300,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    ),
    "us-east5": RegionProfile(name="us-east5", n_hosts=260, active_hosts=150),
    "us-west2": RegionProfile(name="us-west2", n_hosts=310, active_hosts=225),
    "us-west3": RegionProfile(name="us-west3", n_hosts=180, active_hosts=150),
    "us-west4": RegionProfile(name="us-west4", n_hosts=240, active_hosts=150),
    "us-south1": RegionProfile(name="us-south1", n_hosts=200, active_hosts=150),
    # A deliberately small region so unit tests stay fast.
    "test-region1": RegionProfile(
        name="test-region1",
        n_hosts=60,
        active_hosts=40,
        shard_size=10,
        helper_recruit_fraction=0.2,
        helper_pool_cap=30,
        hot_min_concurrency=10,
        plan=AccountPlacementPlan(
            account_shards={"account-1": 0, "account-2": 1, "account-3": 2},
        ),
    ),
}


def region_profile(name: str) -> RegionProfile:
    """Look up a region profile by name.

    Raises
    ------
    CloudError
        If the region is unknown.
    """
    try:
        return REGION_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(REGION_PROFILES))
        raise CloudError(f"unknown region {name!r}; known regions: {known}") from None
