"""Container instances and their lifecycle.

The lifecycle mirrors the Cloud Run container contract (paper §2.2): an
instance is created to serve requests, stays *active* while it has open
connections, becomes *idle* when the last connection closes, and is sent
SIGTERM and destroyed if it stays idle too long.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, TypeVar

from repro.cloud.services import Service
from repro.errors import InstanceGoneError
from repro.sandbox.base import Sandbox

T = TypeVar("T")


class InstanceState(enum.Enum):
    """Lifecycle state of a container instance."""

    ACTIVE = "active"
    IDLE = "idle"
    TERMINATED = "terminated"


@dataclass
class ContainerInstance:
    """One running container instance of a service.

    Attributes
    ----------
    instance_id:
        Unique identifier (also the sandbox id on the host RNG).
    service:
        The service this instance belongs to.
    host_id:
        The physical host (simulator-side ground truth; never exposed to
        guests or to the attacker-facing API).
    sandbox:
        The sandboxed execution environment guest code runs in.
    created_at / last_active_at:
        Lifecycle timestamps (simulated wall clock).
    active_since:
        Start of the current active period, or ``None`` while idle.
    on_sigterm:
        Callback invoked (with the current wall time) when the orchestrator
        sends SIGTERM before termination; the idle-termination experiment
        (Fig. 6) registers a reporter here.
    """

    instance_id: str
    service: Service
    host_id: str
    sandbox: Sandbox
    created_at: float
    state: InstanceState = InstanceState.ACTIVE
    active_since: float | None = None
    last_active_at: float = 0.0
    active_seconds_total: float = 0.0
    on_sigterm: Callable[[float], None] | None = None

    def __post_init__(self) -> None:
        if self.active_since is None:
            self.active_since = self.created_at
        self.last_active_at = self.created_at

    @property
    def alive(self) -> bool:
        """True until the instance has been terminated."""
        return self.state is not InstanceState.TERMINATED

    def require_alive(self) -> None:
        """Raise :class:`InstanceGoneError` if the instance is terminated."""
        if not self.alive:
            raise InstanceGoneError(f"instance {self.instance_id!r} was terminated")

    def run_probe(self, probe: Callable[[Sandbox], T]) -> T:
        """Execute ``probe(sandbox)`` inside this instance if it is alive.

        The single execution gate shared by
        :meth:`repro.cloud.api.InstanceHandle.run` and the batched
        :meth:`repro.cloud.api.InstanceHandle.run_batch` engine hook: both
        paths check liveness the same way, so a terminated instance raises
        :class:`InstanceGoneError` identically under either engine.
        """
        self.require_alive()
        return probe(self.sandbox)

    def go_idle(self, now: float) -> None:
        """Transition ACTIVE -> IDLE, accumulating billable active time."""
        self.require_alive()
        if self.state is InstanceState.ACTIVE and self.active_since is not None:
            self.active_seconds_total += now - self.active_since
            self.active_since = None
        self.state = InstanceState.IDLE
        self.last_active_at = now

    def go_active(self, now: float) -> None:
        """Transition IDLE -> ACTIVE (a new connection arrived)."""
        self.require_alive()
        if self.state is InstanceState.IDLE:
            self.active_since = now
        self.state = InstanceState.ACTIVE

    def terminate(self, now: float) -> None:
        """Send SIGTERM and destroy the instance."""
        if not self.alive:
            return
        if self.state is InstanceState.ACTIVE and self.active_since is not None:
            self.active_seconds_total += now - self.active_since
            self.active_since = None
        if self.on_sigterm is not None:
            self.on_sigterm(now)
        self.state = InstanceState.TERMINATED
