"""Unit tests for the simulated clock."""

import pytest

from repro.errors import ClockError
from repro.simtime.clock import SIM_EPOCH, SimClock


class TestSimClock:
    def test_starts_at_default_epoch(self):
        assert SimClock().now() == SIM_EPOCH

    def test_starts_at_custom_epoch(self):
        assert SimClock(start=123.0).now() == 123.0

    def test_sleep_advances_time(self, clock):
        t0 = clock.now()
        clock.sleep(42.5)
        assert clock.now() == t0 + 42.5

    def test_sleep_zero_is_allowed(self, clock):
        t0 = clock.now()
        clock.sleep(0.0)
        assert clock.now() == t0

    def test_negative_sleep_rejected(self, clock):
        with pytest.raises(ClockError):
            clock.sleep(-1.0)

    def test_advance_to_absolute_time(self, clock):
        target = clock.now() + 100.0
        clock.advance_to(target)
        assert clock.now() == target

    def test_advance_to_past_rejected(self, clock):
        with pytest.raises(ClockError):
            clock.advance_to(clock.now() - 1.0)

    def test_advance_to_now_is_noop(self, clock):
        clock.advance_to(clock.now())

    def test_tick_hooks_fire_on_advance(self, clock):
        seen = []
        clock.add_tick_hook(seen.append)
        clock.sleep(5.0)
        assert seen == [clock.now()]

    def test_multiple_hooks_fire_in_order(self, clock):
        order = []
        clock.add_tick_hook(lambda _t: order.append("a"))
        clock.add_tick_hook(lambda _t: order.append("b"))
        clock.sleep(1.0)
        assert order == ["a", "b"]

    def test_removed_hook_does_not_fire(self, clock):
        seen = []
        clock.add_tick_hook(seen.append)
        clock.remove_tick_hook(seen.append)
        clock.sleep(1.0)
        assert seen == []

    def test_removing_unknown_hook_raises(self, clock):
        with pytest.raises(ValueError):
            clock.remove_tick_hook(lambda _t: None)
